"""SLA compliance tracking.

The tracker consumes two streams:

* usage reports (resource-cap compliance) from Monitoring Modules, and
* up/down transitions (availability) — fed by the environment from
  deployment and migration records.

and answers, per customer: resource violation counts, accumulated
downtime, measured availability, and whether the availability target was
met over the observed window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.monitoring.monitor import UsageReport
from repro.sla.agreement import ServiceLevelAgreement


@dataclass(frozen=True)
class SlaViolation:
    """One detected violation of a customer's SLA."""

    customer: str
    at: float
    kind: str  # "cpu" | "memory" | "disk" | "availability"
    observed: float
    limit: float

    def __str__(self) -> str:
        return "SlaViolation(%s %s: %.4f > %.4f @%.2f)" % (
            self.customer,
            self.kind,
            self.observed,
            self.limit,
            self.at,
        )


@dataclass
class _CustomerTimeline:
    sla: ServiceLevelAgreement
    observed_from: float
    up: bool = False
    last_transition: float = 0.0
    downtime: float = 0.0
    violations: List[SlaViolation] = field(default_factory=list)


@dataclass(frozen=True)
class ComplianceReport:
    """Per-customer SLA verdict over the observed window."""

    customer: str
    window: float
    downtime: float
    availability: float
    availability_target: float
    cpu_violations: int
    memory_violations: int
    disk_violations: int

    @property
    def availability_met(self) -> bool:
        return self.availability >= self.availability_target

    def __str__(self) -> str:
        return (
            "ComplianceReport(%s: avail=%.4f target=%.4f %s, "
            "cpu=%d mem=%d disk=%d violations)"
            % (
                self.customer,
                self.availability,
                self.availability_target,
                "MET" if self.availability_met else "MISSED",
                self.cpu_violations,
                self.memory_violations,
                self.disk_violations,
            )
        )


class SlaTracker:
    """Tracks every registered SLA against observed behaviour."""

    def __init__(self) -> None:
        self._customers: Dict[str, _CustomerTimeline] = {}

    # ------------------------------------------------------------------
    def register(self, sla: ServiceLevelAgreement, at: float, up: bool = False) -> None:
        self._customers[sla.customer] = _CustomerTimeline(
            sla=sla, observed_from=at, up=up, last_transition=at
        )

    def known(self, customer: str) -> bool:
        return customer in self._customers

    def customer_names(self) -> List[str]:
        return sorted(self._customers)

    def sla_of(self, customer: str) -> Optional[ServiceLevelAgreement]:
        timeline = self._customers.get(customer)
        return timeline.sla if timeline else None

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------
    def observe_report(self, report: UsageReport) -> List[SlaViolation]:
        """Check one usage report; returns the violations it triggered."""
        timeline = self._customers.get(report.instance)
        if timeline is None:
            return []
        found: List[SlaViolation] = []
        if report.cpu_violation:
            found.append(
                SlaViolation(
                    report.instance,
                    report.at,
                    "cpu",
                    report.cpu_share,
                    timeline.sla.cpu_share,
                )
            )
        if report.memory_violation:
            found.append(
                SlaViolation(
                    report.instance,
                    report.at,
                    "memory",
                    float(report.memory_bytes or 0),
                    float(timeline.sla.memory_bytes),
                )
            )
        if report.disk_violation:
            found.append(
                SlaViolation(
                    report.instance,
                    report.at,
                    "disk",
                    float(report.disk_bytes or 0),
                    float(timeline.sla.disk_bytes),
                )
            )
        timeline.violations.extend(found)
        return found

    def mark_up(self, customer: str, at: float) -> None:
        timeline = self._customers.get(customer)
        if timeline is None or timeline.up:
            return
        timeline.downtime += at - timeline.last_transition
        timeline.up = True
        timeline.last_transition = at

    def mark_down(self, customer: str, at: float) -> None:
        timeline = self._customers.get(customer)
        if timeline is None or not timeline.up:
            return
        timeline.up = False
        timeline.last_transition = at

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def report(self, customer: str, now: float) -> ComplianceReport:
        timeline = self._customers.get(customer)
        if timeline is None:
            raise KeyError("no SLA registered for %r" % customer)
        downtime = timeline.downtime
        if not timeline.up:
            downtime += now - timeline.last_transition
        window = max(now - timeline.observed_from, 1e-9)
        availability = max(0.0, 1.0 - downtime / window)
        kinds = [v.kind for v in timeline.violations]
        return ComplianceReport(
            customer=customer,
            window=window,
            downtime=downtime,
            availability=availability,
            availability_target=timeline.sla.availability_target,
            cpu_violations=kinds.count("cpu"),
            memory_violations=kinds.count("memory"),
            disk_violations=kinds.count("disk"),
        )

    def reports(self, now: float) -> List[ComplianceReport]:
        return [self.report(c, now) for c in sorted(self._customers)]

    def violations(self, customer: Optional[str] = None) -> List[SlaViolation]:
        if customer is not None:
            timeline = self._customers.get(customer)
            return list(timeline.violations) if timeline else []
        out: List[SlaViolation] = []
        for name in sorted(self._customers):
            out.extend(self._customers[name].violations)
        return out

    def __repr__(self) -> str:
        return "SlaTracker(%d customers)" % len(self._customers)
