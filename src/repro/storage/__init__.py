"""Shared storage substrate — the paper's assumed SAN / distributed FS.

§3.2: *"We assume a underlying SAN or distributed filesystem to ensure
that data written by each node is accessible globally."* This package
provides that assumption as a concrete component:
:class:`~repro.storage.san.SharedStore` is a globally reachable, crash-
surviving store; each node *mounts* it to obtain a
:class:`~repro.storage.san.SanFrameworkStorage` that plugs into the OSGi
framework's persistence layer, plus a globally shared bundle repository
(the analogue of bundle JARs living on the SAN).
"""

from repro.storage.san import (
    Mount,
    SanFrameworkStorage,
    SharedStore,
    StorageError,
    StoreStats,
)

__all__ = [
    "Mount",
    "SanFrameworkStorage",
    "SharedStore",
    "StorageError",
    "StoreStats",
]
