"""The shared store: globally visible, node-failure-surviving persistence.

Three namespaces live on the store:

* **framework states** — what each OSGi environment persists on shutdown
  (and what a rebooting environment, possibly on another node, reads back);
* **bundle data areas** — per-(instance, bundle) key-value dictionaries,
  the "persistent state accessible by the other nodes" of §3.2;
* **bundle repository** — installable
  :class:`~repro.osgi.definition.BundleDefinition` objects by location, the
  analogue of bundle JARs on the SAN.

Values written to data areas must be JSON-serializable: that is the honest
contract a real SAN imposes, and the property the migration module's state
transfer relies on. Writes are deep-copied so a node crash never leaves a
half-shared object graph behind.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, MutableMapping, Optional

from repro.osgi.definition import BundleDefinition
from repro.osgi.persistence import FrameworkState, FrameworkStorage


class StorageError(Exception):
    """A store operation failed (unserializable value, unmounted node...)."""


@dataclass
class StoreStats:
    """Operation counters, used by migration/startup cost models."""

    state_reads: int = 0
    state_writes: int = 0
    data_reads: int = 0
    data_writes: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "state_reads": self.state_reads,
            "state_writes": self.state_writes,
            "data_reads": self.data_reads,
            "data_writes": self.data_writes,
            "bytes_written": self.bytes_written,
        }


class SharedStore:
    """The SAN. One per cluster; survives any node failure by assumption."""

    def __init__(self) -> None:
        self._states: Dict[str, Dict[str, Any]] = {}
        self._data: Dict[str, Dict[str, Any]] = {}
        self._repository: Dict[str, BundleDefinition] = {}
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    # Framework states
    # ------------------------------------------------------------------
    def save_state(self, instance_id: str, state: FrameworkState) -> None:
        payload = state.to_dict()
        self._validate(payload, "framework state of %s" % instance_id)
        self._states[instance_id] = copy.deepcopy(payload)
        self.stats.state_writes += 1
        self.stats.bytes_written += _approx_size(payload)

    def load_state(self, instance_id: str) -> Optional[FrameworkState]:
        self.stats.state_reads += 1
        payload = self._states.get(instance_id)
        if payload is None:
            return None
        return FrameworkState.from_dict(copy.deepcopy(payload))

    def delete_state(self, instance_id: str) -> None:
        self._states.pop(instance_id, None)
        prefix = instance_id + "/"
        for key in [k for k in self._data if k.startswith(prefix)]:
            del self._data[key]

    def has_state(self, instance_id: str) -> bool:
        return instance_id in self._states

    def instance_ids(self) -> Iterator[str]:
        return iter(sorted(self._states))

    # ------------------------------------------------------------------
    # Bundle data areas
    # ------------------------------------------------------------------
    def data_area(self, instance_id: str, symbolic_name: str) -> "DataArea":
        key = "%s/%s" % (instance_id, symbolic_name)
        backing = self._data.setdefault(key, {})
        return DataArea(self, backing, key)

    # ------------------------------------------------------------------
    # Bundle repository
    # ------------------------------------------------------------------
    def put_definition(self, location: str, definition: BundleDefinition) -> None:
        """Publish a bundle archive on the SAN."""
        self._repository[location] = definition
        self.stats.bytes_written += definition.size_bytes

    def get_definition(self, location: str) -> Optional[BundleDefinition]:
        return self._repository.get(location)

    def repository_view(self) -> Dict[str, BundleDefinition]:
        """Live-readable snapshot of the repository (location -> definition)."""
        return dict(self._repository)

    # ------------------------------------------------------------------
    def mount(self, node_id: str) -> "Mount":
        """Attach a node to the store."""
        return Mount(self, node_id)

    def _validate(self, value: Any, what: str) -> None:
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise StorageError(
                "%s is not JSON-serializable: %s" % (what, exc)
            ) from exc

    def __repr__(self) -> str:
        return "SharedStore(states=%d, data_areas=%d, repository=%d)" % (
            len(self._states),
            len(self._data),
            len(self._repository),
        )


class DataArea(MutableMapping[str, Any]):
    """A bundle's persistent key-value area, write-through to the store.

    Enforces JSON-serializable values so stateful bundles keep the
    migratable-state contract.
    """

    def __init__(self, store: SharedStore, backing: Dict[str, Any], key: str) -> None:
        self._store = store
        self._backing = backing
        self._key = key

    def __getitem__(self, key: str) -> Any:
        self._store.stats.data_reads += 1
        return copy.deepcopy(self._backing[key])

    def __setitem__(self, key: str, value: Any) -> None:
        self._store._validate(value, "data %r in area %s" % (key, self._key))
        self._store.stats.data_writes += 1
        self._store.stats.bytes_written += _approx_size(value)
        self._backing[key] = copy.deepcopy(value)

    def __delitem__(self, key: str) -> None:
        del self._backing[key]

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._backing))

    def __len__(self) -> int:
        return len(self._backing)

    def __repr__(self) -> str:
        return "DataArea(%s, %d keys)" % (self._key, len(self._backing))


class Mount:
    """A node's attachment to the shared store.

    Unmounting (node crash) invalidates the handle but never the data —
    that is the whole point of the SAN assumption.
    """

    def __init__(self, store: SharedStore, node_id: str) -> None:
        self.store = store
        self.node_id = node_id
        self.mounted = True

    def framework_storage(self) -> "SanFrameworkStorage":
        self._check()
        return SanFrameworkStorage(self)

    def unmount(self) -> None:
        self.mounted = False

    def _check(self) -> None:
        if not self.mounted:
            raise StorageError("node %s lost its SAN mount" % self.node_id)

    def __repr__(self) -> str:
        return "Mount(%s, %s)" % (
            self.node_id,
            "mounted" if self.mounted else "unmounted",
        )


class SanFrameworkStorage(FrameworkStorage):
    """Adapter: the OSGi persistence interface over a SAN mount."""

    def __init__(self, mount: Mount) -> None:
        self._mount = mount

    def save_state(self, instance_id: str, state: FrameworkState) -> None:
        self._mount._check()
        self._mount.store.save_state(instance_id, state)

    def load_state(self, instance_id: str) -> Optional[FrameworkState]:
        self._mount._check()
        return self._mount.store.load_state(instance_id)

    def delete_state(self, instance_id: str) -> None:
        self._mount._check()
        self._mount.store.delete_state(instance_id)

    def bundle_data(
        self, instance_id: str, symbolic_name: str
    ) -> MutableMapping[str, Any]:
        self._mount._check()
        return self._mount.store.data_area(instance_id, symbolic_name)

    def __repr__(self) -> str:
        return "SanFrameworkStorage(%s)" % self._mount


def _approx_size(value: Any) -> int:
    try:
        return len(json.dumps(value))
    except (TypeError, ValueError):
        return 0
