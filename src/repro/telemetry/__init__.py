"""Causal distributed tracing + deterministic metrics for the platform.

The observability subsystem the paper's dependability prose needs to
become measurable claims (see docs/TELEMETRY.md):

* :mod:`repro.telemetry.tracer` — spans with sim-time stamps and
  RNG-stream ids, propagated through network envelopes, GCS multicasts
  and view changes, vosgi remote calls, ipvs routing and migration
  failovers;
* :mod:`repro.telemetry.metrics` — counters, gauges and fixed-bucket
  histograms, wall-clock free;
* :mod:`repro.telemetry.runtime` — the global on/off switch instrumented
  hot paths check (``ACTIVE is not None``), costing nothing when off;
* :mod:`repro.telemetry.export` — JSON span dumps and Chrome
  ``trace_event`` files (Perfetto/chrome://tracing), byte-identical
  across same-seed runs;
* :mod:`repro.telemetry.gauges` — pull gauges over the existing hot-path
  counters, so instrumenting costs zero per-operation work;
* :mod:`repro.telemetry.cli` — ``python -m repro trace``.

This package is a **suppression-free zone** for the determinism linter
(DET006): unlike the rest of the tree it may not even carry an
``allow[...]`` directive, so it can never quietly regress into wall-clock
or global-random usage.
"""

from repro.telemetry.export import (
    chrome_trace_document,
    dump_chrome_json,
    dump_spans_json,
    spans_document,
)
from repro.telemetry.gauges import install_platform_gauges
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.runtime import Telemetry, activate, deactivate, enabled
from repro.telemetry.tracer import Span, SpanContext, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Telemetry",
    "Tracer",
    "activate",
    "chrome_trace_document",
    "deactivate",
    "dump_chrome_json",
    "dump_spans_json",
    "enabled",
    "install_platform_gauges",
    "spans_document",
]
