"""``python -m repro trace`` — run a scenario and export its trace.

Two scenarios:

* ``failover`` — the acceptance scenario: a 3-node platform serving web
  traffic through ipvs, a warm standby prepared, then the hosting node
  crashes mid-traffic. The exported Chrome trace shows the client
  requests, the GCS view change and the standby activation as causally
  linked spans of one trace (open the file in Perfetto or
  chrome://tracing).
* ``chaos`` — one telemetry-enabled chaos-campaign episode (random fault
  schedule), reporting failover-latency percentiles.

Two same-seed runs emit byte-identical files — the CI determinism guard
runs the command twice and ``cmp``'s the outputs.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.export import (
    connected_trace_ids,
    dump_chrome_json,
    dump_spans_json,
    trace_roots,
)
from repro.telemetry.gauges import install_platform_gauges
from repro.telemetry.runtime import Telemetry, enabled


def run_failover_scenario(
    seed: int,
    requests: int = 12,
    request_interval: float = 0.25,
) -> Tuple[Any, Telemetry]:
    """Build, trace and crash the acceptance scenario; returns (env, telemetry)."""
    from repro.core import DependableEnvironment
    from repro.ipvs.addressing import IpEndpoint
    from repro.sla import ServiceLevelAgreement

    env = DependableEnvironment.build(node_count=3, seed=seed)
    telemetry = Telemetry(env.loop.clock, env.cluster.rng, scenario="failover")
    install_platform_gauges(
        telemetry.metrics, loop=env.loop, network=env.cluster.network
    )
    with enabled(telemetry):
        telemetry.open_root("scenario:failover")
        try:
            for name, share in (("acme", 0.25), ("globex", 0.25)):
                completion = env.admit_customer(
                    ServiceLevelAgreement(
                        name, cpu_share=share, availability_target=0.95
                    )
                )
                env.cluster.run_until_settled([completion])
            env.run_for(1.0)
            endpoint = IpEndpoint("10.0.0.80", 80)
            env.expose_service("acme", endpoint, service_time=0.005)
            victim = env.locate("acme")
            assert victim is not None
            target = [
                n.node_id
                for n in env.cluster.alive_nodes()
                if n.node_id != victim
            ][0]
            preparation = env.prepare_standby("acme", target)
            env.cluster.run_until_settled([preparation])
            env.run_for(1.0)

            remaining = [requests]

            def pump() -> None:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
                env.director.submit(endpoint, client="trace-client")
                env.loop.call_after(request_interval, pump, label="trace-traffic")

            env.loop.call_after(request_interval, pump, label="trace-traffic")
            env.run_for(1.0)
            env.fail_node(victim)
            env.run_for(8.0)
        finally:
            telemetry.close_root()
    return env, telemetry


def run_chaos_scenario(seed: int) -> Tuple[Any, List[float]]:
    """One telemetry-enabled chaos episode; returns (episode, downtimes)."""
    from repro.faults.campaign import ChaosCampaign

    campaign = ChaosCampaign(
        seed=seed,
        episodes=1,
        episode_duration=20.0,
        settle=8.0,
        telemetry=True,
    )
    result = campaign.run()
    episode = result.episodes[0]
    return episode, list(result.failover_seconds)


def _summarise(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    names: Dict[str, int] = {}
    for span in spans:
        names[span["name"]] = names.get(span["name"], 0) + 1
    return {
        "spans": len(spans),
        "traces": len({s["trace_id"] for s in spans}),
        "connected_traces": len(connected_trace_ids(spans)),
        "roots": len(trace_roots(spans)),
        "by_name": dict(sorted(names.items())),
    }


def trace_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run a traced scenario and export Chrome trace_event JSON.",
    )
    parser.add_argument(
        "--scenario",
        choices=("failover", "chaos"),
        default="failover",
        help="which scenario to trace (default: failover)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out",
        default=None,
        help="Chrome trace output path (default TRACE_<scenario>_<seed>.json)",
    )
    parser.add_argument(
        "--spans-out",
        default=None,
        help="also write the raw span dump to this path",
    )
    parser.add_argument(
        "--scheduler",
        choices=("global", "laned"),
        default="global",
        help="event-loop scheduler (same seed, same trace, byte for byte "
        "— see docs/SIM.md)",
    )
    args = parser.parse_args(argv)

    from repro.sim.scheduler import use_scheduler

    failover_seconds: List[float] = []
    with use_scheduler(args.scheduler):
        if args.scenario == "failover":
            env, telemetry = run_failover_scenario(args.seed)
            spans = telemetry.export_spans()
            for node_id in sorted(env.migration):
                for record in env.migration[node_id].records:
                    if record.reason == "failure" and record.downtime is not None:
                        failover_seconds.append(record.downtime)
        else:
            episode, failover_seconds = run_chaos_scenario(args.seed)
            spans = episode.spans

    meta = {"scenario": args.scenario, "seed": args.seed}
    out_path = args.out or "TRACE_%s_%d.json" % (args.scenario, args.seed)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(dump_chrome_json(spans, meta))
    if args.spans_out:
        with open(args.spans_out, "w", encoding="utf-8") as handle:
            handle.write(dump_spans_json(spans, meta))

    summary = _summarise(spans)
    print("scenario=%s seed=%d -> %s" % (args.scenario, args.seed, out_path))
    print(
        "spans=%d traces=%d connected=%d roots=%d"
        % (
            summary["spans"],
            summary["traces"],
            summary["connected_traces"],
            summary["roots"],
        )
    )
    for name, count in summary["by_name"].items():
        print("  %-24s %d" % (name, count))
    if failover_seconds:
        ordered = sorted(failover_seconds)
        print(
            "failover downtime: n=%d min=%.3fs max=%.3fs"
            % (len(ordered), ordered[0], ordered[-1])
        )
    return 0
