"""Span exporters: canonical JSON dump + Chrome ``trace_event`` format.

Both exporters take the canonical span dicts produced by
:meth:`~repro.telemetry.tracer.Tracer.export` and serialise with sorted
keys and fixed separators, so two same-seed runs emit **byte-identical**
files — the property the CI determinism guard asserts with ``cmp``.

The Chrome format (the ``trace_event`` JSON consumed by Perfetto and
chrome://tracing) maps the simulation onto one process: ``pid`` 1 is the
platform, each node gets a stable integer ``tid`` (sorted node-id order)
with a ``thread_name`` metadata record, and every span becomes one "X"
(complete) event with microsecond ``ts``/``dur`` derived from virtual
time. Span/trace/parent ids travel in ``args`` so causal edges survive
the round trip.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "spans_document",
    "dump_spans_json",
    "chrome_trace_document",
    "dump_chrome_json",
    "trace_roots",
    "connected_trace_ids",
]

SpanDict = Dict[str, Any]


def spans_document(
    spans: Sequence[SpanDict], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The raw span dump: metadata header + spans in start order."""
    return {"format": "repro.telemetry/spans.v1", "meta": dict(meta or {}), "spans": list(spans)}


def dump_spans_json(
    spans: Sequence[SpanDict], meta: Optional[Dict[str, Any]] = None
) -> str:
    return (
        json.dumps(
            spans_document(spans, meta),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )
        + "\n"
    )


def _microseconds(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def chrome_trace_document(
    spans: Sequence[SpanDict], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """``trace_event`` JSON object: metadata records then "X" events."""
    nodes = sorted({span.get("node") or "" for span in spans})
    tid_of = {node: index for index, node in enumerate(nodes)}
    events: List[Dict[str, Any]] = [
        {
            "args": {"name": "repro simulation"},
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
        }
    ]
    for node in nodes:
        events.append(
            {
                "args": {"name": node or "platform"},
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid_of[node],
            }
        )
    for span in spans:
        start_us = _microseconds(span["start"])
        end_us = _microseconds(span["end"])
        args: Dict[str, Any] = {
            "span_id": span["span_id"],
            "trace_id": span["trace_id"],
        }
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        for key in sorted(span.get("attributes", {})):
            args[key] = span["attributes"][key]
        events.append(
            {
                "args": args,
                "cat": span["name"].split(".", 1)[0],
                # A zero-length event is invisible in the viewers; clamp
                # instantaneous spans to 1us for display only.
                "dur": max(1, end_us - start_us),
                "name": span["name"],
                "ph": "X",
                "pid": 1,
                "tid": tid_of[span.get("node") or ""],
                "ts": start_us,
            }
        )
    return {
        "displayTimeUnit": "ms",
        "metadata": dict(meta or {}),
        "traceEvents": events,
    }


def dump_chrome_json(
    spans: Sequence[SpanDict], meta: Optional[Dict[str, Any]] = None
) -> str:
    return (
        json.dumps(
            chrome_trace_document(spans, meta),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )
        + "\n"
    )


# ----------------------------------------------------------------------
# Trace-shape queries (used by tests and the CLI summary)
# ----------------------------------------------------------------------
def trace_roots(spans: Sequence[SpanDict]) -> List[SpanDict]:
    """Spans with no parent, in start order."""
    return [span for span in spans if not span.get("parent_id")]


def connected_trace_ids(spans: Sequence[SpanDict]) -> List[str]:
    """Distinct trace ids whose spans all reach a root via parent edges."""
    by_id = {span["span_id"]: span for span in spans}
    connected: Dict[str, bool] = {}
    for span in spans:
        trace_id = span["trace_id"]
        current: Optional[SpanDict] = span
        hops = 0
        while current is not None and hops <= len(by_id):
            parent_id = current.get("parent_id")
            if not parent_id:
                break
            current = by_id.get(parent_id)
            hops += 1
        reaches_root = current is not None and not current.get("parent_id")
        connected[trace_id] = connected.get(trace_id, True) and reaches_root
    return sorted(t for t, ok in connected.items() if ok)
