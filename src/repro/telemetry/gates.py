"""Health-gate evaluation over windowed metric readings.

The rollout engine (and any other SLA-style controller) needs to answer
one question: *did this metric regress during the last observation
window?* — not "what is its lifetime value". A :class:`GateWindow`
snapshots the relevant instruments of a
:class:`~repro.telemetry.metrics.MetricsRegistry` when it opens and
evaluates every :class:`GateSpec` against the **delta** accumulated since,
so a gate only sees what happened inside its own soak window:

* ``counter-max-increase`` — the counter (summed across label sets whose
  rendered key starts with the metric name) may grow by at most
  ``threshold`` during the window;
* ``histogram-quantile-max`` — the ``quantile`` of the observations added
  to the histogram during the window must stay <= ``threshold``. The
  quantile is computed from per-bucket count deltas with the same
  upper-bound semantics as :meth:`~repro.telemetry.metrics.Histogram.
  quantile`; an empty window passes (no evidence of regression).

Everything reads existing instruments; opening and evaluating a window
schedules nothing and draws no randomness, so gate evaluation never
perturbs trace or history digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["GateSpec", "GateResult", "GateWindow", "default_rollout_gates"]

#: The supported gate kinds.
GATE_KINDS = ("counter-max-increase", "histogram-quantile-max")


@dataclass(frozen=True)
class GateSpec:
    """One health condition evaluated over an observation window."""

    name: str
    kind: str
    metric: str
    threshold: float
    #: Only meaningful for ``histogram-quantile-max``.
    quantile: float = 0.95

    def __post_init__(self) -> None:
        if self.kind not in GATE_KINDS:
            raise ValueError("unknown gate kind: %r" % self.kind)
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]: %r" % self.quantile)


@dataclass(frozen=True)
class GateResult:
    """The verdict of one gate over one window."""

    name: str
    kind: str
    metric: str
    threshold: float
    observed: float
    ok: bool
    #: Number of window samples behind ``observed`` (histogram gates).
    samples: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "threshold": self.threshold,
            "observed": round(self.observed, 9),
            "ok": self.ok,
            "samples": self.samples,
        }

    def __str__(self) -> str:
        return "%s[%s]: observed %.6f vs threshold %.6f -> %s" % (
            self.name,
            self.metric,
            self.observed,
            self.threshold,
            "ok" if self.ok else "TRIP",
        )


class GateWindow:
    """Baseline snapshot + delta evaluation for a set of gates."""

    def __init__(
        self, registry: MetricsRegistry, gates: Sequence[GateSpec]
    ) -> None:
        self._registry = registry
        self.gates = tuple(gates)
        #: metric name -> summed counter value at open.
        self._counter_base: Dict[str, float] = {}
        #: metric name -> (buckets, counts at open).
        self._histogram_base: Dict[str, Tuple[Tuple[float, ...], List[int]]] = {}
        for gate in self.gates:
            if gate.kind == "counter-max-increase":
                self._counter_base[gate.metric] = self._counter_total(gate.metric)
            else:
                buckets, counts = self._histogram_counts(gate.metric)
                self._histogram_base[gate.metric] = (buckets, counts)

    # ------------------------------------------------------------------
    def _counter_total(self, metric: str) -> float:
        """Sum the counter across every label set of ``metric``."""
        return sum(c.value for c in self._registry.counters_named(metric))

    def _histogram_counts(
        self, metric: str
    ) -> Tuple[Tuple[float, ...], List[int]]:
        """Merged bucket counts across every label set of ``metric``."""
        buckets: Tuple[float, ...] = ()
        merged: List[int] = []
        for histogram in self._registry.histograms_named(metric):
            if not buckets:
                buckets = histogram.buckets
                merged = list(histogram.counts)
            elif histogram.buckets == buckets:
                for i, count in enumerate(histogram.counts):
                    merged[i] += count
        return buckets, merged

    # ------------------------------------------------------------------
    def evaluate(self) -> List[GateResult]:
        """Judge every gate against the deltas since the window opened."""
        results: List[GateResult] = []
        for gate in self.gates:
            if gate.kind == "counter-max-increase":
                observed = (
                    self._counter_total(gate.metric)
                    - self._counter_base[gate.metric]
                )
                results.append(
                    GateResult(
                        name=gate.name,
                        kind=gate.kind,
                        metric=gate.metric,
                        threshold=gate.threshold,
                        observed=observed,
                        ok=observed <= gate.threshold,
                        samples=int(observed),
                    )
                )
                continue
            base_buckets, base_counts = self._histogram_base[gate.metric]
            buckets, counts = self._histogram_counts(gate.metric)
            if not buckets:
                results.append(
                    GateResult(
                        name=gate.name,
                        kind=gate.kind,
                        metric=gate.metric,
                        threshold=gate.threshold,
                        observed=0.0,
                        ok=True,
                        samples=0,
                    )
                )
                continue
            if base_buckets == buckets and base_counts:
                deltas = [c - b for c, b in zip(counts, base_counts)]
            else:  # histogram created after the window opened
                deltas = list(counts)
            observed, samples = _windowed_quantile(
                buckets, deltas, gate.quantile
            )
            results.append(
                GateResult(
                    name=gate.name,
                    kind=gate.kind,
                    metric=gate.metric,
                    threshold=gate.threshold,
                    observed=observed,
                    ok=samples == 0 or observed <= gate.threshold,
                    samples=samples,
                )
            )
        return results

    def trips(self) -> List[GateResult]:
        """The failed gates only (empty list means the window is healthy)."""
        return [r for r in self.evaluate() if not r.ok]

    def __repr__(self) -> str:
        return "GateWindow(%d gates)" % len(self.gates)


def _windowed_quantile(
    buckets: Tuple[float, ...], deltas: Sequence[int], fraction: float
) -> Tuple[float, int]:
    """Bucket-upper-bound quantile over a window's count deltas."""
    total = sum(deltas)
    if total <= 0:
        return 0.0, 0
    rank = max(1, int(fraction * total + 0.999999))
    seen = 0
    for i, count in enumerate(deltas):
        seen += count
        if seen >= rank:
            return buckets[min(i, len(buckets) - 1)], total
    return buckets[-1], total


def default_rollout_gates(
    max_dropped: float = 0.0, p95_latency: float = 0.15
) -> Tuple[GateSpec, ...]:
    """The stock rollout health gates (see docs/ROLLOUT.md).

    * any request dropped during the soak window trips the error gate;
    * the soak window's p95 virtual request latency must stay under
      ``p95_latency`` seconds.
    """
    return (
        GateSpec(
            name="no-new-drops",
            kind="counter-max-increase",
            metric="ipvs.dropped_total",
            threshold=max_dropped,
        ),
        GateSpec(
            name="latency-p95",
            kind="histogram-quantile-max",
            metric="ipvs.request_latency_seconds",
            threshold=p95_latency,
            quantile=0.95,
        ),
    )
