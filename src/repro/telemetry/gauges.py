"""Pull-gauges over the platform's existing hot-path counters.

The registry/filter/event-loop hot paths were tuned in the perf PR and
must stay untouched; they already count everything worth charting (the
event loop's ``fired``/``pending``, the network's
:class:`~repro.sim.network.NetworkStats`, the LDAP filter parse cache's
``cache_info()``, the service registry's lookup counter). Observable
gauges read those counters **only at snapshot time**, so instrumentation
adds zero work per operation.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["install_platform_gauges"]

_NETWORK_FIELDS = (
    "sent",
    "delivered",
    "dropped_loss",
    "dropped_partition",
    "dropped_dead",
    "bytes_sent",
)


def install_platform_gauges(
    metrics: MetricsRegistry,
    loop: Optional[Any] = None,
    network: Optional[Any] = None,
    service_registry: Optional[Any] = None,
) -> MetricsRegistry:
    """Register observable gauges for whatever subsystems are given."""
    if loop is not None:
        metrics.gauge("eventloop.fired", fn=lambda: loop.fired)
        metrics.gauge("eventloop.pending", fn=lambda: loop.pending)
    if network is not None:
        stats = network.stats
        for field_name in _NETWORK_FIELDS:
            metrics.gauge(
                "network.%s" % field_name,
                fn=lambda f=field_name: getattr(stats, f),
            )
    if service_registry is not None:
        metrics.gauge(
            "registry.lookups", fn=lambda: service_registry.lookups
        )

    from repro.osgi.filter import parse_filter_cache_info

    metrics.gauge(
        "filter.parse_cache_hits", fn=lambda: parse_filter_cache_info().hits
    )
    metrics.gauge(
        "filter.parse_cache_misses", fn=lambda: parse_filter_cache_info().misses
    )
    metrics.gauge(
        "filter.parse_cache_size", fn=lambda: parse_filter_cache_info().currsize
    )
    return metrics
