"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the measurement substrate the paper's dependability prose
lacks: every instrument is a plain in-process object keyed by ``(name,
labels)``, carries **no wall-clock state** (timestamps, when a caller wants
them, come from the sim :class:`~repro.sim.clock.Clock`), and snapshots in
a single deterministic, sorted pass — so two same-seed runs serialise to
byte-identical JSON.

Three instrument kinds, mirroring the Prometheus trinity:

* :class:`Counter` — monotonically increasing count (requests routed,
  registry lookups);
* :class:`Gauge` — a point-in-time level, either set directly or *pulled*
  from a zero-argument callable at snapshot time. Pull gauges are how the
  hot paths stay untouched: the event loop's ``fired``/``pending``
  counters, the network's stats and the LDAP-filter parse cache already
  count everything the dashboard needs, and an observable gauge reads them
  only when a snapshot is taken;
* :class:`Histogram` — fixed upper-bound buckets with ``<=`` (Prometheus
  ``le``) semantics, plus sum and count, for latency distributions such as
  ``migration.failover_seconds``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram upper bounds, in seconds (latency-shaped).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up: %r" % amount)
        self.value += amount


class Gauge:
    """A level that can be set directly or observed through a callable."""

    __slots__ = ("name", "labels", "_value", "_fn")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError("gauge %s is observable (pull-only)" % self.name)
        self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (value <= bound) semantics."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        #: one slot per bound plus the +inf overflow slot.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, fraction: float) -> float:
        """Bucket-upper-bound estimate of the ``fraction`` quantile.

        Returns the upper bound of the bucket the quantile falls in (the
        last finite bound for the overflow bucket), 0.0 when empty.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.999999))
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % kv for kv in labels))


class MetricsRegistry:
    """Get-or-create home of every instrument; snapshots deterministically."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_items(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None, **labels: Any
    ) -> Gauge:
        key = (name, _label_items(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1], fn=fn)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_items(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, key[1], buckets=buckets
            )
        return instrument

    def remove(self, name: str, **labels: Any) -> None:
        """Drop one instrument (e.g. gauges of a departed instance)."""
        key = (name, _label_items(labels))
        self._counters.pop(key, None)
        self._gauges.pop(key, None)
        self._histograms.pop(key, None)

    # ------------------------------------------------------------------
    def counters_named(self, name: str) -> List[Counter]:
        """Every counter with ``name``, across label sets, label-sorted."""
        return [
            counter
            for (key_name, _labels), counter in sorted(self._counters.items())
            if key_name == name
        ]

    def histograms_named(self, name: str) -> List[Histogram]:
        """Every histogram with ``name``, across label sets, label-sorted."""
        return [
            histogram
            for (key_name, _labels), histogram in sorted(self._histograms.items())
            if key_name == name
        ]

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Every instrument's current reading, sorted and JSON-ready."""
        counters = {
            _render_key(*key): instrument.value
            for key, instrument in sorted(self._counters.items())
        }
        gauges = {
            _render_key(*key): instrument.value
            for key, instrument in sorted(self._gauges.items())
        }
        histograms: Dict[str, Any] = {}
        for key, histogram in sorted(self._histograms.items()):
            histograms[_render_key(*key)] = {
                "buckets": list(histogram.buckets),
                "counts": list(histogram.counts),
                "sum": histogram.sum,
                "count": histogram.count,
                "p50": histogram.quantile(0.50),
                "p95": histogram.quantile(0.95),
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def __repr__(self) -> str:
        return "MetricsRegistry(counters=%d, gauges=%d, histograms=%d)" % (
            len(self._counters),
            len(self._gauges),
            len(self._histograms),
        )
