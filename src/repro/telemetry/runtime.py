"""The zero-overhead-when-disabled switch for the telemetry subsystem.

Instrumented hot paths (network send/deliver, ipvs routing, registry
lookups, migration deploys) guard every telemetry action with::

    from repro.telemetry import runtime as _rt
    ...
    if _rt.ACTIVE is not None:
        _rt.ACTIVE.tracer.start_span(...)

When no :class:`Telemetry` is activated the cost is one module-attribute
load and an ``is not None`` compare — no allocation, no callable
indirection — which is what keeps the bench suite inside its <3%
regression budget with telemetry off.

Exactly one telemetry handle is active at a time (the sim is
single-threaded and scenarios own their whole process); activating a new
one replaces the old. Scenario drivers use :func:`enabled` to scope
activation; long-lived drivers (the chaos campaign) call
:func:`activate`/:func:`deactivate` explicitly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Span, Tracer

__all__ = ["Telemetry", "ACTIVE", "activate", "deactivate", "enabled", "maybe_span"]


class Telemetry:
    """One scenario's tracer + metrics registry, bound to sim time.

    Parameters
    ----------
    clock:
        The sim :class:`~repro.sim.clock.Clock` (timestamps).
    rng:
        The cluster's :class:`~repro.sim.rng.RngStreams`; node-tagged
        span ids come from per-node ``telemetry/<node>`` substreams
        (lane-count invariant), untagged ones from the base
        ``"telemetry"`` stream — either way every pre-existing stream's
        draws are unchanged.
    scenario:
        Free-form label carried into exports.
    """

    def __init__(self, clock: Any, rng: Any, scenario: str = "") -> None:
        self.clock = clock
        self.tracer = Tracer(clock, rng)
        self.metrics = MetricsRegistry()
        self.scenario = scenario
        self.root: Optional[Span] = None

    # ------------------------------------------------------------------
    def open_root(self, name: str) -> Span:
        """Push the ambient root span stitching timer-driven causality."""
        if self.root is not None:
            raise RuntimeError("root span already open: %s" % self.root.name)
        self.root = self.tracer.start_span(name, parent=None)
        self.tracer.push_scope(self.root.context)
        return self.root

    def close_root(self) -> None:
        if self.root is None:
            return
        self.tracer.pop_scope()
        self.root.finish(self.clock.now)
        self.root = None

    def export_spans(self) -> List[Dict[str, Any]]:
        return self.tracer.export()

    def __repr__(self) -> str:
        return "Telemetry(%s, spans=%d)" % (
            self.scenario or "?",
            len(self.tracer.spans),
        )


#: The active handle, or None (the common, zero-overhead case).
ACTIVE: Optional[Telemetry] = None


def activate(telemetry: Telemetry) -> Telemetry:
    global ACTIVE
    ACTIVE = telemetry
    return telemetry


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


@contextmanager
def enabled(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Activate ``telemetry`` for a block, restoring the previous handle."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        ACTIVE = previous


@contextmanager
def maybe_span(
    name: str,
    node: str = "",
    attributes: Optional[Dict[str, Any]] = None,
) -> Iterator[Optional[Span]]:
    """A span when telemetry is active, a no-op otherwise.

    Convenience for warm paths (multicasts, view changes, dispatches);
    the hottest paths inline the ``ACTIVE is not None`` check instead.
    """
    active = ACTIVE
    if active is None:
        yield None
        return
    with active.tracer.span(name, node=node, attributes=attributes) as span:
        yield span
