"""Causal spans over sim time: the tracing half of ``repro.telemetry``.

A :class:`Span` is one named operation (a multicast, a view change, an
ipvs request, a failover) with a start/end in **virtual seconds** and a
:class:`SpanContext` identifying it. Context propagates two ways:

* **in-process** — the tracer keeps an explicit context stack (the sim is
  single-threaded, so no thread-locals): :meth:`Tracer.span` activates a
  span around a block, and any span started inside becomes its child;
* **cross-node** — :class:`~repro.sim.network.Network` captures the
  current context on ``send`` and re-activates it around delivery, so the
  receiving handler's spans attach to the sender's span without any layer
  having to thread ids through its payloads.

Ids are minted from the cluster's dedicated ``"telemetry"`` RNG streams
(:mod:`repro.sim.rng`), so existing streams' draws — and every pinned
chaos trace digest — are unchanged, while two same-seed runs produce
byte-identical span dumps. When the tracer is handed the cluster's
:class:`~repro.sim.rng.RngStreams` (rather than a bare
``random.Random``), each node's ids come from its own named substream
(``telemetry/<node>``): an id is then a pure function of the root seed,
the node and that node's span count — independent of how spans from
*different* nodes interleave, and therefore identical whether the sim
runs on the global scheduler, on one lane, or on fifty.

Timer-driven causality (a node crash surfaces as missing heartbeats, not
as a message) is stitched by the *ambient root span*: a scenario or chaos
episode pushes one root context for its whole duration, so suspicion,
view change and failover spans with no in-band cause still join the same
trace as the client requests.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["SpanContext", "Span", "Tracer"]

#: Sentinel distinguishing "no parent given" from "explicitly parentless".
_UNSET = object()


@dataclass(frozen=True)
class SpanContext:
    """What propagates: the trace a span belongs to, and the span itself."""

    trace_id: str
    span_id: str


class Span:
    """One operation's record; ``finish`` is idempotent and may come late
    (deploy completions end their span from an event-loop callback)."""

    __slots__ = ("name", "context", "parent_id", "node", "start", "end", "attributes")

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_id: Optional[str],
        node: str,
        start: float,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attributes = attributes

    def finish(self, at: float) -> None:
        if self.end is None:
            self.end = at

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form; an unfinished span reads as zero-length."""
        end = self.end if self.end is not None else self.start
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "start": round(self.start, 9),
            "end": round(end, 9),
            "attributes": {k: self.attributes[k] for k in sorted(self.attributes)},
        }

    def __repr__(self) -> str:
        return "Span(%s, %s, node=%s, start=%.4f, %s)" % (
            self.name,
            self.context.span_id,
            self.node or "?",
            self.start,
            "open" if self.end is None else "%.4fs" % (self.end - self.start),
        )


class Tracer:
    """Mints spans from the sim clock and a dedicated RNG stream."""

    def __init__(self, clock: Any, rng: Any) -> None:
        self._clock = clock
        # Accept either a bare random.Random (legacy single-stream mode,
        # used directly by unit tests) or an RngStreams-like factory with
        # per-entity substreams (per-node id mode; lane-count invariant).
        if hasattr(rng, "substream"):
            self._streams = rng
            self._rng: random.Random = rng.stream("telemetry")
        else:
            self._streams = None
            self._rng = rng
        self._stack: List[SpanContext] = []
        #: Every span ever started, in start order (deterministic).
        self.spans: List[Span] = []

    # ------------------------------------------------------------------
    def _new_id(self, node: str = "") -> str:
        if node and self._streams is not None:
            rng = self._streams.substream("telemetry", node)
        else:
            rng = self._rng
        return "%016x" % rng.getrandbits(64)

    def current_context(self) -> Optional[SpanContext]:
        return self._stack[-1] if self._stack else None

    def start_span(
        self,
        name: str,
        node: str = "",
        parent: Any = _UNSET,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span; the caller ends it with :meth:`Span.finish`.

        ``parent`` defaults to the active context; pass ``None`` to force
        a new root trace.
        """
        if parent is _UNSET:
            parent = self.current_context()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            trace_id = self._new_id(node)
            parent_id = None
        context = SpanContext(trace_id, self._new_id(node))
        span = Span(
            name=name,
            context=context,
            parent_id=parent_id,
            node=node,
            start=self._clock.now,
            attributes=dict(attributes or {}),
        )
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self, context: Optional[SpanContext]) -> Iterator[None]:
        """Make ``context`` the ambient parent for the enclosed block."""
        if context is None:
            yield
            return
        self._stack.append(context)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def span(
        self,
        name: str,
        node: str = "",
        parent: Any = _UNSET,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Span]:
        """Start, activate and (on exit) finish a span around a block."""
        opened = self.start_span(name, node=node, parent=parent, attributes=attributes)
        self._stack.append(opened.context)
        try:
            yield opened
        finally:
            self._stack.pop()
            opened.finish(self._clock.now)

    # ------------------------------------------------------------------
    # Ambient root scope (non-contextmanager: scenarios span many run_for
    # calls, so the push and the pop happen at different call sites).
    # ------------------------------------------------------------------
    def push_scope(self, context: SpanContext) -> None:
        self._stack.append(context)

    def pop_scope(self) -> None:
        if self._stack:
            self._stack.pop()

    def export(self) -> List[Dict[str, Any]]:
        """Every span as a canonical dict, in start order."""
        return [span.to_dict() for span in self.spans]

    def __repr__(self) -> str:
        return "Tracer(spans=%d, depth=%d)" % (len(self.spans), len(self._stack))
