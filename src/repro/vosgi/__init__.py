"""Virtual OSGi instances (VOSGi) — §2 of the paper.

The architecture stacks per-customer OSGi environments *inside* a host OSGi
environment (Figure 3), and lets the stacked instances use explicitly
exported packages and services of the host (Figure 4):

* :class:`~repro.vosgi.delegation.ExportPolicy` — the administrator's
  explicit list of host packages/service classes visible to an instance;
  nothing leaks without it.
* :class:`~repro.vosgi.instance.VirtualInstance` — a child framework with
  the *custom topmost loader*: normal lookup first, then (only on failure,
  and only for exported names) delegation to the host framework. Host
  services matching the policy are mirrored into the child registry and
  track the host dynamically.
* :class:`~repro.vosgi.manager.InstanceManagerActivator` — the Instance
  Manager as a host bundle controlling instance life-cycles.
* :mod:`~repro.vosgi.deployment` — the Figure 1/2/3 deployment cost
  models (JVM-per-customer vs shared JVM vs stacked VOSGi).
"""

from repro.vosgi.delegation import DelegationLoader, ExportPolicy, ServiceMirror
from repro.vosgi.deployment import DeploymentCosts, DeploymentModel, estimate_costs
from repro.vosgi.instance import VirtualInstance
from repro.vosgi.manager import INSTANCE_MANAGER_CLASS, InstanceManager, InstanceManagerActivator
from repro.vosgi.remote import RemoteInstanceHost, RemoteInstanceManager

__all__ = [
    "DelegationLoader",
    "DeploymentCosts",
    "DeploymentModel",
    "ExportPolicy",
    "INSTANCE_MANAGER_CLASS",
    "InstanceManager",
    "InstanceManagerActivator",
    "RemoteInstanceHost",
    "RemoteInstanceManager",
    "ServiceMirror",
    "VirtualInstance",
    "estimate_costs",
]
