"""Host→instance delegation: explicit exports, checked at the boundary.

The paper (§2): *"the services and packages to be exported to the virtual
instances need to be explicitly indicated. This information is then used in
a custom classloader that can be seen as the topmost classloader in the
classloader's hierarchy of the virtual instance."*

:class:`ExportPolicy` is that explicit indication. :class:`DelegationLoader`
is the custom topmost loader: consulted only after normal lookup fails, it
verifies the package is exported before asking the host framework, raising
:class:`~repro.osgi.loader.ClassNotFoundError` otherwise — so no namespace
reference crosses the boundary without administrator instruction.
:class:`ServiceMirror` applies the analogous rule to services.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.osgi.bundle import Bundle, BundleState
from repro.osgi.events import ServiceEvent, ServiceEventType
from repro.osgi.loader import ClassNotFoundError
from repro.osgi.registry import OBJECTCLASS, ServiceReference, ServiceRegistration

if TYPE_CHECKING:  # pragma: no cover
    from repro.osgi.framework import Framework

#: Property stamped on mirrored registrations inside a virtual instance.
IMPORTED_MARK = "vosgi.imported"
#: Property naming the host service id a mirror tracks.
IMPORTED_FROM = "vosgi.host.service.id"


class ExportPolicy:
    """What one virtual instance may use from the host framework."""

    def __init__(
        self,
        packages: "Set[str] | List[str] | tuple" = (),
        service_classes: "Set[str] | List[str] | tuple" = (),
    ) -> None:
        self._packages: Set[str] = set(packages)
        self._service_classes: Set[str] = set(service_classes)

    def export_package(self, name: str) -> "ExportPolicy":
        self._packages.add(name)
        return self

    def export_service(self, clazz: str) -> "ExportPolicy":
        self._service_classes.add(clazz)
        return self

    def withdraw_package(self, name: str) -> None:
        self._packages.discard(name)

    def withdraw_service(self, clazz: str) -> None:
        self._service_classes.discard(clazz)

    def allows_package(self, name: str) -> bool:
        return name in self._packages

    def allows_service(self, classes: "tuple | list") -> bool:
        return any(c in self._service_classes for c in classes)

    @property
    def packages(self) -> Set[str]:
        return set(self._packages)

    @property
    def service_classes(self) -> Set[str]:
        return set(self._service_classes)

    def __repr__(self) -> str:
        return "ExportPolicy(packages=%s, services=%s)" % (
            sorted(self._packages),
            sorted(self._service_classes),
        )


class DelegationLoader:
    """The custom topmost loader of a virtual instance.

    ``(package, symbol) -> object``: verifies the export policy, then
    resolves through the *host system bundle's* class space so host wiring
    applies. Counts hits/denials for the Fig. 4 resource-sharing benchmark.
    """

    def __init__(self, host: "Framework", policy: ExportPolicy) -> None:
        self._host = host
        self.policy = policy
        self.delegated = 0
        self.denied = 0

    def __call__(self, package: str, symbol: str) -> Any:
        qualified = "%s.%s" % (package, symbol)
        if not self.policy.allows_package(package):
            self.denied += 1
            raise ClassNotFoundError(qualified, "vosgi-delegation")
        provider = self._find_host_provider(package)
        if provider is None:
            self.denied += 1
            raise ClassNotFoundError(qualified, "vosgi-delegation")
        self.delegated += 1
        return provider.namespace.load_local(package, symbol)

    def _find_host_provider(self, package: str) -> Optional[Bundle]:
        best: Optional[Bundle] = None
        best_version = None
        for bundle in self._host.bundles():
            if bundle.state == BundleState.UNINSTALLED:
                continue
            for export in bundle.definition.manifest.exports:
                if export.name != package:
                    continue
                if best is None or export.version > best_version:
                    best = bundle
                    best_version = export.version
        return best

    def __repr__(self) -> str:
        return "DelegationLoader(delegated=%d, denied=%d)" % (
            self.delegated,
            self.denied,
        )


class ServiceMirror:
    """Mirrors policy-exported host services into a child registry.

    For every host service whose object classes intersect the policy's
    exported service classes, an equivalent registration appears in the
    virtual instance (marked ``vosgi.imported``), tracking host
    registration, modification and unregistration. Client bundles inside
    the instance use the host's *single* service object — the Figure 4
    "only one instance of Bundle II" property.
    """

    def __init__(
        self, host: "Framework", child: "Framework", policy: ExportPolicy
    ) -> None:
        self._host = host
        self._child = child
        self.policy = policy
        self._mirrors: Dict[int, ServiceRegistration] = {}
        self._active = False

    # ------------------------------------------------------------------
    def open(self) -> None:
        """Start mirroring; already-registered host services mirror now."""
        if self._active:
            return
        self._active = True
        self._host.dispatcher.add_service_listener(self._on_host_event, None)
        for reference in self._host.registry.get_references():
            self._maybe_mirror(reference)

    def close(self) -> None:
        if not self._active:
            return
        self._active = False
        self._host.dispatcher.remove_service_listener(self._on_host_event)
        for host_service_id, registration in list(self._mirrors.items()):
            try:
                registration.unregister()
            except Exception:
                pass
            # Release the use count taken from the host registry when the
            # mirror was created, or stopped instances pile up phantom uses.
            for reference in self._host.registry.get_references():
                if reference.service_id == host_service_id:
                    try:
                        self._host.registry.unget_service(
                            self._host.system_bundle, reference
                        )
                    except Exception:
                        pass
                    break
        self._mirrors.clear()

    def refresh(self) -> None:
        """Re-apply the policy after it changed (withdraw/extend exports)."""
        if not self._active:
            return
        for service_id, registration in list(self._mirrors.items()):
            classes = registration.reference.get_property(OBJECTCLASS)
            if not self.policy.allows_service(classes):
                registration.unregister()
                del self._mirrors[service_id]
        for reference in self._host.registry.get_references():
            self._maybe_mirror(reference)

    @property
    def mirrored_count(self) -> int:
        return len(self._mirrors)

    # ------------------------------------------------------------------
    def _on_host_event(self, event: ServiceEvent) -> None:
        if not self._active or not self._child.active:
            return
        reference = event.reference
        if event.type == ServiceEventType.REGISTERED:
            self._maybe_mirror(reference)
        elif event.type == ServiceEventType.MODIFIED:
            self._update_mirror(reference)
        elif event.type == ServiceEventType.UNREGISTERING:
            self._drop_mirror(reference)

    def _maybe_mirror(self, reference: ServiceReference) -> None:
        if not self._child.active:
            return
        classes = reference.object_classes
        if not self.policy.allows_service(classes):
            return
        if reference.service_id in self._mirrors:
            return
        if reference.get_property(IMPORTED_MARK):
            return  # never re-mirror a mirror (stacked instances)
        service = self._host.registry.get_service(
            self._host.system_bundle, reference
        )
        if service is None:
            return
        properties = {
            k: v
            for k, v in reference.properties.items()
            if k not in (OBJECTCLASS, "service.id")
        }
        properties[IMPORTED_MARK] = True
        properties[IMPORTED_FROM] = reference.service_id
        registration = self._child.registry.register(
            self._child.system_bundle, classes, service, properties
        )
        self._mirrors[reference.service_id] = registration

    def _update_mirror(self, reference: ServiceReference) -> None:
        registration = self._mirrors.get(reference.service_id)
        if registration is None:
            self._maybe_mirror(reference)
            return
        if not self.policy.allows_service(reference.object_classes):
            self._drop_mirror(reference)
            return
        properties = {
            k: v
            for k, v in reference.properties.items()
            if k not in (OBJECTCLASS, "service.id")
        }
        properties[IMPORTED_MARK] = True
        properties[IMPORTED_FROM] = reference.service_id
        registration.set_properties(properties)

    def _drop_mirror(self, reference: ServiceReference) -> None:
        registration = self._mirrors.pop(reference.service_id, None)
        if registration is not None:
            try:
                registration.unregister()
            finally:
                try:
                    self._host.registry.unget_service(
                        self._host.system_bundle, reference
                    )
                except Exception:
                    pass

    def __repr__(self) -> str:
        return "ServiceMirror(%d mirrored, %s)" % (
            len(self._mirrors),
            "open" if self._active else "closed",
        )
