"""Deployment cost models for the Figure 1/2/3 comparison.

The paper motivates stacking virtual instances inside one host OSGi
framework by contrasting three layouts:

* **Figure 1** — one JVM per customer, managed by an external Instance
  Manager over RMI/JMX/TCP: per-JVM baseline memory and startup, plus
  management operations that pay a network round trip;
* **Figure 2** — all instances embedded in one JVM, managed through a Map:
  one JVM baseline, in-process management calls;
* **Figure 3/4** — instances stacked inside a host OSGi framework: same
  single-JVM costs plus the ability to *share* base bundles, subtracting
  duplicated bundle footprints.

The constants are calibrated to 2008-era HotSpot numbers (they only need
to preserve the comparison's *shape*, per DESIGN.md): ~40 MiB baseline
heap+metaspace per JVM, ~1.5 s JVM boot + ~0.8 s framework boot, ~1.5 ms
per RMI/JMX management round trip vs ~2 µs for an in-JVM virtual call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence

#: Baseline resident bytes for one JVM process (heap + permgen + mapped).
JVM_BASELINE_BYTES = 40 * 1024 * 1024
#: Resident bytes of an empty OSGi framework inside a JVM.
FRAMEWORK_BASELINE_BYTES = 6 * 1024 * 1024
#: Extra bookkeeping per virtual instance stacked on a host framework.
VOSGI_INSTANCE_OVERHEAD_BYTES = 512 * 1024
#: Seconds to boot a JVM process (2008-era HotSpot, client VM).
JVM_STARTUP_SECONDS = 1.5
#: Seconds to boot an OSGi framework (Felix-class) once the JVM is up.
FRAMEWORK_STARTUP_SECONDS = 0.8
#: Seconds for one remote management operation (RMI/JMX round trip, LAN).
REMOTE_MANAGEMENT_OP_SECONDS = 1.5e-3
#: Seconds for one in-process management call.
LOCAL_MANAGEMENT_OP_SECONDS = 2e-6


class DeploymentModel(enum.Enum):
    """The three layouts of Figures 1-3."""

    SEPARATE_JVMS = "separate-jvms"  # Figure 1
    SHARED_JVM = "shared-jvm"  # Figure 2
    STACKED_VOSGI = "stacked-vosgi"  # Figures 3-4


@dataclass(frozen=True)
class DeploymentCosts:
    """Modelled costs of hosting ``instances`` customers in one layout."""

    model: DeploymentModel
    instances: int
    memory_bytes: int
    startup_seconds: float
    management_op_seconds: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model.value,
            "instances": self.instances,
            "memory_bytes": self.memory_bytes,
            "startup_seconds": self.startup_seconds,
            "management_op_seconds": self.management_op_seconds,
        }


def estimate_costs(
    model: DeploymentModel,
    instances: int,
    bundles_per_instance: int = 5,
    bundle_bytes: int = 64 * 1024,
    shared_bundles: int = 0,
) -> DeploymentCosts:
    """Estimate layout costs for ``instances`` customers.

    ``shared_bundles`` counts base bundles that, in the STACKED_VOSGI
    layout, are pulled down into the host and shared by every instance
    (Figure 4); the other layouts must duplicate them per customer.
    """
    if instances < 0:
        raise ValueError("instances must be >= 0")
    if shared_bundles > bundles_per_instance:
        raise ValueError("cannot share more bundles than each instance has")
    per_instance_payload = bundles_per_instance * bundle_bytes

    if model == DeploymentModel.SEPARATE_JVMS:
        memory = instances * (
            JVM_BASELINE_BYTES + FRAMEWORK_BASELINE_BYTES + per_instance_payload
        )
        startup = instances * (JVM_STARTUP_SECONDS + FRAMEWORK_STARTUP_SECONDS)
        op = REMOTE_MANAGEMENT_OP_SECONDS
    elif model == DeploymentModel.SHARED_JVM:
        memory = (
            JVM_BASELINE_BYTES
            + instances * (FRAMEWORK_BASELINE_BYTES + per_instance_payload)
        )
        startup = JVM_STARTUP_SECONDS + instances * FRAMEWORK_STARTUP_SECONDS
        op = LOCAL_MANAGEMENT_OP_SECONDS
    elif model == DeploymentModel.STACKED_VOSGI:
        duplicated = (bundles_per_instance - shared_bundles) * bundle_bytes
        memory = (
            JVM_BASELINE_BYTES
            + FRAMEWORK_BASELINE_BYTES  # the host framework
            + shared_bundles * bundle_bytes  # one shared copy
            + instances * (VOSGI_INSTANCE_OVERHEAD_BYTES + duplicated)
        )
        startup = (
            JVM_STARTUP_SECONDS
            + FRAMEWORK_STARTUP_SECONDS
            + instances * (FRAMEWORK_STARTUP_SECONDS * 0.25)
        )
        op = LOCAL_MANAGEMENT_OP_SECONDS
    else:  # pragma: no cover - enum is closed
        raise ValueError("unknown deployment model: %r" % model)

    return DeploymentCosts(
        model=model,
        instances=instances,
        memory_bytes=int(memory),
        startup_seconds=startup,
        management_op_seconds=op,
    )


def compare_models(
    instances: int,
    bundles_per_instance: int = 5,
    bundle_bytes: int = 64 * 1024,
    shared_bundles: int = 2,
) -> Dict[str, DeploymentCosts]:
    """All three layouts side by side, keyed by model value."""
    out: Dict[str, DeploymentCosts] = {}
    for model in DeploymentModel:
        shared = shared_bundles if model == DeploymentModel.STACKED_VOSGI else 0
        out[model.value] = estimate_costs(
            model,
            instances,
            bundles_per_instance=bundles_per_instance,
            bundle_bytes=bundle_bytes,
            shared_bundles=shared,
        )
    return out
