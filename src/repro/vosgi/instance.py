"""A virtual OSGi instance: one sandboxed customer environment.

A :class:`VirtualInstance` owns a child :class:`~repro.osgi.framework.Framework`
crafted "to appear as a normal OSGi environment to its client bundles" while:

* failing class lookups fall through to the host via the
  :class:`~repro.vosgi.delegation.DelegationLoader` (explicit exports only);
* policy-exported host services appear in the child registry through a
  :class:`~repro.vosgi.delegation.ServiceMirror`;
* every sensitive operation is attributed to the customer *principal* and
  checked against the platform :class:`~repro.isolation.SecurityManager`;
* resource usage of the whole instance is aggregated for the Monitoring
  Module and compared against the customer's
  :class:`~repro.isolation.ResourceQuota`.

Because the child framework persists through the same storage interface as
any framework, a virtual instance stopped on one node and started from the
same shared store on another node is *the same environment* — the property
the Migration Module exploits.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.isolation.quotas import ResourceQuota
from repro.osgi.bundle import Bundle
from repro.osgi.definition import BundleDefinition
from repro.osgi.events import BundleEvent, BundleEventType
from repro.osgi.framework import Framework
from repro.osgi.persistence import FrameworkStorage
from repro.vosgi.delegation import DelegationLoader, ExportPolicy, ServiceMirror

if TYPE_CHECKING:  # pragma: no cover
    from repro.isolation.policy import SecurityManager


class VirtualInstance:
    """One customer's sandboxed OSGi environment stacked on a host."""

    def __init__(
        self,
        name: str,
        host: Framework,
        policy: Optional[ExportPolicy] = None,
        quota: Optional[ResourceQuota] = None,
        storage: Optional[FrameworkStorage] = None,
        security: Optional["SecurityManager"] = None,
        repository: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.host = host
        self.policy = policy if policy is not None else ExportPolicy()
        self.quota = quota if quota is not None else ResourceQuota()
        self.security = security
        # ``repository`` is any object with get_definition/put_definition
        # (the SharedStore qualifies): the place bundle "archives" live so a
        # restore on a different node can re-materialize them.
        self.repository = repository
        self.framework = Framework(
            instance_id="vosgi:%s" % name,
            storage=storage,
            properties={"vosgi.instance": name, "vosgi.host": host.instance_id},
            definition_resolver=(
                repository.get_definition if repository is not None else None
            ),
        )
        self.loader = DelegationLoader(host, self.policy)
        self.mirror = ServiceMirror(host, self.framework, self.policy)
        self.framework.dispatcher.add_bundle_listener(self._on_bundle_event)
        # Platform-attributed consumption (e.g. network service time the
        # ipvs charges to this customer), counted alongside bundle ledgers.
        from repro.osgi.bundle import ResourceLedger

        self.platform_ledger = ResourceLedger()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self.framework.active

    def start(self) -> None:
        """Boot the child framework (restoring persisted bundles) and begin
        mirroring host services."""
        if self.running:
            return
        self.framework.start()
        for bundle in self.framework.bundles():
            bundle.namespace.fallback = self.loader
        self.mirror.open()

    def stop(self) -> None:
        """Persist and stop the child framework; withdraw mirrors."""
        if not self.running:
            return
        self.mirror.close()
        self.framework.stop()

    # ------------------------------------------------------------------
    # Bundle operations (the customer's view)
    # ------------------------------------------------------------------
    def install(
        self, definition: BundleDefinition, location: Optional[str] = None
    ) -> Bundle:
        if location is None:
            # Namespace the default location by instance: two customers
            # installing "the same" bundle carry *distinct archives* (their
            # definitions may close over per-customer state), and the
            # shared SAN repository must not conflate them.
            location = "bundle://%s/%s/%s" % (
                self.name,
                definition.symbolic_name,
                definition.version,
            )
        bundle = self.framework.install(definition, location)
        bundle.namespace.fallback = self.loader
        if self.repository is not None:
            self.repository.put_definition(bundle.location, definition)
        return bundle

    def bundles(self) -> List[Bundle]:
        return self.framework.bundles()

    def get_bundle_by_name(self, symbolic_name: str) -> Optional[Bundle]:
        return self.framework.get_bundle_by_name(symbolic_name)

    def _on_bundle_event(self, event: BundleEvent) -> None:
        # Bundles installed behind our back (state restore on start) still
        # get the topmost delegation loader.
        if event.type == BundleEventType.INSTALLED:
            event.bundle.namespace.fallback = self.loader

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def usage(self) -> Dict[str, float]:
        """Aggregate resource usage: bundle ledgers + platform-attributed."""
        cpu = self.platform_ledger.cpu_seconds
        memory = self.platform_ledger.memory_bytes
        disk = self.platform_ledger.disk_bytes
        for bundle in self.framework.bundles():
            snapshot = bundle.ledger.snapshot()
            cpu += snapshot["cpu_seconds"]
            memory += int(snapshot["memory_bytes"])
            disk += int(snapshot["disk_bytes"])
        return {
            "cpu_seconds": cpu,
            "memory_bytes": memory,
            "disk_bytes": disk,
        }

    def memory_footprint(self) -> int:
        """Notional resident size of the instance (see Framework method)."""
        return self.framework.memory_footprint()

    def describe(self) -> Dict[str, Any]:
        """Inventory used by the Migration Module's membership gossip."""
        return {
            "name": self.name,
            "running": self.running,
            "bundles": [
                {
                    "symbolic_name": b.symbolic_name,
                    "version": str(b.version),
                    "state": b.state.value,
                    "location": b.location,
                }
                for b in self.framework.bundles()
            ],
            "usage": self.usage(),
            "quota": {
                "cpu_share": self.quota.cpu_share,
                "memory_bytes": self.quota.memory_bytes,
                "disk_bytes": self.quota.disk_bytes,
            },
            "exports": {
                "packages": sorted(self.policy.packages),
                "services": sorted(self.policy.service_classes),
            },
        }

    def __repr__(self) -> str:
        return "VirtualInstance(%s, %s, %d bundles)" % (
            self.name,
            "running" if self.running else "stopped",
            len(self.framework.bundles()) if self.framework else 0,
        )
