"""The Instance Manager — "yet another bundle in the system" (§2).

:class:`InstanceManager` keeps the Map of virtual instances the paper
describes and controls their life-cycle; :class:`InstanceManagerActivator`
packages it as a host bundle that registers the manager in the host service
registry under :data:`INSTANCE_MANAGER_CLASS`, which is how the Monitoring,
Migration and Autonomic modules find it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.isolation.quotas import ResourceQuota
from repro.osgi.definition import BundleActivator, BundleDefinition, simple_bundle
from repro.osgi.errors import BundleException
from repro.osgi.persistence import FrameworkStorage
from repro.vosgi.delegation import ExportPolicy
from repro.vosgi.instance import VirtualInstance

if TYPE_CHECKING:  # pragma: no cover
    from repro.isolation.policy import SecurityManager
    from repro.osgi.bundle import BundleContext
    from repro.osgi.framework import Framework

#: Object class the Instance Manager service is registered under.
INSTANCE_MANAGER_CLASS = "vosgi.InstanceManager"

InstanceListener = Callable[[str, str], None]  # (event, instance_name)


class InstanceManager:
    """Creates, indexes and controls the host's virtual instances."""

    def __init__(
        self,
        host: "Framework",
        storage_factory: Optional[Callable[[str], FrameworkStorage]] = None,
        security: Optional["SecurityManager"] = None,
        repository: Optional[object] = None,
    ) -> None:
        self.host = host
        self._storage_factory = storage_factory
        self.security = security
        # Any object with get_definition/put_definition (e.g. the SAN's
        # SharedStore) from which restored instances re-read bundle archives.
        self.repository = repository
        self._instances: Dict[str, VirtualInstance] = {}
        self._listeners: List[InstanceListener] = []

    # ------------------------------------------------------------------
    # Instance life-cycle
    # ------------------------------------------------------------------
    def create_instance(
        self,
        name: str,
        policy: Optional[ExportPolicy] = None,
        quota: Optional[ResourceQuota] = None,
        start: bool = True,
    ) -> VirtualInstance:
        """Create (and by default start) a virtual instance.

        If a storage factory was configured and the shared store already
        holds state for ``vosgi:name`` — e.g. the instance previously ran
        on a failed node — starting it restores that state: this single
        code path serves both fresh admission and failure redeployment.
        """
        if name in self._instances:
            raise BundleException("virtual instance %r already exists" % name)
        storage = (
            self._storage_factory("vosgi:%s" % name)
            if self._storage_factory is not None
            else None
        )
        instance = VirtualInstance(
            name,
            self.host,
            policy=policy,
            quota=quota,
            storage=storage,
            security=self.security,
            repository=self.repository,
        )
        self._instances[name] = instance
        self._notify("created", name)
        if start:
            instance.start()
            self._notify("started", name)
        return instance

    def start_instance(self, name: str) -> None:
        instance = self.require(name)
        if not instance.running:
            instance.start()
            self._notify("started", name)

    def stop_instance(self, name: str) -> None:
        instance = self.require(name)
        if instance.running:
            instance.stop()
            self._notify("stopped", name)

    def destroy_instance(self, name: str, wipe_state: bool = False) -> None:
        """Stop and forget an instance; optionally delete persisted state.

        ``wipe_state=False`` (the default) keeps the SAN state so the
        instance can be re-created elsewhere — the migration path.
        """
        instance = self._instances.pop(name, None)
        if instance is None:
            return
        if instance.running:
            instance.stop()
        if wipe_state:
            instance.framework.storage.delete_state(instance.framework.instance_id)
        self._notify("destroyed", name)

    def release_instance(self, name: str) -> Optional[VirtualInstance]:
        """Drop an instance entry without touching the (possibly dead)
        child framework — used when the hosting node crashed under us."""
        instance = self._instances.pop(name, None)
        if instance is not None:
            self._notify("released", name)
        return instance

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[VirtualInstance]:
        return self._instances.get(name)

    def require(self, name: str) -> VirtualInstance:
        instance = self._instances.get(name)
        if instance is None:
            raise BundleException("no virtual instance named %r" % name)
        return instance

    def names(self) -> List[str]:
        return sorted(self._instances)

    def instances(self) -> List[VirtualInstance]:
        return [self._instances[n] for n in self.names()]

    @property
    def count(self) -> int:
        return len(self._instances)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def add_listener(self, listener: InstanceListener) -> None:
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: InstanceListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, event: str, name: str) -> None:
        for listener in list(self._listeners):
            try:
                listener(event, name)
            except Exception:
                pass

    def __repr__(self) -> str:
        return "InstanceManager(%d instances on %s)" % (
            len(self._instances),
            self.host.instance_id,
        )


class InstanceManagerActivator(BundleActivator):
    """Hosts an :class:`InstanceManager` as an OSGi bundle (Figure 3)."""

    def __init__(
        self,
        storage_factory: Optional[Callable[[str], FrameworkStorage]] = None,
        security: Optional["SecurityManager"] = None,
        repository: Optional[object] = None,
    ) -> None:
        self._storage_factory = storage_factory
        self._security = security
        self._repository = repository
        self.manager: Optional[InstanceManager] = None
        self._registration = None

    def start(self, context: "BundleContext") -> None:
        self.manager = InstanceManager(
            context.framework,
            storage_factory=self._storage_factory,
            security=self._security,
            repository=self._repository,
        )
        self._registration = context.register_service(
            INSTANCE_MANAGER_CLASS, self.manager, {"vosgi.role": "instance-manager"}
        )

    def stop(self, context: "BundleContext") -> None:
        if self.manager is not None:
            for name in self.manager.names():
                self.manager.stop_instance(name)
        self._registration = None
        self.manager = None


def instance_manager_bundle(
    storage_factory: Optional[Callable[[str], FrameworkStorage]] = None,
    security: Optional["SecurityManager"] = None,
    repository: Optional[object] = None,
) -> BundleDefinition:
    """Definition for the Instance Manager bundle, ready to install."""
    return simple_bundle(
        "vosgi.instance-manager",
        version="1.0.0",
        activator_factory=lambda: InstanceManagerActivator(
            storage_factory=storage_factory,
            security=security,
            repository=repository,
        ),
    )
