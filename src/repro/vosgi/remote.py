"""Figure 1 made real: per-process instances managed over the network.

The paper's first architecture runs "multiple OSGi instances, each one on
its own JVM", with an external Instance Manager that "must rely on
communication methods like RMI, JMX, or TCP/IP connections".

:class:`RemoteInstanceHost` is one such JVM: a framework attached to the
simulated network that executes management commands it receives.
:class:`RemoteInstanceManager` is the external manager: every operation is
a request/reply over the network and completes after the round trip —
so the management indirection the paper complains about is *measured* (by
the FIG1 benchmark) rather than assumed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cluster.future import Completion
from repro.osgi.bundle import BundleState
from repro.osgi.definition import BundleDefinition
from repro.osgi.framework import Framework
from repro.sim.eventloop import EventLoop
from repro.sim.network import Message, Network
from repro.telemetry import runtime as _rt
from repro.telemetry.runtime import maybe_span
from repro.telemetry.tracer import Span


class RemoteInstanceHost:
    """One customer's dedicated process ("JVM"), remotely managed."""

    def __init__(self, name: str, loop: EventLoop, network: Network) -> None:
        self.name = name
        self.loop = loop
        self.endpoint_name = "jvm/%s" % name
        self._endpoint = network.attach(self.endpoint_name, self._on_message)
        self.framework = Framework("jvm:%s" % name)
        #: Definitions installable by location, the host's local "disk".
        self.repository: Dict[str, BundleDefinition] = {}
        self.commands_served = 0

    def provision(self, location: str, definition: BundleDefinition) -> None:
        """Ship a bundle archive to the host (out-of-band, e.g. scp)."""
        self.repository[location] = definition

    def crash(self) -> None:
        self._endpoint.alive = False

    # ------------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "cmd" not in payload:
            return
        self.commands_served += 1
        with maybe_span(
            "rim.execute", node=self.name, attributes={"command": payload["cmd"]}
        ):
            reply: Dict[str, Any] = {"reply_to": payload["token"]}
            try:
                reply["result"] = self._execute(payload["cmd"], payload.get("args", {}))
                reply["ok"] = True
            except Exception as exc:
                reply["ok"] = False
                reply["error"] = str(exc)
            self._endpoint.send(message.source, reply)

    def _execute(self, command: str, args: Dict[str, Any]) -> Any:
        if command == "start-framework":
            self.framework.start()
            return True
        if command == "stop-framework":
            self.framework.stop()
            return True
        if command == "install":
            definition = self.repository.get(args["location"])
            if definition is None:
                raise KeyError("no archive at %s" % args["location"])
            bundle = self.framework.install(definition, args["location"])
            return bundle.bundle_id
        if command == "start-bundle":
            self._bundle(args["symbolic_name"]).start()
            return True
        if command == "stop-bundle":
            self._bundle(args["symbolic_name"]).stop()
            return True
        if command == "status":
            return {
                "active": self.framework.active,
                "bundles": {
                    b.symbolic_name: b.state.value for b in self.framework.bundles()
                },
            }
        raise ValueError("unknown command %r" % command)

    def _bundle(self, symbolic_name: str):
        bundle = self.framework.get_bundle_by_name(symbolic_name)
        if bundle is None:
            raise KeyError("no bundle %s" % symbolic_name)
        return bundle


class RemoteInstanceManager:
    """The external Instance Manager of Figure 1.

    Each call is a network round trip; the returned
    :class:`~repro.cluster.future.Completion` settles when the reply
    arrives (or fails on ``timeout``). Round-trip times are recorded in
    :attr:`round_trip_times` for the FIG1 benchmark.
    """

    def __init__(
        self,
        loop: EventLoop,
        network: Network,
        timeout: float = 5.0,
    ) -> None:
        self.loop = loop
        self.timeout = timeout
        self.endpoint_name = "instance-manager"
        self._endpoint = network.attach(self.endpoint_name, self._on_message)
        self._hosts: Dict[str, str] = {}  # instance name -> endpoint
        self._pending: Dict[int, "tuple[Completion, float]"] = {}
        self._spans: Dict[int, Span] = {}
        self._next_token = 1
        self.round_trip_times: List[float] = []

    # ------------------------------------------------------------------
    def register_host(self, host: RemoteInstanceHost) -> None:
        self._hosts[host.name] = host.endpoint_name

    def names(self) -> List[str]:
        return sorted(self._hosts)

    # ------------------------------------------------------------------
    def call(self, instance: str, command: str, **args: Any) -> Completion:
        """Issue one management command to ``instance``'s process."""
        endpoint = self._hosts.get(instance)
        if endpoint is None:
            raise KeyError("unknown instance %r" % instance)
        token = self._next_token
        self._next_token += 1
        completion: Completion = Completion("%s@%s" % (command, instance))
        sent_at = self.loop.clock.now
        self._pending[token] = (completion, sent_at)
        if _rt.ACTIVE is not None:
            tracer = _rt.ACTIVE.tracer
            span = tracer.start_span(
                "rim.call",
                attributes={"command": command, "instance": instance},
            )
            self._spans[token] = span
            with tracer.activate(span.context):
                self._endpoint.send(
                    endpoint, {"cmd": command, "args": args, "token": token}
                )
        else:
            self._endpoint.send(
                endpoint, {"cmd": command, "args": args, "token": token}
            )

        def expire() -> None:
            if completion.done:
                return
            self._pending.pop(token, None)
            self._finish_span(token, ok=False)
            completion.fail(
                TimeoutError("%s to %s timed out" % (command, instance)),
                at=self.loop.clock.now,
            )

        self.loop.call_after(self.timeout, expire, label="rim-timeout")
        return completion

    # Convenience wrappers mirroring the embedded InstanceManager API.
    def start_framework(self, instance: str) -> Completion:
        return self.call(instance, "start-framework")

    def stop_framework(self, instance: str) -> Completion:
        return self.call(instance, "stop-framework")

    def install(self, instance: str, location: str) -> Completion:
        return self.call(instance, "install", location=location)

    def start_bundle(self, instance: str, symbolic_name: str) -> Completion:
        return self.call(instance, "start-bundle", symbolic_name=symbolic_name)

    def stop_bundle(self, instance: str, symbolic_name: str) -> Completion:
        return self.call(instance, "stop-bundle", symbolic_name=symbolic_name)

    def status(self, instance: str) -> Completion:
        return self.call(instance, "status")

    @property
    def mean_rtt(self) -> float:
        if not self.round_trip_times:
            return 0.0
        return sum(self.round_trip_times) / len(self.round_trip_times)

    def _finish_span(self, token: int, ok: bool) -> None:
        span = self._spans.pop(token, None)
        if span is not None:
            span.attributes["ok"] = ok
            span.finish(self.loop.clock.now)

    # ------------------------------------------------------------------
    def _on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "reply_to" not in payload:
            return
        entry = self._pending.pop(payload["reply_to"], None)
        if entry is None:
            return  # late reply after timeout
        completion, sent_at = entry
        self._finish_span(payload["reply_to"], ok=bool(payload.get("ok")))
        self.round_trip_times.append(self.loop.clock.now - sent_at)
        if payload.get("ok"):
            completion.complete(payload.get("result"), at=self.loop.clock.now)
        else:
            completion.fail(
                RuntimeError(payload.get("error", "remote error")),
                at=self.loop.clock.now,
            )
