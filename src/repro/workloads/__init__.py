"""Reusable customer workload bundles.

The examples, tests and benchmarks all need "customer application"
bundles with controllable behaviour. This package provides the
recurring ones as library citizens:

* :class:`~repro.workloads.burner.CpuBurner` — consumes a configurable
  CPU share per second (drives SLA/monitoring experiments);
* :class:`~repro.workloads.kvstore.KeyValueStore` — a transactional
  key-value service over the bundle's SAN data area (the stateful +
  transactional service archetype of §3.2);
* :class:`~repro.workloads.webservice.EchoWebService` — registers a
  servlet with the host-exported ``http.HttpService`` and accounts its
  request work (the Figure 4 service-composition archetype);
* :class:`~repro.workloads.arrivals.OpenLoopArrivals` — deterministic
  open-loop traffic generation along a
  :class:`~repro.workloads.arrivals.DiurnalProfile` rate curve (drives
  the ``repro.macrobench`` million-user-day scenario).
"""

from repro.workloads.arrivals import DiurnalProfile, OpenLoopArrivals
from repro.workloads.burner import CpuBurner, burner_bundle, drive_burner
from repro.workloads.kvstore import KV_SERVICE_CLASS, KeyValueStore, kvstore_bundle
from repro.workloads.webservice import (
    EchoWebService,
    HTTP_SERVICE_CLASS,
    webservice_bundle,
)

__all__ = [
    "CpuBurner",
    "DiurnalProfile",
    "OpenLoopArrivals",
    "EchoWebService",
    "HTTP_SERVICE_CLASS",
    "KV_SERVICE_CLASS",
    "KeyValueStore",
    "burner_bundle",
    "drive_burner",
    "kvstore_bundle",
    "webservice_bundle",
]
