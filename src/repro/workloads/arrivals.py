"""Deterministic open-loop arrival generation with diurnal rate curves.

The macro benchmark drives traffic the way a real service sees it: an
*open-loop* arrival process whose rate follows a compressed "day" —
quiet overnight trough, ramp through the morning, midday peak, evening
tail. Arrivals do not wait for responses (open loop), so saturation
shows up as queueing and drops rather than as a silently slowed driver.

Arrivals are a non-homogeneous Poisson process sampled by *thinning*:
candidate arrivals are drawn from a homogeneous process at the peak
rate, and each candidate is accepted with probability ``rate(t)/peak``.
All randomness comes from an injected :mod:`repro.sim.rng` stream, so
two same-seed runs produce byte-identical arrival timelines.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.sim.eventloop import EventLoop


class DiurnalProfile:
    """Rate curve ``rate(t)``: a raised-cosine day shape in requests/s.

    ``t = 0`` is midnight (the trough at ``base_rps``); the peak of
    ``peak_rps`` lands mid-"day". ``day_seconds`` compresses the 24h
    cycle into simulated time; the curve repeats for multi-day runs.
    The time-average rate is ``(base_rps + peak_rps) / 2``.
    """

    __slots__ = ("base_rps", "peak_rps", "day_seconds")

    def __init__(
        self, base_rps: float, peak_rps: float, day_seconds: float
    ) -> None:
        if base_rps < 0 or peak_rps < base_rps:
            raise ValueError(
                "need 0 <= base_rps <= peak_rps: %r, %r" % (base_rps, peak_rps)
            )
        if day_seconds <= 0:
            raise ValueError("day_seconds must be > 0: %r" % day_seconds)
        self.base_rps = float(base_rps)
        self.peak_rps = float(peak_rps)
        self.day_seconds = float(day_seconds)

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at scenario time ``t`` (seconds)."""
        x = (t / self.day_seconds) % 1.0
        shape = 0.5 - 0.5 * math.cos(2.0 * math.pi * x)
        return self.base_rps + (self.peak_rps - self.base_rps) * shape

    def mean_rate(self) -> float:
        return (self.base_rps + self.peak_rps) / 2.0

    def __repr__(self) -> str:
        return "DiurnalProfile(base=%.1f, peak=%.1f, day=%.1fs)" % (
            self.base_rps,
            self.peak_rps,
            self.day_seconds,
        )


class OpenLoopArrivals:
    """Schedules ``on_arrival(index)`` calls on the event loop by thinning.

    Parameters
    ----------
    loop:
        The simulation event loop.
    rng:
        A seeded ``random.Random`` stream (e.g.
        ``RngStreams(seed).stream("arrivals")``).
    profile:
        The :class:`DiurnalProfile` rate curve.
    on_arrival:
        Called with the 1-based arrival index at each accepted arrival;
        the current virtual time is ``loop.clock.now``.
    duration:
        Scenario length in simulated seconds; no arrivals occur after
        ``start_time + duration``.
    """

    def __init__(
        self,
        loop: EventLoop,
        rng,
        profile: DiurnalProfile,
        on_arrival: Callable[[int], None],
        duration: float,
    ) -> None:
        if duration <= 0:
            raise ValueError("duration must be > 0: %r" % duration)
        self._loop = loop
        self._rng = rng
        self._profile = profile
        self._on_arrival = on_arrival
        self.duration = float(duration)
        self.arrivals = 0
        self.candidates = 0
        self.finished = False
        self._started_at: Optional[float] = None
        self._deadline = 0.0

    def start(self) -> None:
        """Begin generating; idempotent-guarded against double starts."""
        if self._started_at is not None:
            raise RuntimeError("arrival process already started")
        self._started_at = self._loop.clock.now
        self._deadline = self._started_at + self.duration
        self._schedule_next(self._loop.clock.now)

    def _schedule_next(self, from_when: float) -> None:
        gap = self._rng.expovariate(self._profile.peak_rps)
        next_at = from_when + gap
        if next_at > self._deadline:
            self.finished = True
            return
        self._loop.call_transient_at(next_at, self._candidate)

    def _candidate(self) -> None:
        now = self._loop.clock.now
        self.candidates += 1
        rate = self._profile.rate(now - self._started_at)
        if self._rng.random() * self._profile.peak_rps < rate:
            self.arrivals += 1
            self._on_arrival(self.arrivals)
        self._schedule_next(now)

    def __repr__(self) -> str:
        return "OpenLoopArrivals(%d arrivals / %d candidates, %s)" % (
            self.arrivals,
            self.candidates,
            "finished" if self.finished else "running",
        )
