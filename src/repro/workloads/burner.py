"""A controllable CPU burner bundle."""

from __future__ import annotations

from typing import Optional

from repro.osgi.bundle import BundleContext
from repro.osgi.definition import BundleActivator, BundleDefinition, simple_bundle
from repro.sim.eventloop import EventLoop


class CpuBurner(BundleActivator):
    """Burns ``cpu_per_second`` of CPU every virtual second while driven.

    The burner is passive: something must call :meth:`tick` (directly or
    via :func:`drive_burner`) so that experiments control exactly when the
    load exists.
    """

    def __init__(self, cpu_per_second: float = 0.5, memory_bytes: int = 0) -> None:
        self.cpu_per_second = cpu_per_second
        self.memory_bytes = memory_bytes
        self.context: Optional[BundleContext] = None
        self.ticks = 0

    def start(self, context: BundleContext) -> None:
        self.context = context
        if self.memory_bytes:
            context.account(memory_delta=self.memory_bytes)

    def stop(self, context: BundleContext) -> None:
        self.context = None

    @property
    def running(self) -> bool:
        return self.context is not None

    def tick(self) -> bool:
        """Burn one second's worth of CPU; False when no longer running."""
        if self.context is None:
            return False
        try:
            self.context.account(cpu=self.cpu_per_second)
        except Exception:
            return False
        self.ticks += 1
        return True


def burner_bundle(
    burner: Optional[CpuBurner] = None,
    cpu_per_second: float = 0.5,
    memory_bytes: int = 0,
    name: str = "workload.burner",
) -> BundleDefinition:
    """Bundle definition wrapping a (given or fresh) burner."""
    if burner is not None:
        factory = lambda: burner  # noqa: E731 - deliberate shared instance
    else:
        factory = lambda: CpuBurner(cpu_per_second, memory_bytes)  # noqa: E731
    return simple_bundle(name, activator_factory=factory)


def drive_burner(loop: EventLoop, burner: CpuBurner, interval: float = 1.0) -> None:
    """Tick the burner every ``interval``, forever.

    While the burner's bundle is stopped (mid-migration, SLA-parked) the
    ticks are no-ops; when the bundle starts again — possibly on another
    node, through the shared activator instance — the load resumes. This
    mirrors a real customer workload, which does not vanish because its
    environment moved.
    """

    def tick() -> None:
        burner.tick()
        loop.call_after(interval, tick, label="burner")

    loop.call_after(interval, tick, label="burner")
