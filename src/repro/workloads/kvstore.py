"""A transactional key-value service — the migratable-state archetype.

§3.2 reduces the stateful case to the stateless one when "the application
provides transactional mechanisms": a failed request leaves no partial
state, so the client can safely resend. :class:`KeyValueStore` embodies
that: writes stage in memory and reach the SAN-backed data area only on
commit; reads see committed state. Migrate or crash the hosting node and
the committed map is exactly what the redeployed service serves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.migration.statefulness import TransactionalStore
from repro.osgi.bundle import BundleContext
from repro.osgi.definition import BundleActivator, BundleDefinition, simple_bundle

#: Object class the store registers under, inside its virtual instance.
KV_SERVICE_CLASS = "kv.KeyValueStore"

#: CPU seconds charged per operation (drives the monitoring pipeline).
_OP_CPU = 0.0005
#: Memory bytes charged per staged entry.
_ENTRY_BYTES = 128


class KeyValueStore(BundleActivator):
    """Transactional KV service registered in the instance's registry."""

    def __init__(self) -> None:
        self.context: Optional[BundleContext] = None
        self._store: Optional[TransactionalStore] = None
        self.operations = 0

    # -- lifecycle -------------------------------------------------------
    def start(self, context: BundleContext) -> None:
        self.context = context
        self._store = TransactionalStore(context.get_data_store())
        context.register_service(KV_SERVICE_CLASS, self)

    def stop(self, context: BundleContext) -> None:
        if self._store is not None and self._store.in_flight:
            self._store.abort()  # never persist half a transaction
        self.context = None
        self._store = None

    # -- transactional API -------------------------------------------------
    def begin(self) -> "Transaction":
        self._ensure_running()
        return Transaction(self)

    def get(self, key: str, default: Any = None) -> Any:
        self._ensure_running()
        self._account()
        return self._store.get(key, default)

    def keys(self) -> List[str]:
        self._ensure_running()
        self._account()
        return sorted(self._store._area)

    # -- plumbing -----------------------------------------------------------
    def _ensure_running(self) -> None:
        if self.context is None or self._store is None:
            raise RuntimeError("KeyValueStore is not active (mid-migration?)")

    def _account(self) -> None:
        self.operations += 1
        try:
            self.context.account(cpu=_OP_CPU)
        except Exception:
            pass

    @property
    def commits(self) -> int:
        self._ensure_running()
        return self._store.commits


class Transaction:
    """Stage writes; all-or-nothing on commit."""

    def __init__(self, service: KeyValueStore) -> None:
        self._service = service
        self._open = True

    def put(self, key: str, value: Any) -> "Transaction":
        self._check()
        self._service._store.stage(key, value)
        self._service._account()
        try:
            self._service.context.account(memory_delta=_ENTRY_BYTES)
        except Exception:
            pass
        return self

    def commit(self) -> None:
        self._check()
        staged = self._service._store.in_flight
        self._service._store.commit()
        self._service._account()
        try:
            self._service.context.account(memory_delta=-_ENTRY_BYTES * staged)
        except Exception:
            pass
        self._open = False

    def abort(self) -> None:
        self._check()
        staged = self._service._store.in_flight
        self._service._store.abort()
        try:
            self._service.context.account(memory_delta=-_ENTRY_BYTES * staged)
        except Exception:
            pass
        self._open = False

    def _check(self) -> None:
        if not self._open:
            raise RuntimeError("transaction already finished")
        self._service._ensure_running()


def kvstore_bundle(name: str = "workload.kvstore") -> BundleDefinition:
    return simple_bundle(name, activator_factory=KeyValueStore)
