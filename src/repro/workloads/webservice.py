"""An HTTP-style service composed with the host's HttpService.

The paper's prototype exported "the log service, the HTTP service and the
JMX server service" from the host to its virtual instances.
:class:`EchoWebService` is the customer side of that composition: it looks
up the (host-mirrored) ``http.HttpService``, registers a servlet under the
customer's path prefix, and accounts the CPU of every request it serves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.osgi.bundle import BundleContext
from repro.osgi.definition import BundleActivator, BundleDefinition, simple_bundle
from repro.telemetry.runtime import maybe_span

#: Object class of the host-provided HTTP service.
HTTP_SERVICE_CLASS = "http.HttpService"

_REQUEST_CPU = 0.001


class HostHttpService:
    """A minimal host-side HttpService: path -> handler dispatch.

    Installed once on the host framework and exported to instances —
    exactly the "Bundle II pulled down" of Figure 4.
    """

    def __init__(self) -> None:
        self._routes: Dict[str, Any] = {}
        self.dispatched = 0

    def register_servlet(self, path: str, handler) -> None:
        if path in self._routes:
            raise ValueError("path %r already registered" % path)
        self._routes[path] = handler

    def unregister_servlet(self, path: str) -> None:
        self._routes.pop(path, None)

    def dispatch(self, path: str, request: Any) -> Tuple[int, Any]:
        self.dispatched += 1
        with maybe_span("http.dispatch", attributes={"path": path}) as span:
            handler = self._routes.get(path)
            if handler is None:
                status: Tuple[int, Any] = 404, "no servlet at %r" % path
            else:
                try:
                    status = 200, handler(request)
                except Exception as exc:
                    status = 500, str(exc)
            if span is not None:
                span.attributes["status"] = status[0]
            return status

    def paths(self) -> List[str]:
        return sorted(self._routes)


class HostHttpActivator(BundleActivator):
    """Bundle hosting the shared :class:`HostHttpService`."""

    def start(self, context: BundleContext) -> None:
        self.service = HostHttpService()
        context.register_service(HTTP_SERVICE_CLASS, self.service)

    def stop(self, context: BundleContext) -> None:
        self.service = None


def host_http_bundle(name: str = "host.http") -> BundleDefinition:
    return simple_bundle(name, activator_factory=HostHttpActivator)


class EchoWebService(BundleActivator):
    """Customer servlet: echoes requests under ``/<prefix>/echo``."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.context: Optional[BundleContext] = None
        self.served = 0
        self._http: Optional[HostHttpService] = None

    @property
    def path(self) -> str:
        return "/%s/echo" % self.prefix

    def start(self, context: BundleContext) -> None:
        self.context = context
        reference = context.get_service_reference(HTTP_SERVICE_CLASS)
        if reference is None:
            raise RuntimeError(
                "no %s visible — did the administrator export it?"
                % HTTP_SERVICE_CLASS
            )
        self._http = context.get_service(reference)
        self._http.register_servlet(self.path, self._handle)

    def stop(self, context: BundleContext) -> None:
        if self._http is not None:
            self._http.unregister_servlet(self.path)
        self._http = None
        self.context = None

    def _handle(self, request: Any) -> Any:
        self.served += 1
        if self.context is not None:
            try:
                self.context.account(cpu=_REQUEST_CPU)
            except Exception:
                pass
        return {"echo": request, "by": self.prefix}


def webservice_bundle(
    prefix: str, name: Optional[str] = None
) -> BundleDefinition:
    return simple_bundle(
        name or "workload.web.%s" % prefix,
        activator_factory=lambda: EchoWebService(prefix),
    )
