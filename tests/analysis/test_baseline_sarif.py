"""Ratchet baseline (fingerprints, --update-baseline, new-vs-known split),
SARIF export, and the content-hash AST cache."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.analysis import (
    AstCache,
    Diagnostic,
    Severity,
    fingerprint_diagnostics,
    load_baseline,
    sarif_report,
    split_by_baseline,
    write_baseline,
)

DIRTY = "import time\n\n\ndef now():\n    return time.time()\n"


def _diag(code="DET001", source="a.py", line=5, message="wall clock", hint=""):
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        source=source,
        line=line,
        message=message,
        hint=hint,
    )


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_survives_line_shift():
    before = fingerprint_diagnostics([_diag(line=5)])[0][1]
    after = fingerprint_diagnostics([_diag(line=50)])[0][1]
    assert before == after


def test_fingerprint_distinguishes_code_source_message():
    base = fingerprint_diagnostics([_diag()])[0][1]
    assert fingerprint_diagnostics([_diag(code="DET002")])[0][1] != base
    assert fingerprint_diagnostics([_diag(source="b.py")])[0][1] != base
    assert fingerprint_diagnostics([_diag(message="other")])[0][1] != base


def test_identical_findings_get_distinct_ordinal_fingerprints():
    pair = [_diag(line=5), _diag(line=9)]
    fps = [fp for _, fp in fingerprint_diagnostics(pair)]
    assert len(set(fps)) == 2
    # Ordinals are assigned by line order, so swapping list order is
    # irrelevant but shifting both lines equally keeps both fingerprints.
    shifted = [_diag(line=105), _diag(line=109)]
    assert [fp for _, fp in fingerprint_diagnostics(shifted)] == fps


# ----------------------------------------------------------------------
# Baseline document + split
# ----------------------------------------------------------------------
def test_write_load_split_roundtrip(tmp_path):
    known = _diag()
    fresh = _diag(code="DET002", message="global rng")
    path = tmp_path / "BASELINE_lint.json"
    document = write_baseline(str(path), [known])
    assert document["count"] == 1
    fingerprints = load_baseline(str(path))
    new, baselined = split_by_baseline([known, fresh], fingerprints)
    assert [d.code for d in baselined] == ["DET001"]
    assert [d.code for d in new] == ["DET002"]


def test_load_baseline_rejects_non_baseline_json(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"hello": 1}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(str(path))


# ----------------------------------------------------------------------
# CLI ratchet workflow
# ----------------------------------------------------------------------
def test_update_baseline_then_rerun_is_green(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY, encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    # Without a baseline the error fails the run.
    assert repro_main(["lint", "--no-baseline", str(dirty)]) == 1
    capsys.readouterr()
    # Record, then the same finding no longer fails.
    assert (
        repro_main(["lint", "--update-baseline", "--baseline", str(baseline), str(dirty)])
        == 0
    )
    capsys.readouterr()
    assert repro_main(["lint", "--baseline", str(baseline), str(dirty)]) == 0
    assert "baselined finding(s) not counted" in capsys.readouterr().err


def test_only_new_findings_fail_after_baseline(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY, encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    repro_main(["lint", "--update-baseline", "--baseline", str(baseline), str(dirty)])
    capsys.readouterr()
    # A second nondeterminism appears: only it should fail the run.
    dirty.write_text(DIRTY + "\n\nstamp = time.monotonic()\n", encoding="utf-8")
    exit_code = repro_main(
        ["lint", "--format", "json", "--baseline", str(baseline), str(dirty)]
    )
    assert exit_code == 1
    report = json.loads(capsys.readouterr().out)
    split = {d["line"]: d["baselined"] for d in report["diagnostics"]}
    assert split[5] is True  # the recorded finding
    assert split[8] is False  # the new one
    assert report["counts"]["error"] == 1  # counts cover new findings only


def test_baselined_json_diagnostics_keep_full_details(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY, encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    repro_main(["lint", "--update-baseline", "--baseline", str(baseline), str(dirty)])
    capsys.readouterr()
    repro_main(["lint", "--format", "json", "--baseline", str(baseline), str(dirty)])
    report = json.loads(capsys.readouterr().out)
    assert report["baseline"] == str(baseline)
    assert report["baselined"] == 1
    (diagnostic,) = report["diagnostics"]
    assert diagnostic["code"] == "DET001"
    assert diagnostic["fingerprint"]


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_shape_and_baseline_state():
    known = _diag()
    fresh = _diag(
        code="DET101",
        source="b.py",
        message="wall-clock reaches sink",
        hint="inject the clock",
    )
    fresh = Diagnostic(
        code=fresh.code,
        severity=fresh.severity,
        source=fresh.source,
        line=fresh.line,
        message=fresh.message,
        hint=fresh.hint,
        trace=("a.py:3: wall-clock read", "b.py:5: reaches sink send()"),
    )
    known_fp = fingerprint_diagnostics([known])[0][1]
    document = sarif_report([known, fresh], {known_fp})
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "DET001" in rule_ids and "DET101" in rule_ids and "LANE001" in rule_ids
    first, second = run["results"]
    assert first["baselineState"] == "unchanged"
    assert second["baselineState"] == "new"
    assert first["partialFingerprints"]["reproAnalysis/v1"] == known_fp
    # The trace became a codeFlow with real per-step locations.
    locations = second["codeFlows"][0]["threadFlows"][0]["locations"]
    uris = [
        l["location"]["physicalLocation"]["artifactLocation"]["uri"]
        for l in locations
    ]
    assert uris == ["a.py", "b.py"]
    # Valid JSON end to end.
    json.dumps(document)


def test_cli_sarif_output_parses(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY, encoding="utf-8")
    repro_main(["lint", "--no-baseline", "--format", "sarif", str(dirty)])
    document = json.loads(capsys.readouterr().out)
    results = document["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["DET001"]
    assert results[0]["level"] == "error"


# ----------------------------------------------------------------------
# AST cache
# ----------------------------------------------------------------------
def test_astcache_memory_hits():
    cache = AstCache()
    tree1 = cache.parse("x = 1\n", "a.py")
    tree2 = cache.parse("x = 1\n", "b.py")  # same content, other file
    assert tree1 is tree2
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1


def test_astcache_disk_roundtrip(tmp_path):
    cache_dir = str(tmp_path / "astcache")
    first = AstCache(cache_dir)
    first.parse("value = 40 + 2\n", "mod.py")
    assert first.stats()["misses"] == 1
    second = AstCache(cache_dir)  # new process, same directory
    tree = second.parse("value = 40 + 2\n", "mod.py")
    assert second.stats()["hits"] == 1
    compiled = compile(tree, "mod.py", "exec")
    namespace = {}
    exec(compiled, namespace)
    assert namespace["value"] == 42


def test_astcache_corrupt_disk_entry_is_a_miss(tmp_path):
    cache_dir = tmp_path / "astcache"
    first = AstCache(str(cache_dir))
    first.parse("x = 1\n", "a.py")
    for entry in cache_dir.iterdir():
        entry.write_bytes(b"not a pickle")
    second = AstCache(str(cache_dir))
    tree = second.parse("x = 1\n", "a.py")
    assert second.stats()["hits"] == 0
    assert tree is not None


def test_astcache_syntax_errors_are_not_cached():
    cache = AstCache()
    with pytest.raises(SyntaxError):
        cache.parse("def broken(:\n", "bad.py")
    with pytest.raises(SyntaxError):
        cache.parse("def broken(:\n", "bad.py")
    assert cache.stats()["hits"] == 0
