"""Static bundle verifier: each VER rule on hand-built manifests,
including the adversarial sets named in the issue (cyclic imports,
self-import of an exported package, empty version ranges)."""

import functools

from repro.analysis import VER_RULES, Severity, verify_bundles
from repro.osgi.definition import BundleActivator, BundleDefinition, simple_bundle
from repro.osgi.manifest import Manifest


def codes(diags):
    return [d.code for d in diags]


def exporter(name="exp", package="pkg.api", version="1.0.0", attrs=""):
    clause = '%s;version="%s"%s' % (package, version, attrs)
    return simple_bundle(name, exports=(clause,), packages={package: {}})


# ----------------------------------------------------------------------
# VER001 — unresolvable Import-Package
# ----------------------------------------------------------------------
def test_ver001_missing_exporter():
    importer = simple_bundle("imp", imports=("missing.pkg",))
    diags = verify_bundles([importer])
    assert codes(diags) == ["VER001"]
    assert diags[0].severity is Severity.ERROR
    assert "no exporter" in diags[0].message


def test_ver001_version_mismatch_names_offered_versions():
    importer = simple_bundle("imp", imports=('pkg.api;version="[2.0,3.0)"',))
    diags = verify_bundles([importer, exporter(version="1.0.0")])
    assert codes(diags) == ["VER001"]
    assert "offered: exp@1.0.0" in diags[0].message


def test_ver001_self_import_of_exported_package():
    # The resolver never wires a bundle to its own export; the verifier
    # must agree instead of treating the self-export as a candidate.
    selfish = simple_bundle(
        "selfish",
        imports=("pkg.api",),
        exports=('pkg.api;version="1.0.0"',),
        packages={"pkg.api": {}},
    )
    diags = verify_bundles([selfish])
    assert codes(diags) == ["VER001"]
    assert "cannot wire its own export" in diags[0].hint

    # A second exporter resolves the import (distinct version keeps the
    # pair clear of the VER003 duplicate-export warning too).
    assert verify_bundles([selfish, exporter(version="1.1.0")]) == []


def test_ver001_optional_import_never_fires():
    importer = simple_bundle("imp", imports=("missing.pkg;resolution:=optional",))
    assert verify_bundles([importer]) == []


def test_cyclic_imports_are_clean():
    # a <-> b mutual imports: the resolver tolerates cycles, so must we.
    a = simple_bundle(
        "a",
        imports=("pkg.b",),
        exports=('pkg.a;version="1.0.0"',),
        packages={"pkg.a": {}},
    )
    b = simple_bundle(
        "b",
        imports=("pkg.a",),
        exports=('pkg.b;version="1.0.0"',),
        packages={"pkg.b": {}},
    )
    assert verify_bundles([a, b]) == []


def test_context_satisfies_imports_but_is_not_verified():
    importer = simple_bundle("imp", imports=("pkg.api",))
    broken_context = simple_bundle(
        "ctx",
        imports=("nowhere.pkg",),
        exports=('pkg.api;version="1.0.0"',),
        packages={"pkg.api": {}},
    )
    # ctx satisfies the import; its own dangling import is not our problem.
    assert verify_bundles([importer], context=[broken_context]) == []


# ----------------------------------------------------------------------
# VER002 — impossible version range
# ----------------------------------------------------------------------
def test_ver002_empty_range():
    importer = simple_bundle("imp", imports=('pkg.api;version="[1.0,1.0)"',))
    diags = verify_bundles([importer, exporter()])
    assert codes(diags) == ["VER002"]
    assert "[1.0" in diags[0].message


# ----------------------------------------------------------------------
# VER003 — duplicate exports
# ----------------------------------------------------------------------
def test_ver003_duplicate_export_same_version_no_attributes():
    a = exporter("a")
    b = exporter("b")
    diags = verify_bundles([a, b])
    assert codes(diags) == ["VER003", "VER003"]
    assert all(d.severity is Severity.WARNING for d in diags)


def test_ver003_distinguishing_attribute_or_version_is_clean():
    assert verify_bundles([exporter("a"), exporter("b", version="2.0.0")]) == []
    assert (
        verify_bundles([exporter("a"), exporter("b", attrs=";provider=acme")]) == []
    )


# ----------------------------------------------------------------------
# VER004 — activator package outside the class space
# ----------------------------------------------------------------------
def _definition_with_activator(activator, imports=(), packages=None):
    manifest = Manifest.build(
        "act", version="1.0.0", imports=imports, activator=activator
    )
    return BundleDefinition(
        manifest, packages=packages, activator_factory=BundleActivator
    )


def test_ver004_unreachable_activator_package():
    definition = _definition_with_activator("ghost.pkg.Activator")
    diags = verify_bundles([definition])
    assert codes(diags) == ["VER004"]
    assert diags[0].severity is Severity.ERROR


def test_ver004_clean_when_contained_or_imported():
    contained = _definition_with_activator(
        "my.pkg.Activator", packages={"my.pkg": {}}
    )
    assert verify_bundles([contained]) == []
    imported = _definition_with_activator(
        "pkg.api.Activator", imports=("pkg.api",)
    )
    assert verify_bundles([imported, exporter()]) == []


def test_ver004_undotted_activator_is_exempt():
    # simple_bundle() names its activator just "activator" — no package claim.
    definition = simple_bundle("act", activator_factory=BundleActivator)
    assert verify_bundles([definition]) == []


# ----------------------------------------------------------------------
# VER005 — service registered under a foreign interface package
# ----------------------------------------------------------------------
class _ForeignRegistrar(BundleActivator):
    def start(self, context):
        self.reg = context.register_service("foreign.pkg.Api", object())

    def stop(self, context):
        self.reg.unregister()


class _LocalRegistrar(BundleActivator):
    def start(self, context):
        self.reg = context.register_service("pkg.api.Api", object())

    def stop(self, context):
        self.reg.unregister()


def test_ver005_foreign_interface_package():
    definition = simple_bundle("svc", activator_factory=_ForeignRegistrar)
    diags = verify_bundles([definition])
    assert codes(diags) == ["VER005"]
    assert diags[0].severity is Severity.WARNING
    assert diags[0].line > 0


def test_ver005_clean_when_interface_package_imported():
    definition = simple_bundle(
        "svc", imports=("pkg.api",), activator_factory=_LocalRegistrar
    )
    assert verify_bundles([definition, exporter()]) == []


def test_check_activators_false_skips_ast_rules():
    definition = simple_bundle("svc", activator_factory=_ForeignRegistrar)
    assert verify_bundles([definition], check_activators=False) == []


# ----------------------------------------------------------------------
# VER006 — lifecycle leaks
# ----------------------------------------------------------------------
class _Leaky(BundleActivator):
    def start(self, context):
        ref = context.get_service_reference("pkg.api.Api")
        self.svc = context.get_service(ref)
        context.add_service_listener(self._on_event)

    def _on_event(self, event):
        pass


class _Balanced(BundleActivator):
    def start(self, context):
        self.ref = context.get_service_reference("pkg.api.Api")
        self.svc = context.get_service(self.ref)
        context.add_service_listener(self._on_event)

    def stop(self, context):
        context.unget_service(self.ref)
        context.remove_service_listener(self._on_event)

    def _on_event(self, event):
        pass


def test_ver006_get_without_unget_and_add_without_remove():
    definition = simple_bundle("leaky", activator_factory=_Leaky)
    diags = verify_bundles([definition])
    assert codes(diags) == ["VER006", "VER006"]
    messages = " / ".join(d.message for d in diags)
    assert "unget_service" in messages
    assert "remove_service_listener" in messages


def test_ver006_balanced_activator_is_clean():
    definition = simple_bundle("tidy", activator_factory=_Balanced)
    assert verify_bundles([definition]) == []


def test_partial_activator_factory_is_analyzed():
    factory = functools.partial(_Leaky)
    definition = simple_bundle("leaky", activator_factory=factory)
    assert "VER006" in codes(verify_bundles([definition]))


def test_lambda_activator_factory_is_skipped():
    # No source-resolvable class: the analyzer declines rather than guesses.
    definition = simple_bundle("opaque", activator_factory=lambda: _Leaky())
    assert verify_bundles([definition]) == []


# ----------------------------------------------------------------------
# VER007 — unresolvable Require-Bundle
# ----------------------------------------------------------------------
def _requirer(clause):
    manifest = Manifest.build("req", version="1.0.0", requires=(clause,))
    return BundleDefinition(manifest)


def test_ver007_missing_required_bundle():
    diags = verify_bundles([_requirer("no.such.bundle")])
    assert codes(diags) == ["VER007"]
    assert diags[0].severity is Severity.ERROR


def test_ver007_version_mismatch_and_clean_case():
    dep = simple_bundle("dep", version="1.0.0")
    mismatched = _requirer('dep;bundle-version="[2.0,3.0)"')
    assert codes(verify_bundles([mismatched, dep])) == ["VER007"]
    matching = _requirer('dep;bundle-version="[1.0,2.0)"')
    assert verify_bundles([matching, dep]) == []


def test_ver002_on_require_bundle_range():
    diags = verify_bundles([_requirer('dep;bundle-version="[1.0,1.0)"')])
    assert codes(diags) == ["VER002"]


# ----------------------------------------------------------------------
# Catalogue + ordering
# ----------------------------------------------------------------------
def test_rule_catalogue_is_complete():
    assert set(VER_RULES) == {
        "VER001",
        "VER002",
        "VER003",
        "VER004",
        "VER005",
        "VER006",
        "VER007",
    }


def test_diagnostics_come_back_sorted():
    importer = simple_bundle("zz-imp", imports=("missing.pkg",))
    a = exporter("aa")
    b = exporter("bb")
    diags = verify_bundles([importer, a, b])
    assert [(d.source, d.code) for d in diags] == [
        ("aa", "VER003"),
        ("bb", "VER003"),
        ("zz-imp", "VER001"),
    ]
