"""Call/module graph construction: name resolution across imports,
method resolution on known classes, attribute typing."""

import ast

from repro.analysis.callgraph import (
    build_program,
    iter_functions,
    module_name_for,
)


def _program(files):
    entries = []
    for rel_path, source in sorted(files.items()):
        entries.append((rel_path, source, ast.parse(source)))
    return build_program(entries)


def test_module_name_for():
    assert module_name_for("repro/sim/eventloop.py") == "repro.sim.eventloop"
    assert module_name_for("pkg/__init__.py") == "pkg"
    assert module_name_for("single.py") == "single"


def test_functions_and_classes_are_registered():
    program = _program(
        {
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper(x):\n    return x\n",
            "pkg/b.py": (
                "class Widget:\n"
                "    def spin(self):\n"
                "        return 1\n"
            ),
        }
    )
    assert "pkg.a.helper" in program.functions
    assert "pkg.b.Widget" in program.classes
    assert "pkg.b.Widget.spin" in program.functions
    names = [f.qualname for f in iter_functions(program)]
    assert names == sorted(names, key=lambda q: q) or len(names) == 2


def test_from_import_resolves_to_defining_module():
    program = _program(
        {
            "pkg/__init__.py": "",
            "pkg/util.py": "def make():\n    return 1\n",
            "pkg/user.py": (
                "from pkg.util import make\n"
                "def run():\n"
                "    return make()\n"
            ),
        }
    )
    module = program.modules["pkg.user"]
    func = program.functions["pkg.user.run"]
    call = ast.walk(func.node)
    call = [n for n in ast.walk(func.node) if isinstance(n, ast.Call)][0]
    resolution = program.resolve_call(module, call.func, None, {})
    assert resolution is not None
    assert [t.qualname for t in resolution.targets] == ["pkg.util.make"]


def test_import_alias_resolves():
    program = _program(
        {
            "pkg/__init__.py": "",
            "pkg/util.py": "def make():\n    return 1\n",
            "pkg/user.py": (
                "import pkg.util as u\n"
                "def run():\n"
                "    return u.make()\n"
            ),
        }
    )
    module = program.modules["pkg.user"]
    func = program.functions["pkg.user.run"]
    call = [n for n in ast.walk(func.node) if isinstance(n, ast.Call)][0]
    resolution = program.resolve_call(module, call.func, None, {})
    assert resolution is not None
    assert [t.qualname for t in resolution.targets] == ["pkg.util.make"]


def test_method_resolution_walks_base_classes():
    program = _program(
        {
            "pkg/__init__.py": "",
            "pkg/base.py": (
                "class Base:\n"
                "    def ping(self):\n"
                "        return 0\n"
            ),
            "pkg/sub.py": (
                "from pkg.base import Base\n"
                "class Sub(Base):\n"
                "    def pong(self):\n"
                "        return self.ping()\n"
            ),
        }
    )
    method = program.method_on("pkg.sub.Sub", "ping")
    assert method is not None
    assert method.qualname == "pkg.base.Base.ping"


def test_self_attribute_typing_resolves_attr_method_calls():
    program = _program(
        {
            "pkg/__init__.py": "",
            "pkg/engine.py": (
                "class Engine:\n"
                "    def start(self):\n"
                "        return 'vroom'\n"
            ),
            "pkg/car.py": (
                "from pkg.engine import Engine\n"
                "class Car:\n"
                "    def __init__(self):\n"
                "        self.engine = Engine()\n"
                "    def drive(self):\n"
                "        return self.engine.start()\n"
            ),
        }
    )
    car = program.classes["pkg.car.Car"]
    assert car.attr_classes.get("engine") == "pkg.engine.Engine"
    module = program.modules["pkg.car"]
    drive = program.functions["pkg.car.Car.drive"]
    call = [n for n in ast.walk(drive.node) if isinstance(n, ast.Call)][0]
    resolution = program.resolve_call(module, call.func, "pkg.car.Car", {})
    assert resolution is not None
    assert [t.qualname for t in resolution.targets] == ["pkg.engine.Engine.start"]


def test_callable_attribute_tracking():
    program = _program(
        {
            "pkg/__init__.py": "",
            "pkg/cbs.py": "def on_tick():\n    return 1\n",
            "pkg/holder.py": (
                "from pkg.cbs import on_tick\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._cb = on_tick\n"
                "    def fire(self):\n"
                "        return self._cb()\n"
            ),
        }
    )
    holder = program.classes["pkg.holder.Holder"]
    assert holder.callable_attrs.get("_cb") == ("pkg.cbs.on_tick",)
    module = program.modules["pkg.holder"]
    fire = program.functions["pkg.holder.Holder.fire"]
    call = [n for n in ast.walk(fire.node) if isinstance(n, ast.Call)][0]
    resolution = program.resolve_call(module, call.func, "pkg.holder.Holder", {})
    assert resolution is not None
    assert [t.qualname for t in resolution.targets] == ["pkg.cbs.on_tick"]


def test_unique_method_name_fallback_is_capped():
    # One class defines `exotic_method`: an untyped receiver still
    # resolves to it by uniqueness of the name.
    program = _program(
        {
            "pkg/__init__.py": "",
            "pkg/impl.py": (
                "class Impl:\n"
                "    def exotic_method(self):\n"
                "        return 1\n"
            ),
            "pkg/user.py": (
                "def run(thing):\n"
                "    return thing.exotic_method()\n"
            ),
        }
    )
    module = program.modules["pkg.user"]
    run = program.functions["pkg.user.run"]
    call = [n for n in ast.walk(run.node) if isinstance(n, ast.Call)][0]
    resolution = program.resolve_call(module, call.func, None, {})
    assert resolution is not None
    assert [t.qualname for t in resolution.targets] == [
        "pkg.impl.Impl.exotic_method"
    ]
    assert resolution.by_name_only
