"""``python -m repro lint`` CLI: exit codes, text/JSON output, --strict,
--select, --list-rules, suppressions on real files."""

import json

import pytest

from repro.__main__ import main as repro_main

DIRTY = "import time\n\n\ndef now():\n    return time.time()\n"
CLEAN = "def now(clock):\n    return clock.now\n"
SUPPRESSED = (
    "# repro: allow-file[DET001] -- fixture measures wall time on purpose\n"
    "import time\n\nstamp = time.time()\n"
)


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY, encoding="utf-8")
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN, encoding="utf-8")
    return str(path)


def test_dirty_file_exits_nonzero_with_det001_in_json(dirty_file, capsys):
    exit_code = repro_main(["lint", "--format", "json", dirty_file])
    assert exit_code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 2
    assert report["tool"] == "repro.analysis"
    assert report["counts"]["error"] == 1
    codes = [d["code"] for d in report["diagnostics"]]
    assert codes == ["DET001"]
    diagnostic = report["diagnostics"][0]
    assert diagnostic["severity"] == "error"
    assert diagnostic["line"] == 5
    assert diagnostic["source"].endswith("dirty.py")


def test_clean_file_exits_zero(clean_file, capsys):
    assert repro_main(["lint", clean_file]) == 0
    captured = capsys.readouterr()
    assert "0 error(s)" in captured.err


def test_text_format_includes_code_and_line(dirty_file, capsys):
    exit_code = repro_main(["lint", dirty_file])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert ":5:" in out


def test_suppressed_file_is_clean(tmp_path, capsys):
    path = tmp_path / "suppressed.py"
    path.write_text(SUPPRESSED, encoding="utf-8")
    assert repro_main(["lint", str(path)]) == 0


def test_select_limits_rules(tmp_path, capsys):
    path = tmp_path / "both.py"
    path.write_text("import time\nimport random\n", encoding="utf-8")
    exit_code = repro_main(
        ["lint", "--select", "DET005", "--format", "json", str(path)]
    )
    assert exit_code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["diagnostics"] == []


def test_select_rejects_unknown_code(dirty_file, capsys):
    with pytest.raises(SystemExit):
        repro_main(["lint", "--select", "DET999", dirty_file])


def test_strict_turns_warnings_into_failure(tmp_path, capsys):
    # DET003 is warning severity: default run passes, --strict fails.
    path = tmp_path / "warn.py"
    path.write_text(
        "def flush(peers, data):\n"
        "    for peer in peers.values():\n"
        "        peer.send('addr', data)\n",
        encoding="utf-8",
    )
    assert repro_main(["lint", str(path)]) == 0
    assert repro_main(["lint", "--strict", str(path)]) == 1


def test_default_target_is_the_installed_package(capsys):
    """No positional paths: lint the repro package itself. This is the
    exact CI gate, so it must be clean in strict mode."""
    assert repro_main(["lint", "--strict"]) == 0
    assert "clean" in capsys.readouterr().err


def test_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("DET001", "DET002", "DET003", "DET004", "DET005"):
        assert code in out


def test_json_report_is_sorted_and_stable(tmp_path, capsys):
    path = tmp_path / "multi.py"
    path.write_text(
        "import time\nb = time.time()\na = time.monotonic()\n", encoding="utf-8"
    )
    repro_main(["lint", "--format", "json", str(path)])
    first = capsys.readouterr().out
    repro_main(["lint", "--format", "json", str(path)])
    second = capsys.readouterr().out
    assert first == second
    lines = [d["line"] for d in json.loads(first)["diagnostics"]]
    assert lines == sorted(lines)
