"""Determinism linter: one triggering and one clean case per DET rule,
suppression directives, rule selection, and the self-clean baseline."""

import os
import textwrap

from repro.analysis import DET_RULES, lint_paths, lint_source

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def lint(snippet, select=None):
    return lint_source(textwrap.dedent(snippet), "snippet.py", select=select)


def codes(snippet, select=None):
    return [d.code for d in lint(snippet, select=select)]


# ----------------------------------------------------------------------
# DET001 — wall clock
# ----------------------------------------------------------------------
def test_det001_flags_time_time_call():
    diags = lint(
        """
        import time

        def now():
            return time.time()
        """
    )
    assert [d.code for d in diags] == ["DET001"]
    assert diags[0].line == 5
    assert "time.time" in diags[0].message


def test_det001_flags_aliased_import_and_bare_reference():
    assert "DET001" in codes(
        """
        import time as t
        stamp = t.monotonic()
        """
    )
    # A bare reference (stashing the function) is as non-deterministic
    # as calling it — bench.py does exactly this.
    assert "DET001" in codes(
        """
        import time
        clock = time.perf_counter_ns
        """
    )


def test_det001_flags_datetime_now():
    assert "DET001" in codes(
        """
        from datetime import datetime
        when = datetime.now()
        """
    )


def test_det001_clean_on_injected_clock():
    assert codes(
        """
        def now(clock):
            return clock.now
        """
    ) == []


def test_det001_allowlisted_in_sim_clock():
    source = "import time\nvalue = time.monotonic()\n"
    assert [
        d.code for d in lint_source(source, "repro/sim/clock.py")
    ] == []
    assert [
        d.code for d in lint_source(source, "repro/other.py")
    ] == ["DET001"]


# ----------------------------------------------------------------------
# DET002 — global random
# ----------------------------------------------------------------------
def test_det002_flags_module_level_random():
    diags = lint(
        """
        import random

        def pick(items):
            return random.choice(items)
        """
    )
    assert [d.code for d in diags] == ["DET002"]


def test_det002_flags_from_import_and_construction():
    assert "DET002" in codes(
        """
        from random import randint
        roll = randint(1, 6)
        """
    )
    assert "DET002" in codes(
        """
        import random
        rng = random.Random(42)
        """
    )


def test_det002_clean_on_injected_stream():
    assert codes(
        """
        def pick(rng, items):
            return items[rng.randrange(len(items))]
        """
    ) == []


def test_det002_allowlisted_in_sim_rng():
    source = "import random\nrng = random.Random(0)\n"
    assert lint_source(source, "repro/sim/rng.py") == []
    assert [d.code for d in lint_source(source, "repro/x.py")] == ["DET002"]


# ----------------------------------------------------------------------
# DET003 — unordered iteration feeding scheduling/sends
# ----------------------------------------------------------------------
def test_det003_flags_dict_values_feeding_send():
    diags = lint(
        """
        def flush(peers, payload):
            for peer in peers.values():
                peer.send("addr", payload)
        """
    )
    assert [d.code for d in diags] == ["DET003"]


def test_det003_flags_set_literal_feeding_schedule():
    assert "DET003" in codes(
        """
        def arm(loop, items):
            for delay in {1.0, 2.0}:
                loop.call_after(delay, items.pop)
        """
    )


def test_det003_clean_when_sorted():
    assert codes(
        """
        def flush(peers, payload):
            for name in sorted(peers.values()):
                name.send("addr", payload)
        """
    ) == []


def test_det003_clean_without_scheduling_in_body():
    # Unordered iteration is fine when the body has no scheduling effect.
    assert codes(
        """
        def total(shares):
            acc = 0
            for value in shares.values():
                acc += value
            return acc
        """
    ) == []


# ----------------------------------------------------------------------
# DET004 — id() in ordering context
# ----------------------------------------------------------------------
def test_det004_flags_id_as_sort_key():
    diags = lint(
        """
        def order(refs):
            return sorted(refs, key=lambda r: id(r))
        """
    )
    assert [d.code for d in diags] == ["DET004"]


def test_det004_flags_id_comparison():
    assert "DET004" in codes(
        """
        def before(a, b):
            return id(a) < id(b)
        """
    )


def test_det004_clean_for_dedup_membership():
    # Identity-keyed *dedup* is deterministic; only ordering is not.
    assert codes(
        """
        def unique(refs):
            seen = set()
            out = []
            for ref in refs:
                if id(ref) not in seen:
                    seen.add(id(ref))
                    out.append(ref)
            return out
        """
    ) == []


# ----------------------------------------------------------------------
# DET005 — real concurrency primitives
# ----------------------------------------------------------------------
def test_det005_flags_threading_import():
    assert "DET005" in codes("import threading\n")
    assert "DET005" in codes("from threading import Lock\n")
    assert "DET005" in codes("import asyncio\n")


def test_det005_clean_on_sim_eventloop():
    assert codes(
        """
        from repro.sim.eventloop import EventLoop
        loop = EventLoop()
        """
    ) == []


# ----------------------------------------------------------------------
# DET000 — parse failure
# ----------------------------------------------------------------------
def test_det000_on_syntax_error():
    diags = lint("def broken(:\n")
    assert [d.code for d in diags] == ["DET000"]
    assert diags[0].severity.value == "error"


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_line_suppression_silences_one_line():
    diags = lint(
        """
        import time
        a = time.time()  # repro: allow[DET001] -- test fixture
        b = time.time()
        """
    )
    assert [(d.code, d.line) for d in diags] == [("DET001", 4)]


def test_file_suppression_silences_whole_file():
    assert lint(
        """
        # repro: allow-file[DET001] -- wall time on purpose
        import time
        a = time.time()
        b = time.time()
        """
    ) == []


def test_suppression_is_code_specific():
    diags = lint(
        """
        import time
        import random
        a = time.time()  # repro: allow[DET002] -- wrong code
        """
    )
    assert "DET001" in [d.code for d in diags]


def test_directive_inside_string_is_inert():
    diags = lint(
        """
        import time
        text = "# repro: allow-file[DET001]"
        a = time.time()
        """
    )
    assert [d.code for d in diags] == ["DET001"]


# ----------------------------------------------------------------------
# DET006 — suppression directive in a suppression-free zone
# ----------------------------------------------------------------------
def zone_lint(snippet, select=None):
    return lint_source(
        textwrap.dedent(snippet), "src/repro/telemetry/x.py", select=select
    )


def test_det006_reports_directive_and_voids_it():
    diags = zone_lint(
        """
        import time
        a = time.time()  # repro: allow[DET001] -- should not work here
        """
    )
    assert sorted(d.code for d in diags) == ["DET001", "DET006"]


def test_det006_voids_file_level_directive():
    diags = zone_lint(
        """
        # repro: allow-file[DET001] -- should not work here
        import time
        a = time.time()
        b = time.time()
        """
    )
    assert sorted(d.code for d in diags) == ["DET001", "DET001", "DET006"]


def test_det006_clean_zone_file_stays_clean():
    assert zone_lint("x = 1\n") == []


def test_det006_respects_rule_selection():
    snippet = """
    import time
    a = time.time()  # repro: allow[DET001]
    """
    assert zone_lint(snippet, select=["DET006"]) != []
    assert [d.code for d in zone_lint(snippet, select=["DET001"])] == ["DET001"]


def test_suppression_still_works_outside_the_zone():
    diags = lint_source(
        "import time\na = time.time()  # repro: allow[DET001] -- fine here\n",
        "src/repro/sim/x.py",
    )
    assert diags == []


def test_telemetry_package_has_no_suppression_directives():
    """The zone is honoured at the source: no opt-outs shipped in-tree."""
    package = os.path.join(SRC_ROOT, "repro", "telemetry")
    for name in sorted(os.listdir(package)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(package, name), encoding="utf-8") as handle:
            assert "repro: allow" not in handle.read(), name


# ----------------------------------------------------------------------
# Selection + whole-tree baseline
# ----------------------------------------------------------------------
def test_select_filters_rules():
    snippet = """
    import time
    import random
    a = time.time()
    b = random.random()
    """
    assert set(codes(snippet)) == {"DET001", "DET002"}
    assert codes(snippet, select=["DET002"]) == ["DET002"]


def test_rule_catalogue_is_complete():
    assert set(DET_RULES) == {
        "DET000",
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "DET005",
        "DET006",
        "DET007",
    }


def test_src_tree_is_lint_clean():
    """The CI baseline: the shipped tree has zero findings (suppressions
    in sim/clock.py, sim/rng.py and bench.py carry their justifications
    in-line)."""
    package = os.path.join(SRC_ROOT, "repro")
    result = lint_paths([package], root=SRC_ROOT)
    assert len(result.files) > 50
    assert result.diagnostics == []
    assert result.ok


def test_src_tree_deep_findings_are_covered_by_committed_baseline():
    """The whole-program tier's findings over the shipped tree must all be
    recorded in benchmarks/analysis/BASELINE_lint.json — the exact CI
    ratchet. A failure here means: run
    `python -m repro lint --update-baseline` and justify the new finding
    in the PR."""
    from repro.analysis import (
        analyze_paths,
        fingerprint_diagnostics,
        load_baseline,
        split_by_baseline,
    )

    repo_root = os.path.dirname(SRC_ROOT)
    baseline = os.path.join(
        repo_root, "benchmarks", "analysis", "BASELINE_lint.json"
    )
    package = os.path.join(SRC_ROOT, "repro")
    result = analyze_paths([package], root=SRC_ROOT)
    new, baselined = split_by_baseline(
        result.diagnostics, load_baseline(baseline)
    )
    assert new == [], "un-baselined findings:\n%s" % "\n".join(
        d.format() for d in new
    )
    # The deep tier genuinely fires on this tree (the inventory is real).
    assert any(d.code.startswith(("DET1", "LANE")) for d in baselined)
    # And fingerprinting stays collision-free over the full finding set.
    fps = [fp for _, fp in fingerprint_diagnostics(result.diagnostics)]
    assert len(set(fps)) == len(fps)
