"""Lane-safety escape analyzer LANE001-LANE003: shared mutable state that
would break ROADMAP item 5's parallel event lanes."""

from repro.analysis import analyze_paths


def _write_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for name, source in files.items():
        (pkg / name).write_text(source, encoding="utf-8")
    return tmp_path


def _lane_findings(tmp_path, files):
    root = _write_pkg(tmp_path, files)
    result = analyze_paths([str(root / "pkg")], root=str(root))
    return [d for d in result.diagnostics if d.code.startswith("LANE")]


def test_lane001_module_global_mutated_from_two_node_modules(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "state.py": "REGISTRY = {}\n",
            "node_a.py": (
                "from pkg.state import REGISTRY\n"
                "def admit(name, node):\n"
                "    REGISTRY[name] = node\n"
            ),
            "node_b.py": (
                "from pkg.state import REGISTRY\n"
                "def evict(name):\n"
                "    REGISTRY.pop(name, None)\n"
            ),
        },
    )
    lane001 = [d for d in findings if d.code == "LANE001"]
    assert len(lane001) == 1
    finding = lane001[0]
    assert finding.source == "pkg/state.py"
    assert finding.severity.value == "warning"
    assert "REGISTRY" in finding.message
    # Both mutating modules appear on the trace.
    joined = "\n".join(finding.trace)
    assert "pkg/node_a.py" in joined
    assert "pkg/node_b.py" in joined


def test_lane001_same_module_mutation_and_global_rebind(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "counter.py": (
                "SEEN = []\n"
                "def note(item):\n"
                "    SEEN.append(item)\n"
                "def reset():\n"
                "    global SEEN\n"
                "    SEEN = []\n"
            ),
        },
    )
    assert [d.code for d in findings] == ["LANE001"]


def test_lane001_silent_when_only_read(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "config.py": "DEFAULTS = {'retries': 3}\n",
            "reader.py": (
                "from pkg.config import DEFAULTS\n"
                "def retries():\n"
                "    return DEFAULTS['retries']\n"
            ),
        },
    )
    assert findings == []


def test_lane001_silent_when_local_shadows_global(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "shadow.py": (
                "CACHE = {}\n"
                "def local_work():\n"
                "    CACHE = {}\n"
                "    CACHE['x'] = 1\n"
                "    return CACHE\n"
            ),
        },
    )
    assert findings == []


def test_lane002_class_level_mutable_attribute(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "widget.py": (
                "class Widget:\n"
                "    cache = {}\n"
                "    def put(self, key, value):\n"
                "        self.cache[key] = value\n"
            ),
        },
    )
    lane002 = [d for d in findings if d.code == "LANE002"]
    assert len(lane002) == 1
    assert lane002[0].source == "pkg/widget.py"
    assert "cache" in lane002[0].message


def test_lane002_silent_when_rebound_per_instance(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "widget.py": (
                "class Widget:\n"
                "    cache = {}\n"
                "    def __init__(self):\n"
                "        self.cache = {}\n"
                "    def put(self, key, value):\n"
                "        self.cache[key] = value\n"
            ),
        },
    )
    assert [d.code for d in findings] == []


def test_lane003_object_shared_across_two_nodes(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "nodes.py": (
                "class Node:\n"
                "    def __init__(self, loop, store=None):\n"
                "        self.loop = loop\n"
                "        self.store = store\n"
            ),
            "build.py": (
                "from pkg.nodes import Node\n"
                "def build_pair(loop):\n"
                "    store = {}\n"
                "    a = Node(loop, store)\n"
                "    b = Node(loop, store)\n"
                "    return a, b\n"
            ),
        },
    )
    lane003 = [d for d in findings if d.code == "LANE003"]
    shared = sorted(d.message.split("'")[1] for d in lane003)
    assert "store" in shared
    assert "loop" in shared
    assert all(d.source == "pkg/build.py" for d in lane003)


def test_lane003_constructor_in_loop_closing_over_outer_object(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "nodes.py": (
                "class Node:\n"
                "    def __init__(self, loop):\n"
                "        self.loop = loop\n"
            ),
            "build.py": (
                "from pkg.nodes import Node\n"
                "def build_many(loop, count):\n"
                "    nodes = []\n"
                "    for _ in range(count):\n"
                "        nodes.append(Node(loop))\n"
                "    return nodes\n"
            ),
        },
    )
    lane003 = [d for d in findings if d.code == "LANE003"]
    assert len(lane003) == 1
    assert "'loop'" in lane003[0].message
    assert "loop" in lane003[0].message


def test_lane003_silent_for_per_node_objects(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "nodes.py": (
                "class Node:\n"
                "    def __init__(self, store):\n"
                "        self.store = store\n"
            ),
            "build.py": (
                "from pkg.nodes import Node\n"
                "def build_many(count):\n"
                "    nodes = []\n"
                "    for i in range(count):\n"
                "        store = {}\n"
                "        nodes.append(Node(store))\n"
                "    return nodes\n"
            ),
        },
    )
    assert [d.code for d in findings] == []


def test_lane003_ignores_unrelated_class_names(tmp_path):
    findings = _lane_findings(
        tmp_path,
        {
            "build.py": (
                "class Widget:\n"
                "    def __init__(self, loop):\n"
                "        self.loop = loop\n"
                "def build(loop):\n"
                "    return Widget(loop), Widget(loop)\n"
            ),
        },
    )
    assert [d.code for d in findings] == []
