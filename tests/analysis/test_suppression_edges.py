"""Suppression directive edge cases: continuation lines, multi-code
directives, unknown rule codes (DET007), and the suppression-free zone."""

from repro.analysis import lint_source, scan_suppressions


def codes(source, rel_path="pkg/mod.py", select=None):
    return [d.code for d in lint_source(source, rel_path, select=select)]


# ----------------------------------------------------------------------
# Continuation lines
# ----------------------------------------------------------------------
def test_directive_on_continuation_line_covers_the_expression_there():
    # Findings anchor to the line of the offending EXPRESSION (documented
    # in suppressions.py). In a multi-line statement that is the
    # continuation line carrying the call, so the directive belongs there.
    source = (
        "import time\n"
        "stamp = (\n"
        "    time.time()  # repro: allow[DET001] -- continuation line\n"
        ")\n"
    )
    suppressions = scan_suppressions(source)
    assert suppressions.line_codes.get(3) == {"DET001"}
    assert codes(source) == []


def test_directive_on_statement_first_line_misses_the_expression():
    source = (
        "import time\n"
        "stamp = (  # repro: allow[DET001] -- wrong line: anchor is below\n"
        "    time.time()\n"
        ")\n"
    )
    assert "DET001" in codes(source)


# ----------------------------------------------------------------------
# Multiple codes in one directive
# ----------------------------------------------------------------------
def test_multiple_codes_in_one_allow_bracket():
    source = (
        "import time\n"
        "import random\n"
        "def sample(flag):\n"
        "    return time.time() if flag else random.random()  "
        "# repro: allow[DET001,DET002] -- host-entropy fixture\n"
    )
    assert codes(source) == []


def test_multiple_codes_tolerate_spaces_and_case():
    source = (
        "import time\n"
        "import random\n"
        "def sample(flag):\n"
        "    return time.time() if flag else random.random()  "
        "# repro: allow[det001, DET002] -- spacing/case variants\n"
    )
    assert codes(source) == []


def test_multi_code_directive_suppresses_only_listed_codes():
    source = (
        "import time\n"
        "import random\n"
        "a = time.time()  # repro: allow[DET002] -- wrong code on purpose\n"
    )
    assert "DET001" in codes(source)


# ----------------------------------------------------------------------
# Unknown rule codes: DET007, never a crash
# ----------------------------------------------------------------------
def test_unknown_rule_code_yields_det007_not_a_crash():
    source = (
        "import time\n"
        "stamp = time.time()  # repro: allow[DET999] -- typo\n"
    )
    result = codes(source)
    assert "DET007" in result
    assert "DET001" in result  # the typo suppressed nothing


def test_det007_names_the_unknown_code():
    source = "x = 1  # repro: allow[DETX01,DET001] -- one real, one junk\n"
    diagnostics = lint_source(source, "pkg/mod.py")
    det007 = [d for d in diagnostics if d.code == "DET007"]
    assert len(det007) == 1
    assert "DETX01" in det007[0].message
    assert "DET001" not in det007[0].message
    assert det007[0].severity.value == "warning"


def test_det007_accepts_deep_rule_codes_as_known():
    # DET1xx and LANE codes are legitimate suppression targets.
    source = "x = send  # repro: allow[DET101,LANE001] -- deep-rule opt-out\n"
    assert codes(source) == []


def test_det007_respects_select():
    source = "x = 1  # repro: allow[DET999] -- junk\n"
    assert codes(source, select=["DET001"]) == []
    assert codes(source, select=["DET007"]) == ["DET007"]


# ----------------------------------------------------------------------
# Suppression-free zone interactions
# ----------------------------------------------------------------------
def test_file_level_directive_in_zone_is_void_and_reported():
    source = (
        "# repro: allow-file[DET001] -- nice try\n"
        "import time\n"
        "stamp = time.time()\n"
    )
    result = codes(source, rel_path="repro/telemetry/probe.py")
    assert "DET006" in result  # the directive itself is the offence
    assert "DET001" in result  # and it suppressed nothing


def test_unknown_code_in_zone_reports_both_det006_and_det007():
    source = "x = 1  # repro: allow[DET999] -- junk in the zone\n"
    result = codes(source, rel_path="repro/telemetry/probe.py")
    assert "DET006" in result
    assert "DET007" in result


def test_outside_zone_file_directive_suppresses():
    source = (
        "# repro: allow-file[DET001] -- fixture wall time\n"
        "import time\n"
        "stamp = time.time()\n"
    )
    assert codes(source, rel_path="pkg/mod.py") == []
