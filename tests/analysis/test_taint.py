"""Interprocedural taint rules DET101-DET105: seeded source-in-one-module,
sink-in-another leaks must be caught, with the full path on the trace."""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.analysis import analyze_paths


def _write_pkg(tmp_path, files):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for name, source in files.items():
        (pkg / name).write_text(source, encoding="utf-8")
    return tmp_path


def _deep_codes(tmp_path, files, select=None):
    root = _write_pkg(tmp_path, files)
    result = analyze_paths([str(root / "pkg")], root=str(root), select=select)
    return [d for d in result.diagnostics if d.code.startswith(("DET1", "LANE"))]


def test_det101_wall_clock_crosses_module_boundary(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "stamps.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  # repro: allow[DET001] -- seeded\n"
            ),
            "sched.py": (
                "from pkg.stamps import stamp\n"
                "def fire(loop, cb):\n"
                "    deadline = stamp()\n"
                "    loop.call_at(deadline, cb)\n"
            ),
        },
    )
    codes = [d.code for d in findings]
    assert "DET101" in codes
    finding = [d for d in findings if d.code == "DET101"][0]
    # Anchored at the sink, with the cross-module source on the trace.
    assert finding.source == "pkg/sched.py"
    assert finding.line == 4
    assert "pkg/stamps.py" in finding.message
    assert any("pkg/stamps.py:3" in step for step in finding.trace)
    assert any("call_at" in step for step in finding.trace)


def test_det102_global_rng_through_helper(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "jitter.py": (
                "import random\n"
                "def jitter():\n"
                "    return random.random()  # repro: allow[DET002] -- seeded\n"
            ),
            "net.py": (
                "from pkg.jitter import jitter\n"
                "def blast(endpoint, data):\n"
                "    delay = jitter()\n"
                "    endpoint.send('peer', payload=delay)\n"
            ),
        },
    )
    assert [d.code for d in findings] == ["DET102"]
    assert findings[0].source == "pkg/net.py"


def test_det103_dict_order_reaches_digest(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "inventory.py": (
                "def locate(table):\n"
                "    return [v for v in table.values()]\n"
            ),
            "digest.py": (
                "import hashlib\n"
                "from pkg.inventory import locate\n"
                "def checksum(table):\n"
                "    hosts = locate(table)\n"
                "    return hashlib.sha256(repr(hosts).encode()).hexdigest()\n"
            ),
        },
    )
    det103 = [d for d in findings if d.code == "DET103"]
    assert det103, [d.code for d in findings]
    assert det103[0].severity.value == "warning"
    assert any("pkg/inventory.py" in step for step in det103[0].trace)


def test_det104_id_value_reaches_send(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "tags.py": (
                "def tag(obj):\n"
                "    return id(obj)\n"
            ),
            "wire.py": (
                "from pkg.tags import tag\n"
                "def announce(endpoint, obj):\n"
                "    endpoint.send_to('hub', tag(obj))\n"
            ),
        },
    )
    assert "DET104" in [d.code for d in findings]


def test_det105_environ_reaches_schedule(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "conf.py": (
                "import os\n"
                "def region():\n"
                "    return os.environ['REGION']\n"
            ),
            "boot.py": (
                "from pkg.conf import region\n"
                "def start(queue):\n"
                "    queue.enqueue(region())\n"
            ),
        },
    )
    assert "DET105" in [d.code for d in findings]


def test_clean_sim_derived_values_stay_silent(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "clock.py": (
                "def deadline(clock, delay):\n"
                "    return clock.now + delay\n"
            ),
            "sched.py": (
                "from pkg.clock import deadline\n"
                "def fire(loop, clock, cb):\n"
                "    loop.call_at(deadline(clock, 1.0), cb)\n"
            ),
        },
    )
    assert findings == []


def test_tainted_value_without_sink_stays_silent(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "stamps.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  # repro: allow[DET001] -- log only\n"
            ),
            "logger.py": (
                "from pkg.stamps import stamp\n"
                "def note(log):\n"
                "    log.append(stamp())\n"
            ),
        },
    )
    assert [d.code for d in findings] == []


def test_sink_line_suppression_silences_deep_finding(tmp_path):
    findings = _deep_codes(
        tmp_path,
        {
            "stamps.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  # repro: allow[DET001] -- seeded\n"
            ),
            "sched.py": (
                "from pkg.stamps import stamp\n"
                "def fire(loop, cb):\n"
                "    loop.call_at(stamp(), cb)  # repro: allow[DET101] -- test rig\n"
            ),
        },
    )
    assert [d.code for d in findings] == []


def test_explain_prints_full_source_to_sink_path(tmp_path, capsys):
    root = _write_pkg(
        tmp_path,
        {
            "stamps.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  # repro: allow[DET001] -- seeded\n"
            ),
            "sched.py": (
                "from pkg.stamps import stamp\n"
                "def fire(loop, cb):\n"
                "    loop.call_at(stamp(), cb)\n"
            ),
        },
    )
    exit_code = repro_main(
        [
            "lint",
            "--no-baseline",
            "--explain",
            "DET101",
            str(root / "pkg"),
        ]
    )
    assert exit_code == 1  # DET101 is an error
    out = capsys.readouterr().out
    assert "[source]" in out
    assert "[sink]" in out
    assert "stamps.py" in out
    assert "sched.py" in out
    assert "call_at" in out


def test_json_report_carries_trace(tmp_path, capsys):
    root = _write_pkg(
        tmp_path,
        {
            "stamps.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()  # repro: allow[DET001] -- seeded\n"
            ),
            "sched.py": (
                "from pkg.stamps import stamp\n"
                "def fire(loop, cb):\n"
                "    loop.call_at(stamp(), cb)\n"
            ),
        },
    )
    repro_main(
        ["lint", "--no-baseline", "--format", "json", str(root / "pkg")]
    )
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 2
    det101 = [d for d in report["diagnostics"] if d["code"] == "DET101"]
    assert det101
    assert len(det101[0]["trace"]) >= 2
    assert det101[0]["fingerprint"]
    assert det101[0]["baselined"] is False
