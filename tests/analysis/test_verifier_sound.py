"""Soundness of the static verifier w.r.t. the real resolver.

Property: any bundle set the verifier accepts with **zero errors** also
resolves in :mod:`repro.osgi.wiring` — installing every bundle into a
fresh framework and resolving raises no :class:`ResolutionError`. The
verifier shares the resolver's candidate-matching helpers, so a
divergence here means one of the two drifted.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import Severity, verify_bundles
from repro.osgi.definition import simple_bundle
from repro.osgi.errors import BundleException
from repro.osgi.framework import Framework

PACKAGES = ["pkg.alpha", "pkg.beta", "pkg.gamma", "pkg.delta"]
VERSIONS = ["1.0.0", "2.0.0"]
# Ranges chosen to cover: match-all, exact-major windows, a window that
# excludes every offered version, and the impossible empty range.
RANGES = ["", "[1.0,2.0)", "[2.0,3.0)", "[1.0,3.0)", "[3.0,4.0)", "[1.0,1.0)"]


def import_clause(draw, package):
    rng = draw(st.sampled_from(RANGES))
    optional = draw(st.booleans())
    clause = package
    if rng:
        clause += ';version="%s"' % rng
    if optional:
        clause += ";resolution:=optional"
    return clause


@st.composite
def bundle_spec(draw, index):
    exports = draw(
        st.lists(
            st.tuples(st.sampled_from(PACKAGES), st.sampled_from(VERSIONS)),
            max_size=2,
            unique_by=lambda pair: pair[0],
        )
    )
    # The manifest rejects duplicate Import-Package clauses, so draw a
    # unique subset of package names first.
    imported_names = draw(
        st.lists(st.sampled_from(PACKAGES), max_size=3, unique=True)
    )
    imports = [import_clause(draw, name) for name in imported_names]
    return {
        "symbolic_name": "b%d" % index,
        "version": draw(st.sampled_from(VERSIONS)),
        "imports": tuple(imports),
        "exports": tuple(
            '%s;version="%s"' % (name, version) for name, version in exports
        ),
        "packages": {name: {} for name, _ in exports},
    }


@st.composite
def bundle_sets(draw):
    count = draw(st.integers(min_value=1, max_value=5))
    return [draw(bundle_spec(index)) for index in range(count)]


@settings(max_examples=200, deadline=None)
@given(bundle_sets())
def test_verifier_accept_implies_resolver_success(specs):
    definitions = [simple_bundle(**spec) for spec in specs]
    diagnostics = verify_bundles(definitions, check_activators=False)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        return  # rejected sets carry no resolution promise

    framework = Framework("sound")
    framework.start()
    bundles = [framework.install(definition) for definition in definitions]
    for bundle in bundles:
        try:
            bundle.start()
        except BundleException as exc:  # pragma: no cover - the property
            raise AssertionError(
                "verifier accepted %r but the resolver refused: %s"
                % ([d.symbolic_name for d in definitions], exc)
            )
        assert bundle.state.name == "ACTIVE"
    framework.stop()


@settings(max_examples=200, deadline=None)
@given(bundle_sets())
def test_verifier_matches_resolver_per_mandatory_import(specs):
    """Sharper alignment check: VER001 fires for exactly the mandatory
    imports the resolver's own candidate search finds empty."""
    from repro.osgi.wiring import static_import_candidates

    definitions = [simple_bundle(**spec) for spec in specs]
    diagnostics = verify_bundles(definitions, check_activators=False)
    flagged = {
        (d.source, d.message.split()[1].split(";")[0])
        for d in diagnostics
        if d.code == "VER001"
    }
    expected = set()
    for definition in definitions:
        for imported in definition.manifest.imports:
            if imported.optional or imported.version_range.is_empty():
                continue
            if not static_import_candidates(
                definitions, imported, importer=definition
            ):
                expected.add((definition.symbolic_name, imported.name))
    assert flagged == expected
