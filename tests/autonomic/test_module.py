"""Autonomic Module end-to-end on a small platform."""

import pytest

from repro.autonomic.module import AutonomicModule
from repro.autonomic.policies import consolidation_policy, sla_enforcement_policy
from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeState
from repro.migration.module import MigrationModule
from repro.migration.registry import CustomerDescriptor, CustomerDirectory
from repro.osgi.definition import simple_bundle

from tests.conftest import RecordingActivator


def build_platform(node_count=3, seed=11, monitoring_interval=1.0):
    cluster = Cluster.build(
        node_count, seed=seed, monitoring_interval=monitoring_interval
    )
    migrations, autonomics = {}, {}
    for node in cluster.nodes():
        migration = MigrationModule(node)
        node.modules["migration"] = migration
        migration.start()
        migrations[node.node_id] = migration
        autonomic = AutonomicModule(node, migration)
        node.modules["autonomic"] = autonomic
        autonomic.start()
        autonomics[node.node_id] = autonomic
    cluster.run_for(2.0)
    return cluster, migrations, autonomics


def deploy_hog(cluster, node_id, name="hog", cpu_share=0.2, burn_per_second=0.6):
    """Deploy an instance whose worker bundle burns CPU beyond its quota."""
    descriptor = CustomerDescriptor(name=name, cpu_share=cpu_share)
    CustomerDirectory(cluster.store).put(descriptor)
    deploy = cluster.node(node_id).deploy_instance(
        name, policy=descriptor.policy(), quota=descriptor.quota()
    )
    cluster.run_until_settled([deploy])
    instance = deploy.result()
    activator = RecordingActivator()
    instance.install(
        simple_bundle("worker", activator_factory=lambda: activator)
    ).start()

    def burn():
        if activator.context is not None:
            try:
                activator.context.account(cpu=burn_per_second)
            except Exception:
                return  # stopped/migrated
        cluster.loop.call_after(1.0, burn)

    cluster.loop.call_after(1.0, burn)
    return instance


def host_of(cluster, name):
    for node in cluster.alive_nodes():
        if name in node.instance_names():
            return node.node_id
    return None


class TestSlaEnforcement:
    def test_stop_action_removes_misbehaving_instance(self):
        cluster, migrations, autonomics = build_platform()
        host = "n1"
        deploy_hog(cluster, host)
        autonomics[host].add_node_policy(
            sla_enforcement_policy(grace_violations=2, action_kind="stop-instance")
        )
        cluster.run_for(10.0)
        assert host_of(cluster, "hog") is None
        stop_actions = [
            a for a in autonomics[host].actions_log if a.kind == "stop-instance"
        ]
        assert stop_actions

    def test_migrate_action_moves_instance(self):
        cluster, migrations, autonomics = build_platform()
        deploy_hog(cluster, "n1")
        autonomics["n1"].add_node_policy(
            sla_enforcement_policy(grace_violations=2, action_kind="migrate")
        )
        cluster.run_for(12.0)
        new_host = host_of(cluster, "hog")
        assert new_host in ("n2", "n3")

    def test_throttle_action_lowers_priority(self):
        cluster, migrations, autonomics = build_platform()
        deploy_hog(cluster, "n1")
        autonomics["n1"].add_node_policy(
            sla_enforcement_policy(grace_violations=2, action_kind="throttle")
        )
        cluster.run_for(8.0)
        assert "hog" in autonomics["n1"].throttled
        descriptor = migrations["n1"].customers.get("hog")
        assert descriptor.priority < 0

    def test_compliant_instance_left_alone(self):
        cluster, migrations, autonomics = build_platform()
        deploy_hog(cluster, "n1", cpu_share=0.9, burn_per_second=0.1)
        autonomics["n1"].add_node_policy(
            sla_enforcement_policy(grace_violations=2, action_kind="stop-instance")
        )
        cluster.run_for(10.0)
        assert host_of(cluster, "hog") == "n1"
        assert autonomics["n1"].actions_log == []


class TestClusterHierarchy:
    def test_cluster_tick_fires_only_on_coordinator(self):
        cluster, migrations, autonomics = build_platform()
        fired = []
        from repro.autonomic.serpentine import Policy

        for node_id, autonomic in autonomics.items():
            autonomic.add_cluster_policy(
                Policy(
                    "spy",
                    lambda e, c: e.type == "cluster-tick",
                    lambda e, c, node_id=node_id: (fired.append(node_id), [])[1],
                )
            )
        cluster.run_for(6.0)
        assert set(fired) == {"n1"}  # lowest id is coordinator

    def test_consolidation_hibernate_empty_node(self):
        cluster, migrations, autonomics = build_platform()
        # one idle customer on n1, nothing anywhere else
        CustomerDirectory(cluster.store).put(
            CustomerDescriptor(name="idle", cpu_share=0.1)
        )
        deploy = cluster.node("n1").deploy_instance("idle")
        cluster.run_until_settled([deploy])
        autonomics["n1"].add_cluster_policy(
            consolidation_policy(cluster_cpu_threshold=0.5, min_nodes=1, cooldown=5.0)
        )
        cluster.run_for(20.0)
        hibernated = [
            n.node_id for n in cluster.nodes() if n.state == NodeState.HIBERNATED
        ]
        assert len(hibernated) >= 1
        assert "n1" not in hibernated  # it hosts the customer
        assert host_of(cluster, "idle") == "n1"

    def test_hibernate_refused_while_hosting(self):
        cluster, migrations, autonomics = build_platform()
        CustomerDirectory(cluster.store).put(CustomerDescriptor(name="c"))
        deploy = cluster.node("n2").deploy_instance("c")
        cluster.run_until_settled([deploy])
        assert autonomics["n2"]._cmd_hibernate({}) is False
        assert cluster.node("n2").state == NodeState.ON


def test_stop_detaches_listeners():
    cluster, migrations, autonomics = build_platform()
    module = autonomics["n1"]
    module.stop()
    deploy_hog(cluster, "n1")
    module.add_node_policy(
        sla_enforcement_policy(grace_violations=1, action_kind="stop-instance")
    )
    cluster.run_for(6.0)
    assert module.actions_log == []
