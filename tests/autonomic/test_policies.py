"""Built-in policies against synthetic events."""

import pytest

from repro.autonomic.policies import sla_enforcement_policy
from repro.autonomic.serpentine import AutonomicContext, Event
from repro.monitoring.monitor import UsageReport


def report(instance="acme", cpu_share=0.5, quota=0.2, at=0.0, memory=None):
    return UsageReport(
        instance=instance,
        at=at,
        window=1.0,
        cpu_share=cpu_share,
        cpu_seconds_total=cpu_share,
        memory_bytes=memory,
        disk_bytes=None,
        quota_cpu_share=quota,
        quota_memory_bytes=1024,
        quota_disk_bytes=1024,
    )


def usage_event(r, at=None):
    return Event("usage-report", at=at if at is not None else r.at, data={"report": r})


class TestSlaEnforcement:
    def test_fires_after_grace_violations(self):
        policy = sla_enforcement_policy(grace_violations=3, action_kind="stop-instance")
        context = AutonomicContext()
        for t in range(2):
            assert policy.evaluate(usage_event(report(at=t)), context) == []
        actions = policy.evaluate(usage_event(report(at=2.0)), context)
        assert len(actions) == 1
        assert actions[0].kind == "stop-instance"
        assert actions[0].target == "acme"

    def test_compliant_report_resets_counter(self):
        policy = sla_enforcement_policy(grace_violations=2)
        context = AutonomicContext()
        policy.evaluate(usage_event(report(at=0.0)), context)
        # compliant report in between resets the streak
        policy.evaluate(usage_event(report(cpu_share=0.1, at=1.0)), context)
        assert policy.evaluate(usage_event(report(at=2.0)), context) == []

    def test_cooldown_prevents_action_storm(self):
        policy = sla_enforcement_policy(grace_violations=1, action_kind="migrate")
        context = AutonomicContext()
        first = policy.evaluate(usage_event(report(at=0.0)), context)
        assert first
        # next violation within 5s cooldown: silent
        assert policy.evaluate(usage_event(report(at=1.0)), context) == []
        # after cooldown: fires again
        later = policy.evaluate(usage_event(report(at=10.0)), context)
        assert later

    def test_distinct_instances_tracked_separately(self):
        policy = sla_enforcement_policy(grace_violations=2)
        context = AutonomicContext()
        policy.evaluate(usage_event(report(instance="a", at=0.0)), context)
        policy.evaluate(usage_event(report(instance="b", at=0.1)), context)
        assert policy.evaluate(usage_event(report(instance="a", at=1.0)), context)
        assert policy.evaluate(usage_event(report(instance="b", at=1.1)), context)

    def test_ignores_other_event_types(self):
        policy = sla_enforcement_policy(grace_violations=1)
        context = AutonomicContext()
        assert policy.evaluate(Event("node-state", at=0.0), context) == []

    def test_invalid_action_kind_rejected(self):
        with pytest.raises(ValueError):
            sla_enforcement_policy(action_kind="defenestrate")

    def test_memory_violation_also_counts(self):
        policy = sla_enforcement_policy(grace_violations=1, action_kind="throttle")
        context = AutonomicContext()
        bad_memory = report(cpu_share=0.0, memory=99999, at=0.0)
        assert bad_memory.memory_violation
        actions = policy.evaluate(usage_event(bad_memory), context)
        assert actions and actions[0].kind == "throttle"
