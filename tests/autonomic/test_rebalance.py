"""The rebalance policy: relieve overloaded nodes."""

import pytest

from repro.autonomic.module import AutonomicModule
from repro.autonomic.policies import rebalance_policy
from repro.cluster.cluster import Cluster
from repro.migration.module import MigrationModule
from repro.migration.registry import CustomerDescriptor, CustomerDirectory
from repro.workloads.burner import CpuBurner, burner_bundle, drive_burner


def build_platform(seed=61):
    cluster = Cluster.build(2, seed=seed)
    modules, autonomics = {}, {}
    for node in cluster.nodes():
        migration = MigrationModule(node)
        node.modules["migration"] = migration
        migration.start()
        modules[node.node_id] = migration
        autonomic = AutonomicModule(node, migration)
        autonomic.add_node_policy(
            rebalance_policy(node_cpu_threshold=0.8, cooldown=3.0)
        )
        node.modules["autonomic"] = autonomic
        autonomic.start()
        autonomics[node.node_id] = autonomic
    cluster.run_for(2.0)
    return cluster, modules, autonomics


def deploy_burning(cluster, name, node_id, cpu_per_second, quota=0.6):
    CustomerDirectory(cluster.store).put(
        CustomerDescriptor(name=name, cpu_share=quota)
    )
    deploy = cluster.node(node_id).deploy_instance(name)
    cluster.run_until_settled([deploy])
    instance = deploy.result()
    burner = CpuBurner(cpu_per_second=cpu_per_second)
    instance.install(burner_bundle(burner)).start()
    drive_burner(cluster.loop, burner, interval=1.0)
    return instance


def host_of(cluster, name):
    for node in cluster.alive_nodes():
        if name in node.instance_names():
            return node.node_id
    return None


def test_overloaded_node_sheds_heaviest_instance():
    cluster, modules, autonomics = build_platform()
    deploy_burning(cluster, "heavy", "n1", cpu_per_second=0.55, quota=0.6)
    deploy_burning(cluster, "light", "n1", cpu_per_second=0.35, quota=0.4)
    cluster.run_for(15.0)
    # Node at ~0.9 CPU crosses the 0.8 threshold; the heaviest moves.
    assert host_of(cluster, "heavy") == "n2"
    assert host_of(cluster, "light") == "n1"
    rebalance_actions = [
        a
        for a in autonomics["n1"].actions_log
        if a.params.get("reason") == "rebalance"
    ]
    assert rebalance_actions
    assert rebalance_actions[0].target == "heavy"


def test_no_rebalance_under_threshold():
    cluster, modules, autonomics = build_platform()
    deploy_burning(cluster, "modest", "n1", cpu_per_second=0.3, quota=0.6)
    cluster.run_for(12.0)
    assert host_of(cluster, "modest") == "n1"
    assert autonomics["n1"].actions_log == []


def test_no_rebalance_without_headroom_elsewhere():
    cluster, modules, autonomics = build_platform()
    deploy_burning(cluster, "hog1", "n1", cpu_per_second=0.9, quota=1.0)
    deploy_burning(cluster, "hog2", "n2", cpu_per_second=0.9, quota=1.0)
    cluster.run_for(12.0)
    # Both nodes are saturated: nothing can move, nothing should flap.
    assert host_of(cluster, "hog1") == "n1"
    assert host_of(cluster, "hog2") == "n2"
