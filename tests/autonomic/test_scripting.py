"""Scripted (JSR-223-style) policies."""

import pytest

from repro.autonomic.scripting import ScriptError, load_policies, scripted_policy
from repro.autonomic.serpentine import (
    Action,
    AutonomicContext,
    Event,
    PolicyEngine,
)


def usage_event(cpu_share, instance="acme", at=0.0):
    class FakeReport:
        pass

    report = FakeReport()
    report.cpu_share = cpu_share
    report.instance = instance
    return Event("usage-report", at=at, data={"report": report})


class TestScriptedPolicy:
    def test_condition_and_action_scripts_work(self):
        policy = scripted_policy(
            "shed",
            "event.type == 'usage-report' and event.data['report'].cpu_share > 0.5",
            "actions.append(Action('migrate', event.data['report'].instance))",
        )
        context = AutonomicContext()
        assert policy.evaluate(usage_event(0.9), context)[0].kind == "migrate"
        assert policy.evaluate(usage_event(0.1), context) == []

    def test_scripts_can_use_context_counters(self):
        policy = scripted_policy(
            "after-three",
            "context.counter('seen', 1) >= 3",
            "actions.append(Action('stop-instance', 'acme'))",
        )
        context = AutonomicContext()
        assert policy.evaluate(usage_event(0.9, at=0.0), context) == []
        assert policy.evaluate(usage_event(0.9, at=1.0), context) == []
        assert len(policy.evaluate(usage_event(0.9, at=2.0), context)) == 1

    def test_syntax_error_raises_at_build_time(self):
        with pytest.raises(ScriptError):
            scripted_policy("bad", "event.type ===", "pass")
        with pytest.raises(ScriptError):
            scripted_policy("bad", "True", "def broken(:")

    def test_runtime_error_in_condition_never_matches(self):
        policy = scripted_policy("brittle", "event.data['missing'] > 1", "pass")
        assert policy.evaluate(usage_event(0.9), AutonomicContext()) == []

    def test_runtime_error_in_action_yields_nothing(self):
        policy = scripted_policy("brittle", "True", "actions.append(1/0)")
        assert policy.evaluate(usage_event(0.9), AutonomicContext()) == []

    def test_non_action_appends_filtered(self):
        policy = scripted_policy("junk", "True", "actions.append('not-an-action')")
        assert policy.evaluate(usage_event(0.9), AutonomicContext()) == []

    def test_dangerous_builtins_absent(self):
        policy = scripted_policy(
            "sneaky", "True", "actions.append(Action(str(open), 't'))"
        )
        # `open` is not in scope: the script errors and does nothing.
        assert policy.evaluate(usage_event(0.9), AutonomicContext()) == []

    def test_safe_builtins_available(self):
        policy = scripted_policy(
            "mathsy",
            "max(1, 2) == 2 and len([1, 2]) == 2",
            "actions.append(Action('noop', str(round(1.6))))",
        )
        actions = policy.evaluate(usage_event(0.9), AutonomicContext())
        assert actions[0].target == "2"


class TestPolicyFile:
    FILE = """
# administrator-authored business policy
policy: shed-hogs priority=10
when: event.type == 'usage-report' and event.data['report'].cpu_share > 0.5
then: actions.append(Action('migrate', event.data['report'].instance))

policy: observe
when: event.type == 'usage-report'
then: context.counter('reports', 1)
then: actions.append(Action('noop', 'observer'))
"""

    def test_blocks_parsed(self):
        policies = load_policies(self.FILE)
        assert [p.name for p in policies] == ["shed-hogs", "observe"]
        assert policies[0].priority == 10

    def test_loaded_policies_run_in_engine(self):
        engine = PolicyEngine("scripted")
        for policy in load_policies(self.FILE):
            engine.add_policy(policy)
        context = AutonomicContext()
        actions = engine.handle(usage_event(0.9), context)
        kinds = sorted(a.kind for a in actions)
        assert kinds == ["migrate", "noop"]
        assert context.state["reports"] == 1

    def test_missing_when_rejected(self):
        with pytest.raises(ScriptError):
            load_policies("policy: broken\nthen: pass\n")

    def test_orphan_clauses_rejected(self):
        with pytest.raises(ScriptError):
            load_policies("when: True\n")
        with pytest.raises(ScriptError):
            load_policies("then: pass\n")

    def test_unknown_key_rejected(self):
        with pytest.raises(ScriptError):
            load_policies("policy: x\nwat: True\n")

    def test_comments_and_blanks_ignored(self):
        policies = load_policies("# nothing\n\n# still nothing\n")
        assert policies == []
