"""Policy engine: ECA evaluation, statelessness, cascading."""

import pytest

from repro.autonomic.serpentine import (
    Action,
    AutonomicContext,
    Event,
    Policy,
    PolicyEngine,
)


def always(event, context):
    return True


def never(event, context):
    return False


def emit(kind, target="t"):
    def action(event, context):
        return [Action(kind=kind, target=target)]

    return action


def test_matching_policy_emits_actions():
    engine = PolicyEngine("e")
    engine.add_policy(Policy("p", always, emit("noop")))
    actions = engine.handle(Event("x", at=0.0), AutonomicContext())
    assert [a.kind for a in actions] == ["noop"]
    assert engine.handled_events == 1


def test_non_matching_policy_silent():
    engine = PolicyEngine("e")
    engine.add_policy(Policy("p", never, emit("noop")))
    assert engine.handle(Event("x", at=0.0), AutonomicContext()) == []
    assert engine.handled_events == 0


def test_policies_evaluated_in_priority_order():
    order = []

    def recording(name):
        def action(event, context):
            order.append(name)
            return []

        return action

    engine = PolicyEngine("e")
    engine.add_policy(Policy("low", always, recording("low"), priority=1))
    engine.add_policy(Policy("high", always, recording("high"), priority=9))
    engine.handle(Event("x", at=0.0), AutonomicContext())
    assert order == ["high", "low"]


def test_broken_policy_does_not_stop_others():
    def broken(event, context):
        raise RuntimeError("scripted policy bug")

    engine = PolicyEngine("e")
    engine.add_policy(Policy("bad", always, broken, priority=9))
    engine.add_policy(Policy("good", always, emit("ok")))
    actions = engine.handle(Event("x", at=0.0), AutonomicContext())
    assert [a.kind for a in actions] == ["ok"]


def test_unhandled_event_escalates_to_parent():
    parent = PolicyEngine("cluster")
    parent.add_policy(Policy("cluster-p", always, emit("cluster-action")))
    child = PolicyEngine("node", parent=parent)
    child.add_policy(Policy("node-p", never, emit("node-action")))
    actions = child.handle(Event("x", at=0.0), AutonomicContext())
    assert [a.kind for a in actions] == ["cluster-action"]
    assert child.escalated_events == 1
    assert parent.handled_events == 1


def test_handled_event_does_not_escalate():
    parent = PolicyEngine("cluster")
    parent.add_policy(Policy("cluster-p", always, emit("cluster-action")))
    child = PolicyEngine("node", parent=parent)
    child.add_policy(Policy("node-p", always, emit("node-action")))
    actions = child.handle(Event("x", at=0.0), AutonomicContext())
    assert [a.kind for a in actions] == ["node-action"]
    assert parent.handled_events == 0


def test_executor_success_and_failure_tracked():
    def executor(action, context):
        return action.kind == "good"

    engine = PolicyEngine("e", executor=executor)
    engine.add_policy(
        Policy(
            "p",
            always,
            lambda e, c: [Action("good", "t"), Action("bad", "t")],
        )
    )
    engine.handle(Event("x", at=0.0), AutonomicContext())
    assert [a.kind for a in engine.executed_actions] == ["good"]
    assert [a.kind for a in engine.failed_actions] == ["bad"]


def test_executor_exception_counts_as_failure():
    def exploding(action, context):
        raise RuntimeError("boom")

    engine = PolicyEngine("e", executor=exploding)
    engine.add_policy(Policy("p", always, emit("x")))
    engine.handle(Event("x", at=0.0), AutonomicContext())
    assert len(engine.failed_actions) == 1


def test_remove_policy():
    engine = PolicyEngine("e")
    engine.add_policy(Policy("p", always, emit("x")))
    engine.remove_policy("p")
    assert engine.handle(Event("x", at=0.0), AutonomicContext()) == []


def test_engine_is_stateless_context_carries_state():
    """Rebuilding the engine must not lose control state kept in context."""
    context = AutonomicContext()

    def counting_condition(event, ctx):
        return ctx.counter("seen", +1) >= 3

    def build_engine():
        engine = PolicyEngine("e")
        engine.add_policy(Policy("p", counting_condition, emit("fire")))
        return engine

    assert build_engine().handle(Event("x", at=0.0), context) == []
    assert build_engine().handle(Event("x", at=1.0), context) == []
    actions = build_engine().handle(Event("x", at=2.0), context)
    assert [a.kind for a in actions] == ["fire"]


def test_context_facilities_and_counters():
    context = AutonomicContext(node="the-node")
    assert context.facility("node") == "the-node"
    with pytest.raises(KeyError):
        context.facility("ghost")
    assert context.counter("c", +2) == 2
    context.reset_counter("c")
    assert context.counter("c") == 0


def test_policy_fired_count():
    policy = Policy("p", always, emit("x"))
    engine = PolicyEngine("e")
    engine.add_policy(policy)
    context = AutonomicContext()
    engine.handle(Event("x", at=0.0), context)
    engine.handle(Event("x", at=1.0), context)
    assert policy.fired == 2
