"""Cluster wiring."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeState
from repro.cluster.spec import NodeSpec


def test_build_boots_requested_nodes():
    cluster = Cluster.build(3, seed=1)
    assert [n.node_id for n in cluster.nodes()] == ["n1", "n2", "n3"]
    assert all(n.state == NodeState.ON for n in cluster.nodes())


def test_build_without_boot():
    cluster = Cluster.build(2, seed=1, boot=False)
    assert all(n.state == NodeState.OFF for n in cluster.nodes())


def test_duplicate_node_id_rejected():
    cluster = Cluster(seed=1)
    cluster.add_node("n1")
    with pytest.raises(ValueError):
        cluster.add_node("n1")


def test_alive_nodes_excludes_failed():
    cluster = Cluster.build(3, seed=1)
    cluster.node("n2").fail()
    assert [n.node_id for n in cluster.alive_nodes()] == ["n1", "n3"]


def test_per_node_spec_override():
    cluster = Cluster(seed=1)
    big = cluster.add_node("big", spec=NodeSpec(cpu_capacity=4.0))
    assert big.spec.cpu_capacity == 4.0


def test_same_seed_same_virtual_timeline():
    a = Cluster.build(3, seed=42, jitter=0.001)
    b = Cluster.build(3, seed=42, jitter=0.001)
    assert a.loop.clock.now == b.loop.clock.now
    assert a.network.stats.as_dict() == b.network.stats.as_dict()


def test_total_power_sums_nodes():
    cluster = Cluster.build(2, seed=1)
    expected = sum(n.power_watts() for n in cluster.nodes())
    assert cluster.total_power_watts() == expected


def test_run_until_settled_timeout():
    from repro.cluster.future import Completion

    cluster = Cluster.build(1, seed=1)
    never = Completion("never")
    with pytest.raises(TimeoutError):
        cluster.run_until_settled([never], timeout=1.0)


def test_nodes_share_san():
    cluster = Cluster.build(2, seed=1)
    cluster.store.data_area("x", "y")["k"] = 1
    assert cluster.node("n2").store is cluster.store
