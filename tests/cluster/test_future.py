"""Completion handle semantics."""

import pytest

from repro.cluster.future import Completion


def test_complete_delivers_value():
    c = Completion("x")
    c.complete(42, at=1.0)
    assert c.done and c.ok
    assert c.result() == 42
    assert c.completed_at == 1.0


def test_fail_stores_error():
    c = Completion()
    error = RuntimeError("boom")
    c.fail(error)
    assert c.done and not c.ok
    with pytest.raises(RuntimeError):
        c.result()


def test_result_before_settlement_raises():
    with pytest.raises(RuntimeError):
        Completion().result()


def test_double_settlement_rejected():
    c = Completion()
    c.complete(1)
    with pytest.raises(RuntimeError):
        c.complete(2)
    with pytest.raises(RuntimeError):
        c.fail(RuntimeError())


def test_callback_after_settlement_fires_immediately():
    c = Completion()
    c.complete("v")
    seen = []
    c.on_done(lambda x: seen.append(x.value))
    assert seen == ["v"]


def test_callback_before_settlement_fires_on_settle():
    c = Completion()
    seen = []
    c.on_done(lambda x: seen.append(x.value))
    assert seen == []
    c.complete("v")
    assert seen == ["v"]


def test_callback_errors_swallowed():
    c = Completion()
    c.on_done(lambda x: 1 / 0)
    c.complete("v")  # must not raise


def test_on_done_chains():
    c = Completion()
    assert c.on_done(lambda x: None) is c
