"""Node lifecycle: boot, fail, shutdown, hibernate, deploy."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeState
from repro.vosgi.delegation import ExportPolicy


@pytest.fixture
def cluster():
    return Cluster.build(2, seed=3)


def test_boot_takes_modeled_time():
    cluster = Cluster(seed=1)
    node = cluster.add_node("n1")
    assert node.state == NodeState.OFF
    completion = node.boot()
    assert node.state == NodeState.BOOTING
    cluster.run_until_settled([completion])
    assert node.state == NodeState.ON
    assert completion.completed_at == pytest.approx(
        cluster.costs.node_boot_seconds
    )


def test_boot_brings_up_platform_bundles(cluster):
    node = cluster.node("n1")
    assert node.framework is not None
    assert node.instance_manager is not None
    assert node.monitoring is not None
    names = [b.symbolic_name for b in node.framework.bundles()]
    assert "vosgi.instance-manager" in names
    assert "monitoring.module" in names


def test_boot_from_on_rejected(cluster):
    with pytest.raises(RuntimeError):
        cluster.node("n1").boot()


def test_deploy_instance_completes_after_delay(cluster):
    node = cluster.node("n1")
    before = cluster.loop.clock.now
    completion = node.deploy_instance("acme", ExportPolicy(), bundle_count_hint=5)
    cluster.run_until_settled([completion])
    assert completion.ok
    assert completion.completed_at - before == pytest.approx(
        cluster.costs.instance_start_seconds(5)
    )
    assert "acme" in node.instance_names()


def test_deploy_on_dead_node_rejected(cluster):
    node = cluster.node("n1")
    node.fail()
    with pytest.raises(RuntimeError):
        node.deploy_instance("acme")


def test_deploy_interrupted_by_crash_fails_completion(cluster):
    node = cluster.node("n1")
    completion = node.deploy_instance("acme")
    node.fail()
    cluster.run_for(5.0)
    assert completion.done and not completion.ok


def test_undeploy_removes_instance(cluster):
    node = cluster.node("n1")
    deploy = node.deploy_instance("acme")
    cluster.run_until_settled([deploy])
    undeploy = node.undeploy_instance("acme")
    cluster.run_until_settled([undeploy])
    assert node.instance_names() == []


def test_undeploy_keeps_san_state_by_default(cluster):
    node = cluster.node("n1")
    deploy = node.deploy_instance("acme")
    cluster.run_until_settled([deploy])
    undeploy = node.undeploy_instance("acme")
    cluster.run_until_settled([undeploy])
    assert cluster.store.has_state("vosgi:acme")


def test_fail_leaves_san_state_for_survivors(cluster):
    node = cluster.node("n1")
    deploy = node.deploy_instance("acme")
    cluster.run_until_settled([deploy])
    node.fail()
    assert node.state == NodeState.FAILED
    assert cluster.store.has_state("vosgi:acme")
    other = cluster.node("n2")
    redeploy = other.deploy_instance("acme")
    cluster.run_until_settled([redeploy])
    assert "acme" in other.instance_names()


def test_fail_is_idempotent(cluster):
    node = cluster.node("n1")
    node.fail()
    node.fail()
    assert node.state == NodeState.FAILED


def test_shutdown_stops_platform(cluster):
    node = cluster.node("n1")
    completion = node.shutdown()
    assert completion.ok
    assert node.state == NodeState.OFF
    assert node.framework is None


def test_shutdown_then_reboot_restores_host_platform(cluster):
    node = cluster.node("n1")
    node.shutdown()
    boot = node.boot()
    cluster.run_until_settled([boot])
    assert node.state == NodeState.ON
    assert node.instance_manager is not None


def test_hibernate_and_wake(cluster):
    node = cluster.node("n1")
    hibernation = node.hibernate()
    cluster.run_until_settled([hibernation])
    assert node.state == NodeState.HIBERNATED
    assert node.power_watts() == node.spec.power_hibernate_watts
    wake = node.wake()
    cluster.run_until_settled([wake])
    assert node.state == NodeState.ON


def test_hibernate_requires_on(cluster):
    node = cluster.node("n1")
    node.fail()
    with pytest.raises(RuntimeError):
        node.hibernate()


def test_wake_requires_hibernated(cluster):
    with pytest.raises(RuntimeError):
        cluster.node("n1").wake()


def test_power_model_shapes(cluster):
    node = cluster.node("n1")
    on_power = node.power_watts()
    assert on_power >= node.spec.power_idle_watts
    node.fail()
    assert node.power_watts() == 0.0


def test_state_listeners_fire(cluster):
    node = cluster.node("n1")
    states = []
    node.add_state_listener(lambda n, s: states.append(s))
    node.fail()
    assert states == [NodeState.FAILED]
