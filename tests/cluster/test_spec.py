"""Cost model arithmetic."""

import pytest

from repro.cluster.spec import CostModel, NodeSpec


def test_san_transfer_time_linear_in_size():
    costs = CostModel()
    small = costs.san_transfer_seconds(1024)
    big = costs.san_transfer_seconds(1024 * 1024 * 100)
    assert big > small
    assert big - costs.san_op_seconds == pytest.approx(
        100 * 1024 * 1024 / costs.san_bytes_per_second
    )


def test_instance_start_scales_with_bundles():
    costs = CostModel()
    few = costs.instance_start_seconds(bundle_count=1)
    many = costs.instance_start_seconds(bundle_count=20)
    assert many - few == pytest.approx(19 * costs.bundle_start_seconds)


def test_cold_platform_adds_boot_time():
    costs = CostModel()
    warm = costs.instance_start_seconds(5)
    cold = costs.instance_start_seconds(5, cold_platform=True)
    assert cold - warm == pytest.approx(costs.node_boot_seconds)


def test_migration_cheaper_than_cold_startup():
    """The §3.2 claim in cost-model form: redeploying on a warm node beats
    a full platform startup."""
    costs = CostModel()
    migration = costs.instance_stop_seconds(5) + costs.instance_start_seconds(5)
    cold = costs.instance_start_seconds(5, cold_platform=True)
    assert migration < cold


def test_state_size_adds_transfer_time():
    costs = CostModel()
    light = costs.instance_start_seconds(1, state_bytes=0)
    heavy = costs.instance_start_seconds(1, state_bytes=200 * 1024 * 1024)
    assert heavy > light + 3.0


def test_node_spec_defaults():
    spec = NodeSpec()
    assert spec.cpu_capacity == 1.0
    assert spec.power_idle_watts > spec.power_hibernate_watts > 0
