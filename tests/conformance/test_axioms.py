"""Virtual-synchrony axiom checkers over hand-built synthetic histories.

Each axiom gets a passing history and at least one violating history so
the checkers are pinned independently of the live protocol (which
``test_mutants.py`` covers end to end).
"""

from repro.conformance import History, run_axioms
from repro.conformance.axioms import (
    AXIOMS,
    ConformanceViolation,
    check_fifo_order,
    check_same_view_delivery,
    check_self_delivery,
    check_total_order_agreement,
    check_total_order_prefix,
    check_view_monotonic,
)


class HistoryBuilder:
    """Appends events with the recorder's data shapes, minimal noise."""

    def __init__(self):
        self.history = History()
        self._at = 0.0

    def _tick(self):
        self._at += 0.1
        return self._at

    def install(self, node, view_id, members, order_seq=0, joined=(),
                left=(), incarnation=1, group="g"):
        self.history.append(
            self._tick(), "view_install", node,
            {"group": group, "view_id": view_id, "members": list(members),
             "order_seq": order_seq, "joined": sorted(joined),
             "left": sorted(left), "incarnation": incarnation},
        )
        return self

    def send(self, node, kind, seq, payload="p", incarnation=1, group="g"):
        self.history.append(
            self._tick(), "send", node,
            {"group": group, "kind": kind, "seq": seq, "payload": payload,
             "incarnation": incarnation},
        )
        return self

    def deliver(self, node, kind, sender, seq, payload="p", view_id=1,
                view_members=("a", "b"), incarnation=1, group="g"):
        self.history.append(
            self._tick(), "deliver", node,
            {"group": group, "kind": kind, "sender": sender, "seq": seq,
             "payload": payload, "view_id": view_id,
             "view_members": list(view_members), "incarnation": incarnation},
        )
        return self


def test_axiom_catalogue_matches_checkers():
    assert set(AXIOMS) == {
        "view-monotonic", "self-delivery", "fifo-order",
        "total-order-agreement", "total-order-prefix", "same-view-delivery",
    }


def test_violation_str_and_dict():
    violation = ConformanceViolation(
        checker="fifo-order", message="boom", node="a", events=(3, 7)
    )
    assert "[fifo-order]" in str(violation)
    assert "at a" in str(violation)
    assert violation.to_dict() == {
        "checker": "fifo-order", "message": "boom", "node": "a",
        "events": [3, 7],
    }


class TestViewMonotonic:
    def test_increasing_views_pass(self):
        b = HistoryBuilder()
        b.install("a", 1, ["a"]).install("a", 2, ["a", "b"])
        assert check_view_monotonic(b.history) == []

    def test_repeated_view_flagged(self):
        b = HistoryBuilder()
        b.install("a", 2, ["a", "b"]).install("a", 2, ["a", "b"])
        found = check_view_monotonic(b.history)
        assert len(found) == 1
        assert found[0].node == "a"
        assert "after view 2" in found[0].message

    def test_regressing_view_flagged(self):
        b = HistoryBuilder()
        b.install("a", 3, ["a"]).install("a", 1, ["a"])
        assert len(check_view_monotonic(b.history)) == 1

    def test_new_incarnation_restarts(self):
        b = HistoryBuilder()
        b.install("a", 3, ["a"], incarnation=1)
        b.install("a", 1, ["a"], incarnation=2)  # rejoined from scratch
        assert check_view_monotonic(b.history) == []


class TestSelfDelivery:
    def test_sender_delivers_its_own_fifo(self):
        b = HistoryBuilder()
        b.send("a", "fifo", 1).deliver("a", "fifo", "a", 1)
        assert check_self_delivery(b.history) == []

    def test_missing_self_delivery_flagged(self):
        b = HistoryBuilder()
        b.send("a", "fifo", 1).deliver("b", "fifo", "a", 1)
        found = check_self_delivery(b.history)
        assert len(found) == 1
        assert found[0].node == "a"

    def test_total_order_send_exempt(self):
        # A sequenced-but-dropped total-order message is the documented
        # coordinator-failover weakening, not a violation.
        b = HistoryBuilder()
        b.send("a", "total", None)
        assert check_self_delivery(b.history) == []


class TestFifoOrder:
    def test_in_order_passes(self):
        b = HistoryBuilder()
        b.deliver("b", "fifo", "a", 1).deliver("b", "fifo", "a", 2)
        assert check_fifo_order(b.history) == []

    def test_duplicate_flagged(self):
        b = HistoryBuilder()
        b.deliver("b", "fifo", "a", 1).deliver("b", "fifo", "a", 1)
        found = check_fifo_order(b.history)
        assert len(found) == 1
        assert "duplicate or reorder" in found[0].message

    def test_reorder_flagged(self):
        b = HistoryBuilder()
        b.deliver("b", "fifo", "a", 2).deliver("b", "fifo", "a", 1)
        assert len(check_fifo_order(b.history)) == 1

    def test_rejoined_sender_resets_expectation(self):
        b = HistoryBuilder()
        b.deliver("b", "fifo", "a", 5)
        b.install("b", 2, ["a", "b"], joined=("a",))
        b.deliver("b", "fifo", "a", 1)  # fresh incarnation restarts at 1
        assert check_fifo_order(b.history) == []

    def test_independent_receivers_tracked_separately(self):
        b = HistoryBuilder()
        b.deliver("b", "fifo", "a", 1).deliver("c", "fifo", "a", 1)
        assert check_fifo_order(b.history) == []


class TestTotalOrderAgreement:
    def test_agreeing_deliveries_pass(self):
        b = HistoryBuilder()
        b.deliver("a", "total", "a", 0, payload="x")
        b.deliver("b", "total", "a", 0, payload="x")
        assert check_total_order_agreement(b.history) == []

    def test_conflicting_payload_flagged(self):
        b = HistoryBuilder()
        b.deliver("a", "total", "a", 0, payload="xxxxxxxx")
        b.deliver("b", "total", "c", 0, payload="yyyyyyyy")
        found = check_total_order_agreement(b.history)
        assert len(found) == 1
        assert found[0].checker == "total-order-agreement"

    def test_split_brain_views_exempt(self):
        # Same order seq, different view identity: two sequencers after a
        # partition. Documented split-brain — not this axiom's job.
        b = HistoryBuilder()
        b.deliver("a", "total", "a", 0, payload="x", view_id=4,
                  view_members=("a",))
        b.deliver("b", "total", "b", 0, payload="y", view_id=4,
                  view_members=("b",))
        assert check_total_order_agreement(b.history) == []


class TestTotalOrderPrefix:
    def test_contiguous_seqs_pass(self):
        b = HistoryBuilder()
        b.install("a", 1, ["a"], order_seq=0)
        b.deliver("a", "total", "a", 0).deliver("a", "total", "a", 1)
        assert check_total_order_prefix(b.history) == []

    def test_hole_flagged(self):
        b = HistoryBuilder()
        b.install("a", 1, ["a"], order_seq=0)
        b.deliver("a", "total", "a", 0).deliver("a", "total", "a", 2)
        found = check_total_order_prefix(b.history)
        assert len(found) == 1
        assert "hole or replay" in found[0].message

    def test_view_install_may_advance_cursor(self):
        # A joiner is handed the sequencer position via order_seq.
        b = HistoryBuilder()
        b.install("a", 1, ["a"], order_seq=0)
        b.deliver("a", "total", "a", 0)
        b.install("a", 2, ["a", "b"], order_seq=5)
        b.deliver("a", "total", "b", 5)
        assert check_total_order_prefix(b.history) == []

    def test_view_install_never_regresses_cursor(self):
        b = HistoryBuilder()
        b.install("a", 1, ["a"], order_seq=4)
        b.deliver("a", "total", "a", 4)
        b.install("a", 2, ["a", "b"], order_seq=0)  # stale order_seq
        b.deliver("a", "total", "a", 5)  # cursor stays at 5, no violation
        assert check_total_order_prefix(b.history) == []


class TestSameViewDelivery:
    def test_same_view_passes(self):
        b = HistoryBuilder()
        b.deliver("a", "total", "a", 0, view_id=2)
        b.deliver("b", "total", "a", 0, view_id=2)
        assert check_same_view_delivery(b.history) == []

    def test_stale_view_with_catch_up_exempt(self):
        # In-flight view change: b delivers under view 1 but installs
        # view 2 right after — the documented no-flush race.
        b = HistoryBuilder()
        b.deliver("a", "total", "a", 0, view_id=2)
        b.deliver("b", "total", "a", 0, view_id=1, view_members=("a", "b"))
        b.install("b", 2, ["a", "b"])
        assert check_same_view_delivery(b.history) == []

    def test_stale_view_then_silence_exempt(self):
        # b crashed before its VIEW frame arrived; nothing more from it.
        b = HistoryBuilder()
        b.deliver("b", "total", "a", 0, view_id=1, view_members=("a", "b"))
        b.deliver("a", "total", "a", 0, view_id=2)
        assert check_same_view_delivery(b.history) == []

    def test_stale_view_while_staying_active_flagged(self):
        b = HistoryBuilder()
        b.deliver("a", "total", "a", 0, view_id=2)
        b.deliver("b", "total", "a", 0, view_id=1, view_members=("a", "b"))
        b.send("b", "fifo", 1)  # stays active, never installs view 2
        found = check_same_view_delivery(b.history)
        assert len(found) == 1
        assert found[0].node == "b"
        assert "stale view 1" in found[0].message


class TestRunAxioms:
    def test_runs_all_by_default(self):
        b = HistoryBuilder()
        b.install("a", 2, ["a"]).install("a", 2, ["a"])  # view-monotonic
        b.deliver("b", "fifo", "a", 2).deliver("b", "fifo", "a", 1)  # fifo
        found = run_axioms(b.history)
        assert {v.checker for v in found} == {"view-monotonic", "fifo-order"}

    def test_name_selection(self):
        b = HistoryBuilder()
        b.install("a", 2, ["a"]).install("a", 2, ["a"])
        assert run_axioms(b.history, names=["fifo-order"]) == []
        assert len(run_axioms(b.history, names=["view-monotonic"])) == 1
