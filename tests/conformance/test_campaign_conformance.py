"""Conformance-enabled chaos campaigns: verdicts, determinism, CLI.

Seed 1 is a pinned known-clean seed: at duration=15/settle=10 every
episode passes both the invariant catalogue and every conformance
checker (verified over 25 episodes — the chaos-marked test below pins
the full run; the default-run tests use a 2-episode prefix for speed).
"""

import json

import pytest

from repro.conformance import (
    CHECKER_NAMES,
    campaign_verdict,
    replay_and_check,
    verdict_json,
)
from repro.conformance.cli import SCENARIOS, conform_main
from repro.faults import ChaosCampaign, EpisodeVerdict
from repro.faults.campaign import default_scenario, derive_episode_seed
from repro.faults.invariants import Violation
from repro.faults.schedule import FaultSchedule


def small_campaign(conformance=True, episodes=2, seed=1):
    return ChaosCampaign(
        seed=seed,
        episodes=episodes,
        episode_duration=15.0,
        settle=10.0,
        conformance=conformance,
    )


class TestConformanceCampaign:
    def test_pinned_seed_is_clean(self):
        result = small_campaign().run()
        assert result.ok
        assert result.conformance_violations == []
        for episode in result.episodes:
            assert episode.verdict is EpisodeVerdict.OK
            assert episode.history is not None
            assert len(episode.history) > 0
            assert episode.history_digest == episode.history.digest()

    def test_recording_leaves_fault_traces_identical(self):
        # The recorder draws no randomness and schedules nothing, so the
        # campaign trace digest must not depend on conformance on/off.
        with_rec = small_campaign(conformance=True).run()
        without = small_campaign(conformance=False).run()
        assert with_rec.trace_digest() == without.trace_digest()
        for episode in without.episodes:
            assert episode.history is None
            assert episode.history_digest == ""
            assert episode.verdict is EpisodeVerdict.OK

    def test_same_seed_runs_are_identical(self):
        first = small_campaign().run()
        second = small_campaign().run()
        assert first.trace_digest() == second.trace_digest()
        for a, b in zip(first.episodes, second.episodes):
            assert a.history_digest == b.history_digest

    def test_histories_record_protocol_and_registry_activity(self):
        result = small_campaign(episodes=1).run()
        history = result.episodes[0].history
        kinds = {event.kind for event in history}
        assert "deliver" in kinds and "send" in kinds
        # The default scenario admits customers before recording starts,
        # but chaos-driven failovers write the registry mid-episode.
        assert history.groups()  # at least the membership group


class TestEpisodeVerdict:
    def test_enum_values(self):
        assert EpisodeVerdict.OK.value == "ok"
        assert EpisodeVerdict.INVARIANT_VIOLATION.value == "invariant-violation"
        assert (
            EpisodeVerdict.CONFORMANCE_VIOLATION.value
            == "conformance-violation"
        )
        assert (
            EpisodeVerdict.INVARIANT_AND_CONFORMANCE.value
            == "invariant+conformance-violation"
        )

    def test_verdict_classification(self):
        result = small_campaign(episodes=1).run()
        episode = result.episodes[0]
        assert episode.verdict is EpisodeVerdict.OK
        episode.violations = [Violation(invariant="x", at=1.0, detail="d")]
        assert episode.verdict is EpisodeVerdict.INVARIANT_VIOLATION
        assert not episode.ok
        episode.conformance = ["fake"]
        assert episode.verdict is EpisodeVerdict.INVARIANT_AND_CONFORMANCE
        episode.violations = []
        assert episode.verdict is EpisodeVerdict.CONFORMANCE_VIOLATION

    def test_repro_snippet_distinguishes_verdicts(self):
        campaign = small_campaign(episodes=1)
        result = campaign.run()
        episode = result.episodes[0]
        episode.violations = [Violation(invariant="x", at=1.0, detail="d")]
        snippet = campaign.repro_snippet(episode)
        assert "# verdict: invariant-violation" in snippet
        assert "replay_schedule" in snippet
        # A conformance violation swaps in the recording harness and pins
        # the history digest alongside the trace digest.
        episode.conformance = [
            "[fifo-order] at n1 delivered fifo seq 2 after seq 2"
        ]
        snippet = campaign.repro_snippet(episode)
        assert "# verdict: invariant+conformance-violation" in snippet
        assert "# history digest: %s" % episode.history_digest in snippet
        assert "replay_and_check" in snippet
        assert "assert not conformance" in snippet
        assert "#   !! [fifo-order]" in snippet


class TestReplayAndCheck:
    def test_reproduces_episode_trace_and_history(self):
        campaign = small_campaign(episodes=1)
        episode = campaign.run().episodes[0]
        env = default_scenario(episode.seed)
        schedule = FaultSchedule(list(episode.schedule))
        trace, violations, history, conformance = replay_and_check(
            env, schedule, duration=15.0, settle=10.0
        )
        assert trace.digest() == episode.trace.digest()
        assert history.digest() == episode.history_digest
        assert violations == [] and conformance == []


class TestVerdictDocument:
    def test_checker_catalogue(self):
        assert CHECKER_NAMES[-3] == "linearizability"
        assert CHECKER_NAMES[-2:] == (
            "rollout-no-dropped-request",
            "rollout-version-monotonic",
        )
        assert len(CHECKER_NAMES) == 9

    def test_document_shape_and_self_digest(self):
        result = small_campaign().run()
        document = campaign_verdict(result, scenario="default")
        assert document["ok"] is True
        assert document["seed"] == 1
        assert document["scenario"] == "default"
        assert document["checkers"] == list(CHECKER_NAMES)
        assert document["campaign_trace_digest"] == result.trace_digest()
        for index, entry in enumerate(document["episodes"]):
            assert entry["index"] == index
            assert entry["seed"] == derive_episode_seed(1, index)
            assert entry["verdict"] == "ok"
            assert entry["events"] > 0 and entry["ops"] >= 0
            assert entry["conformance_violations"] == []
        digest = document.pop("digest")
        redone = campaign_verdict(result, scenario="default")
        assert redone.pop("digest") == digest

    def test_verdict_json_is_byte_stable(self):
        first = verdict_json(campaign_verdict(small_campaign().run()))
        second = verdict_json(campaign_verdict(small_campaign().run()))
        assert first == second
        assert first.endswith("\n")
        json.loads(first)  # well-formed


class TestConformCli:
    def test_scenarios_catalogue(self):
        assert set(SCENARIOS) == {"default", "crash", "partition", "loss"}
        assert SCENARIOS["default"] is None
        assert SCENARIOS["crash"] == ("crash", "repair")

    def test_two_runs_byte_identical(self, tmp_path, capsys):
        out1 = tmp_path / "v1.json"
        out2 = tmp_path / "v2.json"
        base = ["--seed", "1", "--episodes", "2", "--duration", "15"]
        assert conform_main(base + ["--out", str(out1)]) == 0
        assert conform_main(base + ["--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        document = json.loads(out1.read_text())
        assert document["ok"] is True
        assert document["digest"] in capsys.readouterr().out

    def test_rejects_zero_episodes(self, capsys):
        with pytest.raises(SystemExit):
            conform_main(["--episodes", "0"])


@pytest.mark.chaos
def test_pinned_seed_full_campaign_is_clean():
    """25 episodes on the pinned seed: zero violations of any kind."""
    result = ChaosCampaign(
        seed=1,
        episodes=25,
        episode_duration=15.0,
        settle=10.0,
        conformance=True,
    ).run()
    assert result.ok, [
        (e.index, e.verdict.value, e.violations, e.conformance)
        for e in result.episodes
        if not e.ok
    ]
