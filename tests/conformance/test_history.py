"""History model: determinism, canonical JSON, digests, queries."""

from repro.conformance import History, payload_digest
from repro.conformance.history import EVENT_KINDS, HistoryEvent


def sample_history():
    history = History()
    history.append(0.5, "view_install", "n1", {"group": "g", "view_id": 1})
    history.append(
        1.0, "send", "n1", {"group": "g", "kind": "fifo", "seq": 1}
    )
    history.append(
        1.2,
        "deliver",
        "n2",
        {"group": "g", "kind": "fifo", "seq": 1, "sender": "n1"},
        trace_id="t1",
        span_id="s1",
    )
    return history


class TestHistoryEvent:
    def test_indices_are_append_order(self):
        history = sample_history()
        assert [e.index for e in history] == [0, 1, 2]

    def test_to_dict_sorts_data_keys(self):
        event = HistoryEvent(
            index=0, at=1.0, kind="send", node="n1", data={"z": 1, "a": 2}
        )
        assert list(event.to_dict()["data"]) == ["a", "z"]

    def test_span_context_only_present_when_recorded(self):
        history = sample_history()
        dicts = history.to_dicts()
        assert "span_id" not in dicts[0]
        assert dicts[2]["trace_id"] == "t1"
        assert dicts[2]["span_id"] == "s1"

    def test_event_kinds_catalogue_is_complete(self):
        for kind in ("view_install", "send", "deliver", "op_invoke",
                     "op_return", "migration"):
            assert kind in EVENT_KINDS


class TestHistory:
    def test_of_kind_filters(self):
        history = sample_history()
        assert len(history.of_kind("deliver")) == 1
        assert history.of_kind("deliver")[0].node == "n2"

    def test_groups_collects_sorted_group_names(self):
        history = sample_history()
        history.append(2.0, "send", "n3", {"group": "a", "kind": "fifo"})
        assert history.groups() == ["a", "g"]

    def test_digest_is_stable_across_identical_builds(self):
        assert sample_history().digest() == sample_history().digest()

    def test_digest_changes_with_content(self):
        altered = sample_history()
        altered.append(9.0, "send", "n9", {"group": "g"})
        assert altered.digest() != sample_history().digest()

    def test_json_is_canonical(self):
        text = sample_history().to_json()
        # compact separators, sorted keys: no spaces after separators
        assert ": " not in text and ", " not in text


class TestPayloadDigest:
    def test_deterministic(self):
        assert payload_digest({"x": 1}) == payload_digest({"x": 1})

    def test_distinguishes_values(self):
        assert payload_digest({"x": 1}) != payload_digest({"x": 2})

    def test_short_hex(self):
        digest = payload_digest("anything")
        assert len(digest) == 16
        int(digest, 16)  # hex
