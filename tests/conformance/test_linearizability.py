"""Wing–Gong linearizability checker over classic register histories."""

from repro.conformance import History, check_linearizability
from repro.conformance.linearizability import (
    MUTATIONS,
    Operation,
    UNKNOWN,
    operations_from,
)


class OpBuilder:
    """Builds op_invoke/op_return histories with explicit concurrency."""

    def __init__(self):
        self.history = History()
        self._at = 0.0
        self._next = 0

    def invoke(self, process, action, key, value=None):
        op_id = self._next
        self._next += 1
        self._at += 0.1
        self.history.append(
            self._at, "op_invoke", process,
            {"op": op_id, "action": action, "key": key, "value": value},
        )
        return op_id

    def ret(self, op_id, result=None, ok=True, process="p"):
        self._at += 0.1
        self.history.append(
            self._at, "op_return", process,
            {"op": op_id, "result": result, "ok": ok},
        )

    def call(self, process, action, key, value=None, result=None, ok=True):
        """Sequential (invoke immediately followed by return) operation."""
        op_id = self.invoke(process, action, key, value)
        self.ret(op_id, result=result, ok=ok, process=process)
        return op_id


def test_operations_from_pairs_events():
    b = OpBuilder()
    b.call("p1", "write", "k", value="v1")
    pending = b.invoke("p2", "read", "k")
    ops = operations_from(b.history)
    assert len(ops) == 2
    write, read = ops
    assert write.action == "write" and write.complete and write.ok
    assert read.op_id == pending and not read.complete


def test_mutations_catalogue():
    assert set(MUTATIONS) == {"write", "deploy", "remove"}


def test_sequential_register_is_linearizable():
    b = OpBuilder()
    b.call("p", "write", "k", value="v1")
    b.call("p", "read", "k", result="v1")
    b.call("p", "write", "k", value="v2")
    b.call("p", "read", "k", result="v2")
    b.call("p", "remove", "k")
    b.call("p", "read", "k", result=None)
    assert check_linearizability(b.history) == []


def test_stale_read_is_not_linearizable():
    b = OpBuilder()
    b.call("p", "write", "k", value="v1")
    b.call("p", "write", "k", value="v2")
    b.call("p", "read", "k", result="v1")  # sequential, so provably stale
    found = check_linearizability(b.history)
    assert len(found) == 1
    assert found[0].checker == "linearizability"
    assert "'k'" in found[0].message


def test_unknown_initial_state_legalizes_midstream_reads():
    # Recording started after the registry was populated: the first read
    # observes a value no recorded write produced. UNKNOWN fixes it.
    b = OpBuilder()
    b.call("p", "read", "k", result="pre-existing")
    b.call("p", "read", "k", result="pre-existing")
    assert check_linearizability(b.history) == []
    assert UNKNOWN not in ("pre-existing", None)


def test_first_read_fixes_state():
    # After UNKNOWN is fixed to "a", a later read of "b" with no
    # intervening write cannot linearize.
    b = OpBuilder()
    b.call("p", "read", "k", result="a")
    b.call("p", "read", "k", result="b")
    assert len(check_linearizability(b.history)) == 1


def test_concurrent_writes_allow_either_order():
    b = OpBuilder()
    w1 = b.invoke("p1", "write", "k", value="v1")
    w2 = b.invoke("p2", "write", "k", value="v2")
    b.ret(w1, process="p1")
    b.ret(w2, process="p2")
    b.call("p3", "read", "k", result="v1")  # w2;w1 order linearizes this
    assert check_linearizability(b.history) == []


def test_concurrent_read_may_see_either_side_of_write():
    b = OpBuilder()
    b.call("p1", "write", "k", value="old")
    w = b.invoke("p1", "write", "k", value="new")
    r = b.invoke("p2", "read", "k")
    b.ret(w, process="p1")
    b.ret(r, result="old", process="p2")  # read linearized before the write
    assert check_linearizability(b.history) == []


def test_pending_write_may_or_may_not_apply():
    # The crashed writer's value showing up later is legal (it applied)...
    b = OpBuilder()
    b.invoke("p1", "write", "k", value="ghost")  # never returns
    b.call("p2", "read", "k", result="ghost")
    assert check_linearizability(b.history) == []
    # ...and so is it never showing up at all.
    b2 = OpBuilder()
    b2.call("p1", "write", "k", value="v1")
    b2.invoke("p1", "write", "k", value="ghost")
    b2.call("p2", "read", "k", result="v1")
    assert check_linearizability(b2.history) == []


def test_failed_write_treated_as_uncertain():
    b = OpBuilder()
    b.call("p1", "write", "k", value="v1")
    b.call("p1", "write", "k", value="v2", ok=False)  # failed: maybe applied
    b.call("p2", "read", "k", result="v2")
    assert check_linearizability(b.history) == []


def test_pending_read_constrains_nothing():
    b = OpBuilder()
    b.call("p1", "write", "k", value="v1")
    b.invoke("p2", "read", "k")  # never returns; dropped
    b.call("p1", "read", "k", result="v1")
    assert check_linearizability(b.history) == []


def test_keys_checked_independently():
    b = OpBuilder()
    b.call("p", "write", "good", value="v")
    b.call("p", "read", "good", result="v")
    b.call("p", "write", "bad", value="v1")
    b.call("p", "write", "bad", value="v2")
    b.call("p", "read", "bad", result="v1")  # only this key fails
    found = check_linearizability(b.history)
    assert len(found) == 1
    assert "'bad'" in found[0].message


def test_violation_events_cover_the_key_ops():
    b = OpBuilder()
    b.call("p", "write", "k", value="v1")
    b.call("p", "read", "k", result="wrong")
    found = check_linearizability(b.history)
    assert found and found[0].events == (0, 1, 2, 3)


def test_operation_complete_property():
    op = Operation(0, "p", "read", "k", None, None, False, 0, None)
    assert not op.complete
