"""Mutant-detection matrix: every checker must flag its seeded mutant.

A checker that can never fire is not a test. Each protocol mutation in
``repro.conformance.mutants`` is a test-only hook inside the *real*
protocol code path (``gcs/member.py``, ``migration/registry.py``); this
module enables one mutant at a time, drives the live protocol, and
asserts the targeted checker — and only a sensible set of checkers —
fires. The same scenarios with mutants off must be clean, so the matrix
also guards against false positives.
"""

import pytest

from repro.conformance import check_history, protocol_mutation
from repro.conformance.mutants import (
    ACTIVE,
    MUTANT_NAMES,
    disable_all,
    enable,
    enabled,
)
from repro.conformance.runtime import recording
from repro.core import DependableEnvironment
from repro.gcs.directory import GroupDirectory
from repro.gcs.member import GroupMember
from repro.migration.registry import CustomerDescriptor, CustomerDirectory
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def build_group(n, seed=0, loss=0.0):
    loop = EventLoop()
    network = Network(loop, RngStreams(seed), loss_rate=loss)
    directory = GroupDirectory()
    members = []
    for i in range(1, n + 1):
        member = GroupMember("n%d" % i, "g", loop, network, directory)
        members.append(member)
        member.join()
        loop.run_for(0.5)
    loop.run_for(1.0)
    return loop, members


def fifo_burst(loop, members):
    for i in range(15):
        members[0].multicast(i)
    loop.run_for(10.0)


def total_burst(loop, members):
    for i in range(10):
        members[1].multicast(("t", i), total_order=True)
        members[2].multicast(("u", i), total_order=True)
    loop.run_for(10.0)


def checkers_hit(mutant, endpoints, act, seed=7, loss=0.15):
    """Run ``act`` on a lossy 3-member group with ``mutant`` enabled."""
    loop, members = build_group(3, seed=seed, loss=loss)
    with recording(loop.clock) as recorder:
        with protocol_mutation(mutant, endpoints=endpoints):
            act(loop, members)
        loop.run_for(5.0)
    return {v.checker for v in check_history(recorder.history)}


class TestMutantRegistry:
    def test_catalogue(self):
        assert MUTANT_NAMES == (
            "skip_self_delivery",
            "fifo_eager_delivery",
            "self_sequencing",
            "drain_with_holes",
            "accept_stale_views",
            "skip_view_install",
            "stale_directory_reads",
            "skip_drain",
        )

    def test_enable_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            enable("no_such_mutant")

    def test_endpoint_scoping(self):
        try:
            enable("skip_self_delivery", endpoints=["gcs/g/n1"])
            assert enabled("skip_self_delivery", "gcs/g/n1")
            assert not enabled("skip_self_delivery", "gcs/g/n2")
            assert not enabled("fifo_eager_delivery", "gcs/g/n1")
        finally:
            disable_all()

    def test_unscoped_mutant_matches_everyone(self):
        try:
            enable("stale_directory_reads")
            assert enabled("stale_directory_reads", "anything")
            assert enabled("stale_directory_reads")
        finally:
            disable_all()

    def test_context_manager_restores_previous_state(self):
        assert not ACTIVE
        with protocol_mutation("skip_self_delivery"):
            assert enabled("skip_self_delivery")
            with protocol_mutation("drain_with_holes", endpoints=["e"]):
                assert enabled("skip_self_delivery")
                assert enabled("drain_with_holes", "e")
            assert not enabled("drain_with_holes", "e")
        assert not ACTIVE


class TestMulticastMutants:
    """The four multicast mutants on a lossy group (seed 7, 15% loss)."""

    def test_unmutated_scenarios_are_clean(self):
        loop, members = build_group(3, seed=7, loss=0.15)
        with recording(loop.clock) as recorder:
            fifo_burst(loop, members)
            total_burst(loop, members)
            loop.run_for(5.0)
        assert check_history(recorder.history) == []

    def test_skip_self_delivery_caught_by_self_delivery(self):
        hit = checkers_hit("skip_self_delivery", ["gcs/g/n1"], fifo_burst)
        assert "self-delivery" in hit

    def test_fifo_eager_delivery_caught_by_fifo_order(self):
        hit = checkers_hit("fifo_eager_delivery", ["gcs/g/n2"], fifo_burst)
        assert "fifo-order" in hit

    def test_self_sequencing_caught_by_total_order_agreement(self):
        hit = checkers_hit(
            "self_sequencing", ["gcs/g/n2", "gcs/g/n3"], total_burst
        )
        assert "total-order-agreement" in hit

    def test_drain_with_holes_caught_by_total_order_prefix(self):
        hit = checkers_hit("drain_with_holes", ["gcs/g/n2"], total_burst)
        assert "total-order-prefix" in hit


class TestViewMutants:
    def test_accept_stale_views_caught_by_view_monotonic(self):
        # A JOIN retry makes the coordinator re-send the current view;
        # the mutant re-installs it instead of discarding the stale copy.
        # Recording must cover group formation so the checker has the
        # original install to compare against.
        loop = EventLoop()
        network = Network(loop, RngStreams(2))
        directory = GroupDirectory()
        members = []
        with recording(loop.clock) as recorder:
            for i in range(1, 4):
                member = GroupMember("n%d" % i, "g", loop, network, directory)
                members.append(member)
                member.join()
                loop.run_for(0.5)
            loop.run_for(1.0)
            with protocol_mutation(
                "accept_stale_views", endpoints=[members[2].endpoint_name]
            ):
                members[2]._send_join([members[0].endpoint_name])
                loop.run_for(2.0)
        hit = {v.checker for v in check_history(recorder.history)}
        assert "view-monotonic" in hit

    def test_skip_view_install_caught_by_same_view_delivery(self):
        # n3 drops the VIEW frame for n2's leave, keeps delivering under
        # the stale view, and stays active — exactly what the axiom's
        # in-flight exemptions must NOT excuse.
        loop, members = build_group(3, seed=2)
        with recording(loop.clock) as recorder:
            with protocol_mutation(
                "skip_view_install", endpoints=[members[2].endpoint_name]
            ):
                members[1].leave()
                loop.run_for(2.0)
                for i in range(3):
                    members[0].multicast({"round": i})
                    loop.run_for(1.0)
                members[2].multicast({"from": "stale"})
                loop.run_for(2.0)
        hit = {v.checker for v in check_history(recorder.history)}
        assert "same-view-delivery" in hit


class TestRegistryMutant:
    def test_stale_directory_reads_caught_by_linearizability(self):
        env = DependableEnvironment.build(node_count=2, seed=3)
        with recording(env.loop.clock) as recorder:
            with protocol_mutation("stale_directory_reads"):
                directory = CustomerDirectory(env.cluster.store, owner="test")
                directory.put(CustomerDescriptor(name="acme", priority=1))
                assert directory.get("acme").priority == 1
                directory.put(CustomerDescriptor(name="acme", priority=2))
                directory.get("acme")  # mutant serves the first-seen copy
        hit = {v.checker for v in check_history(recorder.history)}
        assert "linearizability" in hit

    def test_registry_clean_without_mutant(self):
        env = DependableEnvironment.build(node_count=2, seed=3)
        with recording(env.loop.clock) as recorder:
            directory = CustomerDirectory(env.cluster.store, owner="test")
            directory.put(CustomerDescriptor(name="acme", priority=1))
            assert directory.get("acme").priority == 1
            directory.put(CustomerDescriptor(name="acme", priority=2))
            assert directory.get("acme").priority == 2
        assert check_history(recorder.history) == []


class TestRolloutMutant:
    """skip_drain: the engine kills a node with requests still in flight."""

    def _run_rollout(self, mutate, seed=11):
        from repro.rollout.scenario import rollout_scenario

        # A dense pump guarantees in-flight requests at the moment the
        # mutated engine takes a node down without draining it first.
        env = rollout_scenario(seed, pump_interval=0.005)
        with recording(env.loop.clock) as recorder:
            if mutate:
                with protocol_mutation("skip_drain"):
                    env.run_for(15.0)
            else:
                env.run_for(15.0)
        assert env.rollout_engine.report is not None
        return env, recorder

    def test_skip_drain_caught_by_no_dropped_request(self):
        env, recorder = self._run_rollout(mutate=True)
        hit = {v.checker for v in check_history(recorder.history)}
        assert hit == {"rollout-no-dropped-request"}

    def test_rollout_clean_without_mutant(self):
        # The dense pump overloads the fleet's cpu share, so the engine
        # may (correctly) roll back when SLA enforcement relocates a
        # member mid-swap — but with drains intact, no checker fires and
        # the fleet still ends in a safe uniform-version state.
        env, recorder = self._run_rollout(mutate=False)
        assert check_history(recorder.history) == []
        report = env.rollout_engine.report
        assert report.outcome in ("completed", "rolled-back")
        assert not report.mixed_version


def test_every_mutant_has_a_matrix_test():
    """The matrix above must cover the full catalogue — no orphan mutants."""
    import tests.conformance.test_mutants as me
    import inspect

    source = inspect.getsource(me)
    for name in MUTANT_NAMES:
        assert source.count('"%s"' % name) >= 2, (
            "mutant %s has no detection test" % name
        )
