"""Property-based conformance: ordering axioms under randomized faults.

Hypothesis drives a 4-member group through arbitrary interleavings of
multicast traffic and faults (crashes, partitions, loss bursts), records
the protocol history, and asserts the ordering axioms — FIFO per-sender
order, total-order agreement, total-order prefix — hold on every run.
On a failure hypothesis shrinks to the minimal (seed, script) pair,
which is exactly the reproduction a protocol bug needs.
"""

from hypothesis import given, settings, strategies as st

from repro.conformance import check_history, run_axioms
from repro.conformance.runtime import recording
from repro.gcs.directory import GroupDirectory
from repro.gcs.member import GroupMember
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams

#: The axioms whose guarantees survive arbitrary crash/partition/loss
#: schedules (the others have protocol-honest exemptions that the chaos
#: campaign exercises; here we pin the unconditional core).
ORDERING_AXIOMS = ["fifo-order", "total-order-agreement", "total-order-prefix"]

step = st.one_of(
    st.tuples(st.just("fifo"), st.integers(0, 3)),
    st.tuples(st.just("total"), st.integers(0, 3)),
    st.tuples(st.just("crash"), st.integers(0, 3)),
    st.tuples(st.just("partition"), st.integers(1, 3)),
    st.tuples(st.just("heal"), st.just(0)),
    st.tuples(st.just("loss"), st.integers(1, 4)),  # tenths: 0.1..0.4
)


def build_group(n, seed):
    loop = EventLoop()
    network = Network(loop, RngStreams(seed), loss_rate=0.0)
    directory = GroupDirectory()
    members = []
    for i in range(1, n + 1):
        member = GroupMember("n%d" % i, "g", loop, network, directory)
        members.append(member)
        member.join()
        loop.run_for(0.5)
    loop.run_for(1.0)
    return loop, network, members


def run_script(script, seed):
    loop, network, members = build_group(4, seed)
    payload = 0
    with recording(loop.clock) as recorder:
        for action, arg in script:
            alive = [m for m in members if m.running]
            if action in ("fifo", "total"):
                if alive:
                    sender = alive[arg % len(alive)]
                    payload += 1
                    sender.multicast(payload, total_order=(action == "total"))
            elif action == "crash":
                if len(alive) > 1:
                    alive[arg % len(alive)].crash()
            elif action == "partition":
                names = [m.endpoint_name for m in members]
                network.partition(set(names[:arg]), set(names[arg:]))
            elif action == "heal":
                network.heal()
                network.loss_rate = 0.0
            elif action == "loss":
                network.loss_rate = arg / 10.0
            loop.run_for(0.7)
        # End every episode healed and lossless so retransmissions and
        # view merges can settle before the history is judged.
        network.heal()
        network.loss_rate = 0.0
        loop.run_for(20.0)
    return recorder.history


@settings(max_examples=25, deadline=None)
@given(script=st.lists(step, min_size=1, max_size=12), seed=st.integers(0, 10_000))
def test_ordering_axioms_hold_under_random_faults(script, seed):
    history = run_script(script, seed)
    violations = run_axioms(history, names=ORDERING_AXIOMS)
    assert violations == [], "\n".join(str(v) for v in violations)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_all_checkers_hold_on_faultless_runs(seed):
    """With no faults at all, every checker must hold unconditionally."""
    script = [("fifo", i % 4) for i in range(6)] + [
        ("total", i % 4) for i in range(6)
    ]
    history = run_script(script, seed)
    assert check_history(history) == []
