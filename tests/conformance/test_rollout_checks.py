"""Unit tests for the rollout checkers, on hand-built histories.

The live engine is exercised elsewhere (tests/rollout); here each
checker clause is pinned down with minimal synthetic histories so a
future refactor cannot silently weaken a clause.
"""

from repro.conformance.history import History
from repro.conformance.rollout_checks import (
    check_rollout_no_dropped_request,
    check_rollout_version_monotonic,
)

PINNED = "1.0.0"
TARGET = "2.0.0"


def build(events):
    """events: (kind, node, data) triples appended at 1-second strides."""
    history = History()
    for i, (kind, node, data) in enumerate(events):
        history.append(float(i), kind, node, data)
    return history


def rollout(phase, node="n1", instance="svc-1", frm=PINNED, to=TARGET, **extra):
    data = {
        "phase": phase,
        "instance": instance,
        "from_version": frm,
        "to_version": to,
    }
    data.update(extra)
    return ("rollout", node, data)


def drop(node, request_id=1):
    return (
        "request_drop",
        node,
        {"reason": "server-died", "endpoint": "vip:80", "request_id": request_id},
    )


def start(fleet=("svc-1",)):
    return rollout("start", instance="", fleet=list(fleet))


def final(outcome="completed", versions=None):
    return rollout(
        "final",
        instance="",
        outcome=outcome,
        versions=versions if versions is not None else {"svc-1": TARGET},
    )


CLEAN_RUN = [
    start(),
    rollout("drain-begin"),
    rollout("drain-complete"),
    rollout("upgrade-begin"),
    rollout("upgrade-complete"),
    rollout("undrain"),
    final(),
]


class TestNoDroppedRequest:
    def test_empty_and_rollout_free_histories_pass(self):
        assert check_rollout_no_dropped_request(History()) == []
        assert check_rollout_no_dropped_request(build([drop("n1")])) == []

    def test_clean_run_passes(self):
        assert check_rollout_no_dropped_request(build(CLEAN_RUN)) == []

    def test_drop_inside_window_flagged(self):
        history = build(
            [
                start(),
                rollout("upgrade-begin"),
                drop("n1"),
                rollout("undrain"),
                final(),
            ]
        )
        (violation,) = check_rollout_no_dropped_request(history)
        assert violation.checker == "rollout-no-dropped-request"
        assert violation.node == "n1"

    def test_window_stays_open_without_undrain(self):
        history = build([start(), rollout("upgrade-begin"), drop("n1")])
        assert len(check_rollout_no_dropped_request(history)) == 1

    def test_drop_before_window_exempt(self):
        history = build(
            [start(), drop("n1"), rollout("upgrade-begin"), rollout("undrain")]
        )
        assert check_rollout_no_dropped_request(history) == []

    def test_drop_after_undrain_exempt(self):
        history = build(
            [start(), rollout("upgrade-begin"), rollout("undrain"), drop("n1")]
        )
        assert check_rollout_no_dropped_request(history) == []

    def test_drop_on_other_node_exempt(self):
        history = build([start(), rollout("upgrade-begin"), drop("n2")])
        assert check_rollout_no_dropped_request(history) == []

    def test_unattributed_drop_exempt(self):
        # node == "": the request never reached a real server (director
        # down, partition) — chaos collateral, not the rollout's doing.
        history = build([start(), rollout("upgrade-begin"), drop("")])
        assert check_rollout_no_dropped_request(history) == []


class TestVersionMonotonic:
    def test_empty_history_passes(self):
        assert check_rollout_version_monotonic(History()) == []

    def test_clean_run_passes(self):
        assert check_rollout_version_monotonic(build(CLEAN_RUN)) == []

    def test_missing_start_flagged(self):
        history = build([rollout("upgrade-begin")])
        (violation,) = check_rollout_version_monotonic(history)
        assert "no 'start'" in violation.message

    def test_missing_final_flagged(self):
        history = build([start(), rollout("upgrade-complete")])
        violations = check_rollout_version_monotonic(history)
        assert any("final" in v.message for v in violations)

    def test_illegal_edge_flagged(self):
        history = build(
            [start(), rollout("upgrade-complete", to="3.0.0"), final()]
        )
        violations = check_rollout_version_monotonic(history)
        assert any("illegal version edge" in v.message for v in violations)

    def test_rollback_edge_is_legal(self):
        history = build(
            [
                start(),
                rollout("upgrade-complete"),
                rollout("upgrade-complete", frm=TARGET, to=PINNED),
                final(outcome="rolled-back", versions={"svc-1": PINNED}),
            ]
        )
        assert check_rollout_version_monotonic(history) == []

    def test_double_upgrade_flagged(self):
        history = build(
            [
                start(),
                rollout("upgrade-complete"),
                rollout("upgrade-complete"),
                final(),
            ]
        )
        violations = check_rollout_version_monotonic(history)
        assert any("upgraded twice" in v.message for v in violations)

    def test_mixed_final_versions_flagged(self):
        history = build(
            [
                start(fleet=("svc-1", "svc-2")),
                rollout("upgrade-complete"),
                final(versions={"svc-1": TARGET, "svc-2": PINNED}),
            ]
        )
        violations = check_rollout_version_monotonic(history)
        assert any("mixed-version" in v.message for v in violations)

    def test_outcome_version_mismatch_flagged(self):
        history = build(
            [
                start(),
                rollout("upgrade-complete"),
                final(outcome="rolled-back", versions={"svc-1": TARGET}),
            ]
        )
        violations = check_rollout_version_monotonic(history)
        assert any("not at version" in v.message for v in violations)
