"""Shared fixtures and bundle-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.osgi.definition import BundleActivator, BundleDefinition, simple_bundle
from repro.osgi.framework import Framework
from repro.sim.clock import Clock
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop(Clock())


@pytest.fixture
def make_network(loop: EventLoop):
    """Factory for networks on the shared ``loop`` fixture.

    Keyword arguments mirror :class:`Network`'s; ``seed`` builds the
    default ``RngStreams(seed)`` when no ``rng`` is passed. The plain
    ``network``/``lossy_network`` fixtures and the fault-injection tests
    all construct through this single point.
    """

    def factory(
        seed: int = 1234,
        rng: RngStreams = None,
        latency: float = 0.001,
        jitter: float = 0.0005,
        loss_rate: float = 0.0,
    ) -> Network:
        return Network(
            loop,
            rng if rng is not None else RngStreams(seed),
            latency=latency,
            jitter=jitter,
            loss_rate=loss_rate,
        )

    return factory


@pytest.fixture
def network(make_network) -> Network:
    return make_network()


@pytest.fixture
def lossy_network(make_network) -> Network:
    return make_network(loss_rate=0.1)


@pytest.fixture
def framework() -> Framework:
    fw = Framework("test-framework")
    fw.start()
    yield fw
    if fw.active:
        fw.stop()


class RecordingActivator(BundleActivator):
    """Activator that records its lifecycle transitions."""

    def __init__(self) -> None:
        self.events = []
        self.context = None

    def start(self, context) -> None:
        self.context = context
        self.events.append("start")

    def stop(self, context) -> None:
        self.events.append("stop")


class FailingStartActivator(BundleActivator):
    def start(self, context) -> None:
        raise RuntimeError("boom on start")


class FailingStopActivator(BundleActivator):
    def start(self, context) -> None:
        pass

    def stop(self, context) -> None:
        raise RuntimeError("boom on stop")


def library_bundle(
    name: str = "lib", version: str = "1.0.0", symbol_value: object = None
) -> BundleDefinition:
    """A bundle exporting package ``<name>`` with one symbol ``Thing``."""
    return simple_bundle(
        name,
        version=version,
        exports=('%s;version="%s"' % (name, version),),
        packages={name: {"Thing": symbol_value if symbol_value is not None else object()}},
    )


def consumer_bundle(
    name: str, imported: str, version_range: str = "0.0.0"
) -> BundleDefinition:
    """A bundle importing package ``imported``."""
    clause = imported
    if version_range != "0.0.0":
        clause = '%s;version="%s"' % (imported, version_range)
    return simple_bundle(name, imports=(clause,))
