"""The DependableEnvironment facade."""

import pytest

from repro.core import DependableEnvironment
from repro.ipvs.addressing import IpEndpoint
from repro.osgi.definition import simple_bundle
from repro.sla.agreement import ServiceLevelAgreement

from tests.conftest import RecordingActivator


@pytest.fixture
def env():
    return DependableEnvironment.build(node_count=3, seed=9)


def admit(env, name, cpu_share=0.25, bundles=None, **kwargs):
    completion = env.admit_customer(
        ServiceLevelAgreement(name, cpu_share=cpu_share), bundles=bundles, **kwargs
    )
    env.cluster.run_until_settled([completion])
    env.run_for(1.5)
    return completion.result()


def test_build_starts_all_modules(env):
    for node in env.cluster.nodes():
        assert "migration" in node.modules
        assert "autonomic" in node.modules
        assert node.modules["migration"].running


def test_admission_places_and_tracks(env):
    admit(env, "acme")
    assert env.locate("acme") is not None
    assert env.customer_names() == ["acme"]
    assert env.sla_tracker.known("acme")


def test_duplicate_admission_rejected(env):
    admit(env, "acme")
    with pytest.raises(ValueError):
        env.admit_customer(ServiceLevelAgreement("acme"))


def test_admissions_spread_by_load(env):
    for i in range(3):
        admit(env, "c%d" % i, cpu_share=0.6)
    hosts = {env.locate("c%d" % i) for i in range(3)}
    assert len(hosts) == 3  # 0.6 each cannot share a 1.0-CPU node


def test_admission_with_bundles_installs_them(env):
    activator = RecordingActivator()
    bundles = [simple_bundle("app", activator_factory=lambda: activator)]
    instance = admit(env, "acme", bundles=bundles)
    assert instance.get_bundle_by_name("app") is not None
    assert activator.events == ["start"]


def test_explicit_node_placement(env):
    admit(env, "acme", node_id="n3")
    assert env.locate("acme") == "n3"


def test_no_capacity_raises(env):
    admit(env, "big1", cpu_share=1.0)
    admit(env, "big2", cpu_share=1.0)
    admit(env, "big3", cpu_share=1.0)
    with pytest.raises(RuntimeError):
        env.admit_customer(ServiceLevelAgreement("big4", cpu_share=1.0))


def test_fail_node_redeploys_customers(env):
    admit(env, "acme")
    first_host = env.locate("acme")
    hosted = env.fail_node(first_host)
    assert "acme" in hosted
    env.run_for(6.0)
    new_host = env.locate("acme")
    assert new_host is not None and new_host != first_host


def test_compliance_reflects_failover_downtime(env):
    admit(env, "acme")
    env.run_for(10.0)
    env.fail_node(env.locate("acme"))
    env.run_for(10.0)
    report = env.compliance()[0]
    assert 0 < report.downtime < 5.0
    assert report.availability < 1.0


def test_planned_migration_via_facade(env):
    admit(env, "acme", node_id="n1")
    migration = env.migrate_customer("acme", "n2")
    env.cluster.run_until_settled([migration], timeout=60)
    assert env.locate("acme") == "n2"


def test_graceful_node_shutdown_evacuates(env):
    admit(env, "acme", node_id="n1")
    graceful = env.shutdown_node_gracefully("n1")
    env.cluster.run_until_settled([graceful], timeout=90)
    assert env.locate("acme") in ("n2", "n3")
    from repro.cluster.node import NodeState

    assert env.cluster.node("n1").state == NodeState.OFF


def test_stateful_data_survives_failover(env):
    class StatefulActivator(RecordingActivator):
        def start(self, context):
            super().start(context)
            data = context.get_data_store()
            data["boots"] = data.get("boots", 0) + 1

    instance = admit(
        env, "acme", bundles=[simple_bundle("s", activator_factory=StatefulActivator)]
    )
    env.fail_node(env.locate("acme"))
    env.run_for(8.0)
    assert env.cluster.store.data_area("vosgi:acme", "s")["boots"] == 2


def test_exposed_service_follows_migration(env):
    admit(env, "acme", node_id="n1")
    vip = IpEndpoint("10.0.0.50", 80)
    env.expose_service("acme", vip, service_time=0.005)
    request = env.director.submit(vip)
    env.run_for(1.0)
    assert request.ok and request.served_by == "n1"

    migration = env.migrate_customer("acme", "n2")
    env.cluster.run_until_settled([migration], timeout=60)
    request2 = env.director.submit(vip)
    env.run_for(1.0)
    assert request2.ok and request2.served_by == "n2"


def test_exposed_service_follows_failover(env):
    admit(env, "acme", node_id="n1")
    vip = IpEndpoint("10.0.0.50", 80)
    env.expose_service("acme", vip, service_time=0.005)
    env.fail_node("n1")
    env.run_for(8.0)
    new_host = env.locate("acme")
    request = env.director.submit(vip)
    env.run_for(1.0)
    assert request.ok and request.served_by == new_host


def test_instance_of_returns_live_instance(env):
    admit(env, "acme")
    instance = env.instance_of("acme")
    assert instance is not None and instance.running
    assert env.instance_of("ghost") is None


def test_repair_node_returns_node_to_service(env):
    admit(env, "acme", node_id="n1")
    env.fail_node("n1")
    env.run_for(6.0)
    repair = env.cluster.run_until_settled([env.repair_node("n1")]) or None
    env.run_for(3.0)
    from repro.cluster.node import NodeState

    node = env.cluster.node("n1")
    assert node.state == NodeState.ON
    assert env.migration["n1"].running
    assert "autonomic" in node.modules
    # The repaired node can host work again.
    migration = env.migrate_customer("acme", "n1")
    env.cluster.run_until_settled([migration], timeout=60)
    assert env.locate("acme") == "n1"


def test_repaired_node_feeds_sla_tracker(env):
    admit(env, "acme", node_id="n2")
    env.fail_node("n2")
    env.run_for(6.0)
    env.cluster.run_until_settled([env.repair_node("n2")])
    env.run_for(2.0)
    migration = env.migrate_customer("acme", "n2")
    env.cluster.run_until_settled([migration], timeout=60)
    env.run_for(3.0)
    # usage reports from the repaired node flow into the tracker
    assert env.cluster.node("n2").monitoring.latest("acme") is not None
