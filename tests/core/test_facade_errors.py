"""Facade error paths."""

import pytest

from repro.core import DependableEnvironment
from repro.ipvs.addressing import IpEndpoint
from repro.sla import ServiceLevelAgreement


@pytest.fixture
def env():
    return DependableEnvironment.build(node_count=2, seed=41)


def test_expose_service_for_unknown_customer_rejected(env):
    with pytest.raises(ValueError):
        env.expose_service("ghost", IpEndpoint("10.1.1.1", 80))


def test_migrate_unknown_customer_rejected(env):
    with pytest.raises(ValueError):
        env.migrate_customer("ghost", "n2")


def test_customer_lookup_unknown_raises(env):
    with pytest.raises(KeyError):
        env.customer("ghost")


def test_locate_unknown_returns_none(env):
    assert env.locate("ghost") is None


def test_compliance_empty_before_admissions(env):
    assert env.compliance() == []


def test_admit_to_dead_node_fails(env):
    env.fail_node("n2")
    with pytest.raises(RuntimeError):
        env.admit_customer(
            ServiceLevelAgreement("acme", cpu_share=0.2), node_id="n2"
        )


def test_repair_of_healthy_node_fails_cleanly(env):
    completion = env.repair_node("n1")  # n1 is ON; boot() must refuse
    assert completion.done and not completion.ok
