"""Warm standby through the environment facade."""

import pytest

from repro.core import DependableEnvironment
from repro.sla import ServiceLevelAgreement


@pytest.fixture
def env():
    return DependableEnvironment.build(node_count=3, seed=23)


def admit(env, name, node_id=None):
    completion = env.admit_customer(
        ServiceLevelAgreement(name, cpu_share=0.2), node_id=node_id
    )
    env.cluster.run_until_settled([completion])
    env.run_for(1.5)
    return completion.result()


def test_prepare_standby_creates_manager_lazily(env):
    admit(env, "acme", node_id="n1")
    preparation = env.prepare_standby("acme", "n2")
    env.cluster.run_until_settled([preparation])
    manager = env.cluster.node("n2").modules["standby"]
    assert manager.is_prepared("acme")


def test_failover_promotes_standby(env):
    admit(env, "acme", node_id="n1")
    preparation = env.prepare_standby("acme", "n3")
    env.cluster.run_until_settled([preparation])
    env.run_for(1.5)
    env.fail_node("n1")
    env.run_for(5.0)
    assert env.locate("acme") == "n3"


def test_standby_failover_beats_cold_failover_availability(env):
    admit(env, "warm", node_id="n1")
    admit(env, "cold", node_id="n1")
    preparation = env.prepare_standby("warm", "n2")
    env.cluster.run_until_settled([preparation])
    env.run_for(2.0)
    env.fail_node("n1")
    env.run_for(6.0)
    now = env.loop.clock.now
    warm_report = env.sla_tracker.report("warm", now)
    cold_report = env.sla_tracker.report("cold", now)
    assert warm_report.downtime < cold_report.downtime
