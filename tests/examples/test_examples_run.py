"""Every shipped example must run to completion (guards against bit-rot)."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLES, "no examples found at %s" % EXAMPLES_DIR


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_and_prints(script):
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = captured.getvalue()
    assert len(output) > 100, "%s produced almost no output" % script


def test_quickstart_shows_failover():
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = captured.getvalue()
    assert "redeployed on" in output
    assert "ComplianceReport" in output


def test_ha_shop_promotes_standby_and_keeps_orders():
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(EXAMPLES_DIR / "ha_shop.py"), run_name="__main__")
    output = captured.getvalue()
    assert "orders after failover: ['o-1', 'o-2']" in output
    assert "promoted to" in output


def test_module_entrypoint_runs():
    from repro.__main__ import main

    captured = io.StringIO()
    with redirect_stdout(captured):
        code = main(["--nodes", "3", "--seed", "5"])
    assert code == 0
    output = captured.getvalue()
    assert "compliance" in output
