"""ChaosCampaign: seeded episodes, determinism, repro snippets."""

import pytest

from repro.faults.campaign import (
    CampaignResult,
    ChaosCampaign,
    Episode,
    default_scenario,
    derive_episode_seed,
    replay_schedule,
)
from repro.faults.schedule import CRASH, REPAIR, FaultSchedule


def quick_campaign(**overrides) -> ChaosCampaign:
    """A campaign small enough for the unit-test tier."""
    settings = dict(
        seed=7,
        episodes=2,
        episode_duration=8.0,
        settle=5.0,
        check_interval=1.0,
        mean_gap=2.5,
    )
    settings.update(overrides)
    return ChaosCampaign(**settings)


def test_episode_seeds_are_stable_and_independent():
    assert derive_episode_seed(7, 0) == derive_episode_seed(7, 0)
    assert derive_episode_seed(7, 0) != derive_episode_seed(7, 1)
    assert derive_episode_seed(7, 0) != derive_episode_seed(8, 0)


def test_campaign_requires_at_least_one_episode():
    with pytest.raises(ValueError):
        ChaosCampaign(episodes=0)


def test_campaign_runs_all_episodes():
    result = quick_campaign().run()
    assert isinstance(result, CampaignResult)
    assert [e.index for e in result.episodes] == [0, 1]
    for episode in result.episodes:
        assert isinstance(episode, Episode)
        assert episode.seed == derive_episode_seed(7, episode.index)
        assert len(episode.trace.entries) >= 1  # at least the quiesce marker
        assert len(episode.invariant_names) >= 5


def test_same_seed_twice_is_byte_identical():
    first = quick_campaign().run()
    second = quick_campaign().run()
    assert first.trace_digest() == second.trace_digest()
    for a, b in zip(first.episodes, second.episodes):
        assert a.trace.text() == b.trace.text()
        assert a.schedule == b.schedule
        assert [str(v) for v in a.violations] == [str(v) for v in b.violations]


def test_different_seed_changes_the_traces():
    assert (
        quick_campaign(seed=7).run().trace_digest()
        != quick_campaign(seed=8).run().trace_digest()
    )


def test_kind_restriction_reaches_the_schedules():
    result = quick_campaign(kinds=[CRASH, REPAIR], mean_gap=1.5).run()
    kinds = {a.kind for e in result.episodes for a in e.schedule}
    assert kinds, "expected some scheduled faults"
    assert kinds <= {CRASH, REPAIR}


def test_schedule_factory_override():
    fixed = FaultSchedule().crash(1.0, "n2").repair(3.0, "n2")
    campaign = quick_campaign(
        episodes=1, schedule_factory=lambda rng, nodes, duration: fixed
    )
    result = campaign.run()
    assert result.episodes[0].schedule == fixed
    assert [e.kind for e in result.episodes[0].trace][:2] == ["crash", "repair"]


def test_replay_schedule_matches_campaign_episode():
    """replay_schedule with the recorded seed + schedule reproduces the
    episode byte for byte — the contract behind repro snippets."""
    campaign = quick_campaign(episodes=1)
    episode = campaign.run().episodes[0]
    env = default_scenario(episode.seed)
    trace, violations = replay_schedule(
        env,
        episode.schedule,
        duration=campaign.episode_duration,
        settle=campaign.settle,
        check_interval=campaign.check_interval,
    )
    assert trace.text() == episode.trace.text()
    assert [str(v) for v in violations] == [str(v) for v in episode.violations]


def test_repro_snippet_names_module_level_scenario():
    campaign = quick_campaign(episodes=1)
    episode = campaign.run().episodes[0]
    snippet = campaign.repro_snippet(episode)
    assert "from repro.faults.campaign import default_scenario" in snippet
    assert "replay_schedule(" in snippet
    assert "FaultSchedule.from_dicts(" in snippet
    compile(snippet, "<repro-snippet>", "exec")  # must be valid python


def test_repro_snippet_placeholder_for_local_factory():
    campaign = quick_campaign(
        episodes=1, scenario_factory=lambda seed: default_scenario(seed)
    )
    episode = campaign.run().episodes[0]
    snippet = campaign.repro_snippet(episode)
    assert "substitute your scenario factory" in snippet
    compile(snippet, "<repro-snippet>", "exec")


def test_violating_campaign_collects_snippets():
    """A hostile invariant guarantees violations; the campaign must emit
    one reproduction snippet per failing episode."""
    from repro.faults.invariants import Invariant, InvariantRegistry

    def hostile_registry():
        return InvariantRegistry(
            [Invariant("tripwire", "always fires", lambda env: ["tripped"])]
        )

    result = quick_campaign(
        episodes=2, registry_factory=hostile_registry
    ).run()
    assert not result.ok
    assert len(result.snippets) == 2
    assert all("replay_schedule" in s for s in result.snippets)
    assert {v.invariant for v in result.violations} == {"tripwire"}
