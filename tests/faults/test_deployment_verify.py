"""Deployment verdicts: the static bundle verifier wired into chaos
campaigns separates "bad deployment" from "platform bug"."""

from repro.analysis import Severity
from repro.faults import ChaosCampaign, verify_deployment
from repro.faults.campaign import default_scenario, derive_episode_seed
from repro.osgi.definition import simple_bundle


def quick_campaign(**overrides) -> ChaosCampaign:
    settings = dict(
        seed=7,
        episodes=1,
        episode_duration=6.0,
        settle=4.0,
        check_interval=1.0,
        mean_gap=2.5,
    )
    settings.update(overrides)
    return ChaosCampaign(**settings)


def test_default_scenario_is_deployment_clean():
    """The stock chaos target must carry no verifier findings at all —
    otherwise every campaign report would open with noise."""
    env = default_scenario(derive_episode_seed(7, 0))
    assert verify_deployment(env) == []


def test_episode_carries_deployment_verdict():
    result = quick_campaign().run()
    episode = result.episodes[0]
    assert episode.deployment == []
    assert episode.deployment_ok
    assert result.deployment_ok
    assert result.deployment_diagnostics == []


def test_dirty_deployment_is_flagged_with_instance_prefix():
    env = default_scenario(derive_episode_seed(7, 0))
    node = env.cluster.alive_nodes()[0]
    bad = simple_bundle("rogue", imports=("missing.pkg",))
    node.framework.install(bad)

    diagnostics = verify_deployment(env)
    assert [d.code for d in diagnostics] == ["VER001"]
    diagnostic = diagnostics[0]
    assert diagnostic.severity is Severity.ERROR
    # Source pins the owning framework: "<instance_id>:<bundle>".
    assert diagnostic.source.endswith(":rogue")
    assert node.framework.instance_id in diagnostic.source


def test_dirty_scenario_flips_deployment_ok():
    def dirty_scenario(seed):
        env = default_scenario(seed)
        node = env.cluster.alive_nodes()[0]
        node.framework.install(simple_bundle("rogue", imports=("missing.pkg",)))
        return env

    result = quick_campaign(scenario_factory=dirty_scenario).run()
    episode = result.episodes[0]
    assert not episode.deployment_ok
    assert not result.deployment_ok
    assert any(d.code == "VER001" for d in result.deployment_diagnostics)


def test_verification_does_not_disturb_trace_determinism():
    """verify_deployment is pure inspection: a campaign with it (always
    on) must digest identically to an independent second run."""
    first = quick_campaign().run()
    second = quick_campaign().run()
    assert first.trace_digest() == second.trace_digest()
