"""FaultInjector: each fault kind lands, restores, and traces correctly."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeState
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule


@pytest.fixture
def cluster() -> Cluster:
    return Cluster.build(3, seed=5)


def test_crash_executes_at_scheduled_sim_time(cluster):
    schedule = FaultSchedule().crash(2.5, "n2")
    injector = FaultInjector(cluster, schedule)
    base = cluster.loop.clock.now  # schedule times are arm-relative
    injector.arm()
    cluster.run_for(2.0)
    assert cluster.node("n2").state == NodeState.ON
    cluster.run_for(1.0)
    assert cluster.node("n2").state == NodeState.FAILED
    assert injector.trace.entries[0].kind == "crash"
    assert injector.trace.entries[0].at == pytest.approx(base + 2.5)


def test_crash_of_dead_node_is_skipped_but_traced(cluster):
    schedule = FaultSchedule().crash(1.0, "n2").crash(2.0, "n2")
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    cluster.run_for(3.0)
    kinds = [(e.kind, e.detail) for e in injector.trace]
    assert kinds[0] == ("crash", "n2")
    assert "skipped" in kinds[1][1]


def test_unknown_node_is_skipped_but_traced(cluster):
    injector = FaultInjector(cluster, FaultSchedule().crash(1.0, "n9"))
    injector.arm()
    cluster.run_for(2.0)
    assert "unknown-node" in injector.trace.entries[0].detail


def test_repair_boots_failed_node(cluster):
    schedule = FaultSchedule().crash(1.0, "n3").repair(2.0, "n3")
    FaultInjector(cluster, schedule).arm()
    cluster.run_for(1.5)
    assert cluster.node("n3").state == NodeState.FAILED
    cluster.run_for(60.0)
    assert cluster.node("n3").state == NodeState.ON


def test_loss_burst_restores_previous_rate(cluster):
    network = cluster.network
    schedule = FaultSchedule().loss_burst(1.0, 0.5, 2.0)
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    cluster.run_for(1.5)
    assert network.loss_rate == pytest.approx(0.5)
    cluster.run_for(2.0)
    assert network.loss_rate == pytest.approx(0.0)
    assert [e.kind for e in injector.trace] == ["loss_burst", "loss_restore"]


def test_partition_blocks_cross_group_traffic_and_heals(cluster):
    received = []
    network = cluster.network
    network.attach("svc/n1", received.append)
    network.attach("svc/n2", received.append)
    schedule = FaultSchedule().partition(1.0, ["n1"], ["n2", "n3"]).heal(3.0)
    FaultInjector(cluster, schedule).arm()
    cluster.run_for(2.0)
    network.send("svc/n1", "svc/n2", "during-partition")
    cluster.run_for(0.5)
    assert not [m for m in received if m.payload == "during-partition"]
    cluster.run_for(1.0)  # heal at t=3
    network.send("svc/n1", "svc/n2", "after-heal")
    cluster.run_for(0.5)
    assert [m for m in received if m.payload == "after-heal"]


def test_slow_node_adds_and_clears_latency(cluster):
    network = cluster.network
    arrivals = {}
    network.attach("probe/n1", lambda m: arrivals.__setitem__(m.payload, cluster.loop.clock.now))
    network.attach("probe/n2", lambda m: None)

    schedule = FaultSchedule().slow_node(1.0, "n1", 0.25, 2.0)
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    cluster.run_for(1.5)

    sent_at = cluster.loop.clock.now
    network.send("probe/n2", "probe/n1", "delayed")
    cluster.run_for(1.0)
    assert "delayed" in arrivals, "message lost"
    assert arrivals["delayed"] - sent_at >= 0.25

    cluster.run_for(1.0)  # past the 2s window
    sent_at = cluster.loop.clock.now
    network.send("probe/n2", "probe/n1", "fast-again")
    cluster.run_for(0.5)
    assert arrivals["fast-again"] - sent_at < 0.25
    assert [e.kind for e in injector.trace] == ["slow_node", "slow_restore"]


def test_clock_skew_scales_member_timers_and_restores(cluster):
    # Give each node a GCS member via a control session.
    from repro.gcs.jgcs import GroupConfiguration

    config = GroupConfiguration("platform-test")
    for node in cluster.nodes():
        node.protocol.create_control_session(config).join()
    cluster.run_for(2.0)
    member = cluster.node("n1").protocol.members()[0]
    original = member.hb_interval

    schedule = FaultSchedule().clock_skew(1.0, "n1", 3.0, 2.0)
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    cluster.run_for(1.5)
    assert member.hb_interval == pytest.approx(original * 3.0)
    cluster.run_for(2.0)
    assert member.hb_interval == pytest.approx(original)
    assert [e.kind for e in injector.trace] == ["clock_skew", "skew_restore"]


def test_quiesce_withdraws_everything(cluster):
    schedule = (
        FaultSchedule()
        .partition(0.5, ["n1"], ["n2", "n3"])
        .loss_burst(0.5, 0.4, 100.0)
        .slow_node(0.5, "n2", 0.1, 100.0)
    )
    injector = FaultInjector(cluster, schedule)
    injector.arm()
    cluster.run_for(1.0)
    network = cluster.network
    assert network.partitioned
    assert network.loss_rate == pytest.approx(0.4)
    injector.quiesce()
    assert not network.partitioned
    assert network.loss_rate == pytest.approx(0.0)
    assert network._extra_latency("x/n2", "y/n1") == pytest.approx(0.0)
    assert injector.trace.entries[-1].kind == "quiesce"


def test_double_arm_rejected(cluster):
    injector = FaultInjector(cluster, FaultSchedule())
    injector.arm()
    with pytest.raises(RuntimeError):
        injector.arm()


def test_trace_is_deterministic_across_runs():
    def run_once():
        cluster = Cluster.build(3, seed=21)
        schedule = (
            FaultSchedule()
            .crash(1.0, "n1")
            .partition(2.0, ["n2"], ["n3"])
            .loss_burst(3.0, 0.3, 1.0)
            .heal(5.0)
            .repair(6.0, "n1")
        )
        injector = FaultInjector(cluster, schedule)
        injector.arm()
        cluster.run_for(60.0)
        return injector.trace

    assert run_once().text() == run_once().text()
    assert run_once().digest() == run_once().digest()
