"""Invariant catalog: holds on a healthy platform, detects seeded breaches."""

import pytest

from repro.core import DependableEnvironment
from repro.faults.invariants import (
    ALWAYS,
    QUIESCENT,
    Invariant,
    InvariantChecker,
    InvariantRegistry,
    default_invariants,
)
from repro.sla import ServiceLevelAgreement


@pytest.fixture
def env() -> DependableEnvironment:
    env = DependableEnvironment.build(node_count=3, seed=17)
    for name in ("acme", "globex"):
        completion = env.admit_customer(
            ServiceLevelAgreement(name, cpu_share=0.2, availability_target=0.9)
        )
        env.cluster.run_until_settled([completion])
    env.run_for(2.0)
    return env


def test_default_catalog_has_at_least_five_invariants():
    registry = default_invariants()
    assert len(registry) >= 5
    assert len(registry.select(ALWAYS)) >= 4
    assert len(registry.select(QUIESCENT)) >= 2


def test_registry_rejects_duplicate_names():
    registry = default_invariants()
    with pytest.raises(ValueError):
        registry.register(Invariant("single-primary", "dup", lambda e: []))


def test_healthy_platform_passes_every_invariant(env):
    checker = InvariantChecker(env)
    found = checker.check_now(mode=None)
    assert found == []
    assert checker.ok


def test_periodic_checker_runs_on_the_loop(env):
    checker = InvariantChecker(env)
    checker.arm(interval=0.5)
    env.run_for(5.0)
    checker.stop()
    assert checker.checks_run >= 9
    assert checker.ok
    env.run_for(5.0)
    runs = checker.checks_run
    env.run_for(5.0)
    assert checker.checks_run == runs, "stop() must cancel the timer"


def test_single_primary_detects_duplicate_instance(env):
    host = env.locate("acme")
    other = [
        n.node_id for n in env.cluster.alive_nodes() if n.node_id != host
    ][0]
    # Deploy a second copy behind the platform's back.
    duplicate = env.cluster.node(other).deploy_instance("acme")
    env.cluster.run_until_settled([duplicate])
    checker = InvariantChecker(env)
    found = checker.check_now(mode=QUIESCENT)
    assert any(v.invariant == "single-primary" for v in found)


def test_committed_state_detects_vanished_state(env):
    checker = InvariantChecker(env)
    assert checker.check_now(mode=ALWAYS) == []  # memorise the commits
    env.cluster.store.delete_state("vosgi:acme")
    found = checker.check_now(mode=ALWAYS)
    assert any(
        v.invariant == "committed-state-durable" and "vosgi:acme" in v.detail
        for v in found
    )


def test_committed_state_detects_vanished_descriptor(env):
    checker = InvariantChecker(env)
    env.customers_directory.remove("globex")
    found = checker.check_now(mode=ALWAYS)
    assert any(
        v.invariant == "committed-state-durable" and "globex" in v.detail
        for v in found
    )


def test_ipvs_liveness_detects_zombie_real_server(env):
    from repro.ipvs.addressing import IpEndpoint

    endpoint = IpEndpoint("10.0.0.80", 80)
    env.expose_service("acme", endpoint, service_time=0.005)
    checker = InvariantChecker(env)
    assert checker.check_now(mode=ALWAYS) == []
    host = env.locate("acme")
    env.fail_node(host)
    # Sabotage: resurrect the dead node's real server entry by hand.
    env.director.mark_node(host, alive=True)
    found = checker.check_now(mode=ALWAYS)
    assert any(v.invariant == "ipvs-liveness" for v in found)


def test_sla_monotonic_detects_rewound_accounting(env):
    checker = InvariantChecker(env)
    assert checker.check_now(mode=ALWAYS) == []
    env.run_for(5.0)
    assert checker.check_now(mode=ALWAYS) == []
    # Rewind the observation window behind the tracker's back.
    timeline = env.sla_tracker._customers["acme"]
    timeline.observed_from = env.loop.clock.now + 100.0
    found = checker.check_now(mode=ALWAYS)
    assert any(v.invariant == "sla-monotonic" for v in found)


def test_view_agreement_detects_split_views(env):
    env.cluster.network.partition_nodes({"n1"}, {"n2", "n3"})
    env.run_for(10.0)  # both sides install disjoint views
    checker = InvariantChecker(env)
    found = checker.check_now(mode=QUIESCENT)
    assert any(v.invariant == "view-agreement" for v in found)
    # After heal + settle the probe/merge path reunites the group.
    env.cluster.network.heal()
    env.run_for(20.0)
    checker2 = InvariantChecker(env)
    assert checker2.check_now(mode=QUIESCENT) == []


def test_customers_placed_detects_lost_customer(env):
    name = "acme"
    host = env.locate(name)
    node = env.cluster.node(host)
    undeploy = node.undeploy_instance(name, wipe_state=True)
    env.cluster.run_until_settled([undeploy])
    # Also clear the descriptor so the recovery sweep will not redeploy it
    # before the check runs.
    registry = InvariantRegistry(
        [i for i in default_invariants() if i.name == "customers-placed"]
    )
    checker = InvariantChecker(env, registry)
    found = checker.check_now(mode=QUIESCENT)
    assert any(v.invariant == "customers-placed" for v in found)


def test_custom_invariant_participates(env):
    registry = default_invariants()
    registry.register(
        Invariant("always-fails", "test hook", lambda e: ["boom"], mode=ALWAYS)
    )
    checker = InvariantChecker(env, registry)
    found = checker.check_now(mode=ALWAYS)
    assert [v.detail for v in found if v.invariant == "always-fails"] == ["boom"]
