"""FaultSchedule: builders, seeded-random generation, serialization."""

import random

import pytest

from repro.faults.schedule import (
    CRASH,
    FAULT_KINDS,
    HEAL,
    PARTITION,
    REPAIR,
    FaultAction,
    FaultSchedule,
)
from repro.sim.rng import RngStreams


def test_actions_sort_by_time():
    schedule = (
        FaultSchedule().crash(5.0, "n2").heal(1.0).partition(3.0, ["n1"], ["n2"])
    )
    assert [a.kind for a in schedule] == ["heal", "partition", "crash"]


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultAction(1.0, "meteor-strike")


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        FaultAction(-0.5, CRASH)


def test_builder_is_persistent():
    base = FaultSchedule().crash(1.0, "n1")
    extended = base.repair(2.0, "n1")
    assert len(base) == 1
    assert len(extended) == 2


def test_action_args_are_sorted_and_accessible():
    action = FaultAction(1.0, "slow_node", (("node", "n1"), ("extra", 0.1), ("duration", 2.0)))
    assert action.args == (("duration", 2.0), ("extra", 0.1), ("node", "n1"))
    assert action.arg("node") == "n1"
    assert action.arg("missing", "dflt") == "dflt"


def test_random_schedule_same_seed_identical():
    a = FaultSchedule.random(random.Random(99), 60.0, ["n1", "n2", "n3"])
    b = FaultSchedule.random(random.Random(99), 60.0, ["n1", "n2", "n3"])
    assert a == b
    assert a.to_dicts() == b.to_dicts()


def test_random_schedule_different_seed_differs():
    a = FaultSchedule.random(random.Random(1), 120.0, ["n1", "n2", "n3"])
    b = FaultSchedule.random(random.Random(2), 120.0, ["n1", "n2", "n3"])
    assert a != b


def test_random_schedule_from_rng_stream_is_stable():
    a = FaultSchedule.random(RngStreams(7).stream("faults"), 60.0, ["n1", "n2"])
    b = FaultSchedule.random(RngStreams(7).stream("faults"), 60.0, ["n1", "n2"])
    assert a == b


def test_random_schedule_keeps_a_survivor():
    """At no point may the schedule hold every node down at once."""
    for seed in range(20):
        schedule = FaultSchedule.random(
            random.Random(seed), 200.0, ["n1", "n2", "n3"], mean_gap=2.0
        )
        down = set()
        for action in schedule:
            if action.kind == CRASH:
                down.add(action.arg("node"))
            elif action.kind == REPAIR:
                down.discard(action.arg("node"))
            assert len(down) <= 2, "all nodes down at %s" % action


def test_random_schedule_respects_kind_restriction():
    schedule = FaultSchedule.random(
        random.Random(3), 200.0, ["n1", "n2"], kinds=[CRASH, REPAIR], mean_gap=2.0
    )
    assert schedule, "expected some actions"
    assert {a.kind for a in schedule} <= {CRASH, REPAIR}


def test_random_schedule_partition_heal_pairing():
    """Never two partitions without a heal in between."""
    schedule = FaultSchedule.random(
        random.Random(11), 300.0, ["n1", "n2", "n3"], mean_gap=1.5
    )
    active = False
    for action in schedule:
        if action.kind == PARTITION:
            assert not active
            active = True
        elif action.kind == HEAL:
            assert active
            active = False


def test_round_trip_through_dicts():
    schedule = (
        FaultSchedule()
        .crash(1.0, "n1")
        .partition(2.0, ["n1", "n2"], ["n3"])
        .loss_burst(3.0, 0.2, 1.5)
        .slow_node(4.0, "n2", 0.05, 2.0)
        .clock_skew(5.0, "n3", 2.0, 1.0)
        .heal(6.0)
        .repair(7.0, "n1")
    )
    rebuilt = FaultSchedule.from_dicts(schedule.to_dicts())
    assert rebuilt == schedule


def test_snippet_is_executable_python():
    schedule = FaultSchedule().crash(1.0, "n1").partition(2.0, ["n1"], ["n2"])
    namespace = {"FaultSchedule": FaultSchedule}
    rebuilt = eval(schedule.to_snippet(), namespace)  # noqa: S307 - test-only
    assert rebuilt == schedule


def test_all_kinds_reachable_by_generator():
    seen = set()
    for seed in range(40):
        schedule = FaultSchedule.random(
            random.Random(seed), 300.0, ["n1", "n2", "n3"], mean_gap=1.0
        )
        seen |= {a.kind for a in schedule}
    assert seen == set(FAULT_KINDS)
