"""Seed-replay guard for the event-loop/network hot-path changes.

PR 1 promises that a chaos campaign is reproducible from its seed alone:
the fault trace is byte-identical run to run. The heap-compaction,
same-instant batching, and network delivery-coalescing optimisations
must not perturb that. The pinned digest below was captured on the
pre-optimisation linear implementation — if it ever changes, virtual
time ordering changed, which breaks every recorded reproduction snippet.
"""

from repro.faults import ChaosCampaign

CAMPAIGN_KWARGS = dict(
    seed=20260805, episodes=2, episode_duration=20.0, settle=5.0
)

# Captured at commit 8d08e47 (pre registry/eventloop optimisation).
PINNED_DIGEST = "2b0b96c9ad3b312b51dd0bac75842cb884f44281c3af668a9917373dbede0c21"


def test_fixed_seed_trace_matches_pre_optimisation_digest():
    result = ChaosCampaign(**CAMPAIGN_KWARGS).run()
    assert result.trace_digest() == PINNED_DIGEST


def test_replay_is_byte_identical():
    first = ChaosCampaign(**CAMPAIGN_KWARGS).run()
    second = ChaosCampaign(**CAMPAIGN_KWARGS).run()
    assert first.trace_digest() == second.trace_digest()
    for a, b in zip(first.episodes, second.episodes):
        assert a.trace.text() == b.trace.text()
