"""Adaptive (accrual-style) failure detection."""

import pytest

from repro.gcs.directory import GroupDirectory
from repro.gcs.member import GroupMember
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def build_pair(loss=0.0, seed=9, adaptive=True, fd_timeout=2.0):
    loop = EventLoop()
    network = Network(loop, RngStreams(seed), loss_rate=loss)
    directory = GroupDirectory()
    members = []
    for name in ("n1", "n2"):
        member = GroupMember(
            name,
            "g",
            loop,
            network,
            directory,
            hb_interval=0.1,
            fd_timeout=fd_timeout,
            adaptive_fd=adaptive,
        )
        member.join()
        loop.run_for(0.5)
        members.append(member)
    loop.run_for(1.0)
    return loop, members


def test_adaptive_timeout_converges_near_interval_on_clean_network():
    loop, (m1, m2) = build_pair(loss=0.0)
    loop.run_for(20.0)
    timeout = m1._timeout_for(m2.endpoint_name)
    # Clean links: mean ~0.1 -> factor x mean ~0.6, well under the 2 s cap.
    assert 0.2 <= timeout <= 0.75


def test_adaptive_timeout_widens_under_loss():
    loop, (m1, m2) = build_pair(loss=0.3, seed=5)
    loop.run_for(30.0)
    lossy_timeout = m1._timeout_for(m2.endpoint_name)
    loop2, (c1, c2) = build_pair(loss=0.0, seed=5)
    loop2.run_for(30.0)
    clean_timeout = c1._timeout_for(c2.endpoint_name)
    assert lossy_timeout > clean_timeout


def test_adaptive_never_exceeds_configured_ceiling():
    loop, (m1, m2) = build_pair(loss=0.45, seed=77, fd_timeout=1.5)
    loop.run_for(30.0)
    assert m1._timeout_for(m2.endpoint_name) <= 1.5


def test_adaptive_detects_real_crash_quickly_on_clean_network():
    loop, (m1, m2) = build_pair(loss=0.0)
    loop.run_for(20.0)
    crash_at = loop.clock.now
    m2.crash()
    loop.run_for(5.0)
    hits = [t - crash_at for t, who in m1.suspicions if t >= crash_at]
    assert hits
    # Adaptive detection on a clean link: well under the 2.0 s ceiling.
    assert min(hits) < 0.8


def test_adaptive_avoids_false_suspicions_under_loss():
    loop, (m1, m2) = build_pair(loss=0.25, seed=13)
    baseline = loop.clock.now
    loop.run_for(60.0)
    false_hits = [t for t, _ in m1.suspicions if t >= baseline]
    assert false_hits == []
    assert m1.view.size == 2


def test_fixed_mode_unaffected_by_statistics():
    loop, (m1, m2) = build_pair(loss=0.0, adaptive=False, fd_timeout=0.8)
    loop.run_for(10.0)
    assert m1._timeout_for(m2.endpoint_name) == 0.8
