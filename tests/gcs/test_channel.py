"""Reliable channel: at-least-once transport, exactly-once delivery."""

import pytest

from repro.gcs.channel import ReliableChannel
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def make_channel(loop, network, name, inbox):
    endpoint = network.attach(name, lambda m: channel.handle_raw(m))
    channel = ReliableChannel(
        name, endpoint, loop, lambda sender, body: inbox.append((sender, body))
    )
    return channel


def test_delivery_over_perfect_network(loop, network):
    inbox_a, inbox_b = [], []
    a = make_channel(loop, network, "a", inbox_a)
    b = make_channel(loop, network, "b", inbox_b)
    a.send("b", {"v": 1})
    loop.run_for(1.0)
    assert inbox_b == [("a", {"v": 1})]
    assert a.pending_count == 0  # acked


def test_delivery_despite_heavy_loss(loop):
    network = Network(loop, RngStreams(99), loss_rate=0.4)
    inbox_a, inbox_b = [], []
    a = make_channel(loop, network, "a", inbox_a)
    b = make_channel(loop, network, "b", inbox_b)
    for i in range(30):
        a.send("b", i)
    loop.run_for(30.0)
    assert sorted(body for _, body in inbox_b) == list(range(30))
    assert a.retransmits > 0


def test_duplicates_filtered(loop):
    # Loss of acks forces retransmission of already-delivered messages.
    network = Network(loop, RngStreams(5), loss_rate=0.3)
    inbox_a, inbox_b = [], []
    a = make_channel(loop, network, "a", inbox_a)
    b = make_channel(loop, network, "b", inbox_b)
    a.send("b", "once")
    loop.run_for(10.0)
    assert inbox_b.count(("a", "once")) == 1


def test_cancel_stops_retransmission(loop):
    network = Network(loop, RngStreams(1), loss_rate=0.99)  # almost all lost
    inbox = []
    a = make_channel(loop, network, "a", inbox)
    network.attach("void", lambda m: None)
    msg_id = a.send("void", "x")
    loop.run_for(0.2)
    a.cancel(msg_id)
    sent_after_cancel = a.sent
    loop.run_for(5.0)
    assert a.sent == sent_after_cancel


def test_cancel_to_destination(loop, network):
    inbox = []
    a = make_channel(loop, network, "a", inbox)
    # No endpoint "dead" attached: sends stay pending forever.
    a.send("dead", 1)
    a.send("dead", 2)
    a.send("other", 3)
    assert a.pending_count == 3
    a.cancel_to("dead")
    assert a.pending_count == 1


def test_close_cancels_everything(loop, network):
    inbox = []
    a = make_channel(loop, network, "a", inbox)
    a.send("nowhere", 1)
    a.close()
    assert a.pending_count == 0
    assert a.send("nowhere", 2) == -1


def test_gives_up_after_max_retries(loop, network):
    inbox = []
    a = make_channel(loop, network, "a", inbox)
    a.send("never-exists", "x")
    loop.run_for(60.0)
    assert a.pending_count == 0
    assert a.retransmits <= ReliableChannel.MAX_RETRIES


def test_non_channel_traffic_passed_over(loop, network):
    inbox = []
    a = make_channel(loop, network, "a", inbox)
    from repro.sim.network import Message

    assert a.handle_raw(Message("x", "a", {"other": 1}, 0.0)) is False
    assert a.handle_raw(Message("x", "a", "plain", 0.0)) is False
    assert inbox == []


def test_reincarnated_sender_not_deduplicated(loop, network):
    """Regression: a rebooted node's fresh channel reuses message ids; the
    receiver must not mistake them for its previous life's messages."""
    inbox_b = []
    b = make_channel(loop, network, "b", inbox_b)
    # First life of "a": sends ids 0 and 1.
    inbox_a1 = []
    a1 = make_channel(loop, network, "a", inbox_a1)
    a1.send("b", "life1-msg0")
    a1.send("b", "life1-msg1")
    loop.run_for(1.0)
    assert [m for _, m in inbox_b] == ["life1-msg0", "life1-msg1"]
    # Crash and reboot: new channel on the same endpoint name.
    a1.close()
    network.detach("a")
    inbox_a2 = []
    a2 = make_channel(loop, network, "a", inbox_a2)
    a2.send("b", "life2-msg0")  # same id 0 as life 1
    a2.send("b", "life2-msg1")
    loop.run_for(1.0)
    assert [m for _, m in inbox_b] == [
        "life1-msg0",
        "life1-msg1",
        "life2-msg0",
        "life2-msg1",
    ]


def test_stale_ack_from_previous_life_ignored(loop, network):
    """An ack produced for a previous incarnation's message id must not
    cancel the current incarnation's pending retransmission."""
    from repro.sim.network import Message

    inbox = []
    a = make_channel(loop, network, "a", inbox)
    network.attach("peer", lambda m: None)
    a.send("peer", "needs-retransmit")
    assert a.pending_count == 1
    # Forge an ack for id 0 of a *different* incarnation.
    a.handle_raw(
        Message("peer", "a", {"rc": {"kind": "ack", "id": 0, "inc": -999}}, 0.0)
    )
    assert a.pending_count == 1  # still pending
    # The genuine ack (same incarnation) does cancel it.
    a.handle_raw(
        Message(
            "peer",
            "a",
            {"rc": {"kind": "ack", "id": 0, "inc": a.incarnation}},
            0.0,
        )
    )
    assert a.pending_count == 0
