"""Property-based membership churn: views converge among survivors."""

from hypothesis import given, settings, strategies as st

from repro.gcs.directory import GroupDirectory
from repro.gcs.member import GroupMember
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams

# Each script step: (action, member_index). Actions keep at least one
# member alive by construction below.
actions = st.lists(
    st.tuples(st.sampled_from(["join", "leave", "crash"]), st.integers(0, 4)),
    min_size=1,
    max_size=10,
)


@settings(max_examples=20, deadline=None)
@given(script=actions, seed=st.integers(0, 10_000))
def test_views_converge_after_arbitrary_churn(script, seed):
    loop = EventLoop()
    network = Network(loop, RngStreams(seed), loss_rate=0.05)
    directory = GroupDirectory()
    members = {}
    next_id = 0

    def alive():
        return [m for m in members.values() if m.running]

    for action, index in script:
        if action == "join":
            name = "m%02d" % next_id
            next_id += 1
            member = GroupMember(name, "g", loop, network, directory)
            members[name] = member
            member.join()
        else:
            candidates = alive()
            if len(candidates) <= 1:
                continue  # keep at least one alive
            victim = candidates[index % len(candidates)]
            if action == "leave":
                victim.leave()
            else:
                victim.crash()
        loop.run_for(0.7)

    if not alive():
        member = GroupMember("mfinal", "g", loop, network, directory)
        members["mfinal"] = member
        member.join()

    # Let failure detection, merges and retransmissions settle.
    loop.run_for(20.0)

    survivors = alive()
    assert survivors, "at least one member must survive by construction"
    views = {m.view for m in survivors}
    assert len(views) == 1, "survivors disagree: %s" % views
    view = views.pop()
    assert set(view.members) == {m.endpoint_name for m in survivors}
    coordinators = [m for m in survivors if m.is_coordinator]
    assert len(coordinators) == 1
