"""Group discovery directory."""

from repro.gcs.directory import GroupDirectory


def test_register_and_lookup_sorted():
    directory = GroupDirectory()
    directory.register("g", "b")
    directory.register("g", "a")
    assert directory.lookup("g") == ["a", "b"]


def test_lookup_unknown_group_empty():
    assert GroupDirectory().lookup("ghost") == []


def test_deregister_removes_member():
    directory = GroupDirectory()
    directory.register("g", "a")
    directory.deregister("g", "a")
    assert directory.lookup("g") == []
    assert directory.groups() == []


def test_deregister_unknown_is_noop():
    GroupDirectory().deregister("g", "a")


def test_groups_enumerated():
    directory = GroupDirectory()
    directory.register("b-group", "x")
    directory.register("a-group", "x")
    assert directory.groups() == ["a-group", "b-group"]


def test_double_register_idempotent():
    directory = GroupDirectory()
    directory.register("g", "a")
    directory.register("g", "a")
    assert directory.lookup("g") == ["a"]
