"""jGCS facade: protocol, sessions, listener management."""

import pytest

from repro.gcs.directory import GroupDirectory
from repro.gcs.jgcs import ControlSession, DataSession, GroupConfiguration, Protocol


@pytest.fixture
def directory():
    return GroupDirectory()


def make_protocol(name, loop, network, directory):
    return Protocol(name, loop, network, directory)


def test_sessions_share_one_member_per_group(loop, network, directory):
    protocol = make_protocol("n1", loop, network, directory)
    config = GroupConfiguration("g")
    data = protocol.create_data_session(config)
    control = protocol.create_control_session(config)
    control.join()
    loop.run_for(0.5)
    assert control.joined
    data.multicast("hello")  # would raise if sessions used different members
    loop.run_for(0.5)
    assert data.delivered_count == 1


def test_distinct_groups_get_distinct_members(loop, network, directory):
    protocol = make_protocol("n1", loop, network, directory)
    c1 = protocol.create_control_session(GroupConfiguration("g1"))
    c2 = protocol.create_control_session(GroupConfiguration("g2"))
    c1.join()
    c2.join()
    loop.run_for(0.5)
    assert c1.current_view.members == ("gcs/g1/n1",)
    assert c2.current_view.members == ("gcs/g2/n1",)


def test_membership_listener_add_remove(loop, network, directory):
    protocol = make_protocol("n1", loop, network, directory)
    control = protocol.create_control_session(GroupConfiguration("g"))
    changes = []
    control.set_membership_listener(changes.append)
    control.join()
    loop.run_for(0.5)
    assert len(changes) == 1
    control.remove_membership_listener(changes.append)


def test_message_listener_add_remove(loop, network, directory):
    protocol = make_protocol("n1", loop, network, directory)
    config = GroupConfiguration("g")
    control = protocol.create_control_session(config)
    data = protocol.create_data_session(config)
    control.join()
    loop.run_for(0.5)
    seen = []
    listener = lambda s, m: seen.append(m)  # noqa: E731
    data.set_message_listener(listener)
    data.set_message_listener(listener)  # idempotent
    data.multicast("x")
    loop.run_for(0.5)
    assert seen == ["x"]
    data.remove_message_listener(listener)
    data.multicast("y")
    loop.run_for(0.5)
    assert seen == ["x"]


def test_local_id_and_coordinator_flags(loop, network, directory):
    p1 = make_protocol("n1", loop, network, directory)
    p2 = make_protocol("n2", loop, network, directory)
    config = GroupConfiguration("g")
    c1 = p1.create_control_session(config)
    c2 = p2.create_control_session(config)
    c1.join()
    loop.run_for(0.5)
    c2.join()
    loop.run_for(1.0)
    assert c1.local_id == "gcs/g/n1"
    assert c1.is_coordinator
    assert not c2.is_coordinator


def test_protocol_crash_stops_all_groups(loop, network, directory):
    p1 = make_protocol("n1", loop, network, directory)
    p2 = make_protocol("n2", loop, network, directory)
    config = GroupConfiguration("g", fd_timeout=0.5)
    c1 = p1.create_control_session(config)
    c2 = p2.create_control_session(config)
    c1.join()
    loop.run_for(0.5)
    c2.join()
    loop.run_for(1.0)
    p1.crash()
    loop.run_for(3.0)
    assert not c1.joined
    assert c2.current_view.members == ("gcs/g/n2",)
