"""Membership edge cases: join retries across partitions, leave races,
and reliable-channel corner paths (closed sends, stale-incarnation acks,
retry give-up) that the mainline suites don't reach.
"""

import pytest

from repro.gcs.channel import ReliableChannel
from repro.gcs.directory import GroupDirectory
from repro.gcs.member import GroupMember
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


@pytest.fixture
def directory():
    return GroupDirectory()


def make_member(name, loop, network, directory, **kwargs):
    return GroupMember(name, "g", loop, network, directory, **kwargs)


def form_group(loop, network, directory, names):
    members = []
    for name in names:
        member = make_member(name, loop, network, directory)
        members.append(member)
        member.join()
        loop.run_for(0.5)
    loop.run_for(1.0)
    return members


class TestJoinRetryDuringPartition:
    def test_joiner_keeps_retrying_and_is_admitted_after_heal(
        self, loop, network, directory
    ):
        members = form_group(loop, network, directory, ["n1", "n2"])
        network.partition({"gcs/g/n1", "gcs/g/n2"}, {"gcs/g/n3"})
        joiner = make_member("n3", loop, network, directory)
        joiner.join()
        loop.run_for(5.0)
        # The directory lists peers, so the joiner must NOT give up and
        # install a singleton view — it retries JOIN across the partition.
        assert joiner.view is None or not joiner.is_coordinator
        assert "gcs/g/n3" not in members[0].view.members
        network.heal()
        loop.run_for(5.0)
        assert members[0].view.members == ("gcs/g/n1", "gcs/g/n2", "gcs/g/n3")
        assert joiner.view == members[0].view

    def test_joiner_alone_after_peers_deregister_installs_singleton(
        self, loop, network, directory
    ):
        members = form_group(loop, network, directory, ["n1", "n2"])
        network.partition({"gcs/g/n1", "gcs/g/n2"}, {"gcs/g/n3"})
        joiner = make_member("n3", loop, network, directory)
        joiner.join()
        loop.run_for(1.0)
        # Both peers leave (deregistering) while still unreachable: the
        # next retry finds an empty directory and self-installs.
        for member in members:
            member.leave()
        loop.run_for(5.0)
        assert joiner.view is not None
        assert joiner.view.members == ("gcs/g/n3",)
        assert joiner.is_coordinator

    def test_leave_before_admission_stops_retries(
        self, loop, network, directory
    ):
        form_group(loop, network, directory, ["n1"])
        network.partition({"gcs/g/n1"}, {"gcs/g/n2"})
        joiner = make_member("n2", loop, network, directory)
        joiner.join()
        loop.run_for(1.0)
        joiner.leave()
        network.heal()
        loop.run_for(5.0)
        # The aborted join must leave no trace: not registered, no view.
        assert directory.lookup("g") == ["gcs/g/n1"]
        assert joiner.view is None


class TestLeaveDuringViewBroadcast:
    def test_member_leaves_while_join_view_is_in_flight(
        self, loop, network, directory
    ):
        members = form_group(loop, network, directory, ["n1", "n2"])
        joiner = make_member("n3", loop, network, directory)
        joiner.join()
        # No run_for: n2's LEAVE races the coordinator's VIEW broadcast
        # for n3's admission.
        members[1].leave()
        loop.run_for(10.0)
        survivors = [members[0], joiner]
        views = {m.view for m in survivors}
        assert len(views) == 1
        assert views.pop().members == ("gcs/g/n1", "gcs/g/n3")

    def test_coordinator_leaves_while_its_own_broadcast_is_in_flight(
        self, loop, network, directory
    ):
        members = form_group(loop, network, directory, ["n1", "n2", "n3"])
        joiner = make_member("n4", loop, network, directory)
        joiner.join()
        members[0].leave()  # coordinator departs mid-admission
        loop.run_for(15.0)
        survivors = [members[1], members[2], joiner]
        views = {m.view for m in survivors}
        assert len(views) == 1
        view = views.pop()
        assert "gcs/g/n1" not in view.members
        assert set(view.members) >= {"gcs/g/n2", "gcs/g/n3"}
        coordinators = [m for m in survivors if m.is_coordinator]
        assert len(coordinators) == 1

    def test_stale_directory_entry_is_harmless_to_joiners(
        self, loop, network, directory
    ):
        members = form_group(loop, network, directory, ["n1", "n2"])
        # A crash leaves the directory entry behind (no deregistration) —
        # the docstring's "stale entry is harmless" claim, tested.
        members[1].crash()
        assert "gcs/g/n2" in directory.lookup("g")
        loop.run_for(10.0)  # failure detection shrinks the view
        joiner = make_member("n3", loop, network, directory)
        joiner.join()
        loop.run_for(5.0)
        assert members[0].view.members == ("gcs/g/n1", "gcs/g/n3")
        assert joiner.view == members[0].view


class TestChannelEdges:
    def make_channel(self, loop, network, name, inbox):
        endpoint = network.attach(name, lambda m: channel.handle_raw(m))
        channel = ReliableChannel(
            name, endpoint, loop,
            lambda sender, body: inbox.append((sender, body)),
        )
        return channel

    def test_send_on_closed_channel_returns_sentinel(self, loop, network):
        channel = self.make_channel(loop, network, "a", [])
        channel.close()
        assert channel.send("b", "x") == -1
        assert channel.pending_count == 0

    def test_cancel_to_drops_only_that_destination(self, loop):
        network = Network(loop, RngStreams(1), loss_rate=0.99)
        channel = self.make_channel(loop, network, "a", [])
        network.attach("b", lambda m: None)
        network.attach("c", lambda m: None)
        channel.send("b", "x")
        channel.send("b", "y")
        keep = channel.send("c", "z")
        channel.cancel_to("b")
        assert channel.pending_count == 1
        assert keep in channel._pending

    def test_stale_incarnation_ack_is_ignored(self, loop):
        network = Network(loop, RngStreams(1), loss_rate=0.99)
        channel = self.make_channel(loop, network, "a", [])
        network.attach("b", lambda m: None)
        msg_id = channel.send("b", "x")
        channel._on_ack({"id": msg_id, "inc": channel.incarnation - 1})
        assert channel.pending_count == 1  # previous life's ack: ignored
        channel._on_ack({"id": msg_id, "inc": channel.incarnation})
        assert channel.pending_count == 0

    def test_retries_give_up_after_max_attempts(self, loop):
        network = Network(loop, RngStreams(1), loss_rate=0.0)
        channel = self.make_channel(loop, network, "a", [])
        channel.rto = 0.01
        # Destination never attached: every transmit is dropped silently.
        channel.send("ghost", "x")
        loop.run_for(ReliableChannel.MAX_RETRIES * 0.01 + 1.0)
        assert channel.pending_count == 0
        assert channel.retransmits == ReliableChannel.MAX_RETRIES - 1

    def test_non_channel_traffic_is_not_consumed(self, loop, network):
        inbox = []
        channel = self.make_channel(loop, network, "a", inbox)

        class FakeMessage:
            source = "b"
            payload = {"other": 1}

        assert channel.handle_raw(FakeMessage()) is False
        assert inbox == []
