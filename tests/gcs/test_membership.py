"""Membership: joins, graceful leaves, crashes, coordinator succession."""

import pytest

from repro.gcs.directory import GroupDirectory
from repro.gcs.member import GroupMember
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


@pytest.fixture
def directory():
    return GroupDirectory()


def make_member(name, loop, network, directory, **kwargs):
    return GroupMember(name, "g", loop, network, directory, **kwargs)


def converge(loop, duration=2.0):
    loop.run_for(duration)


def test_first_member_installs_singleton_view(loop, network, directory):
    m = make_member("n1", loop, network, directory)
    m.join()
    assert m.view is not None
    assert m.view.members == ("gcs/g/n1",)
    assert m.is_coordinator


def test_three_members_converge_to_same_view(loop, network, directory):
    members = [make_member("n%d" % i, loop, network, directory) for i in (1, 2, 3)]
    for m in members:
        m.join()
        converge(loop, 0.5)
    views = {m.view for m in members}
    assert len(views) == 1
    assert members[0].view.size == 3


def test_coordinator_is_lowest_endpoint(loop, network, directory):
    members = [make_member("n%d" % i, loop, network, directory) for i in (2, 1, 3)]
    for m in members:
        m.join()
        converge(loop, 0.5)
    coordinators = [m.is_coordinator for m in sorted(members, key=lambda x: x.node_id)]
    assert coordinators == [True, False, False]


def test_graceful_leave_shrinks_view(loop, network, directory):
    m1 = make_member("n1", loop, network, directory)
    m2 = make_member("n2", loop, network, directory)
    m1.join()
    converge(loop, 0.5)
    m2.join()
    converge(loop, 0.5)
    m2.leave()
    converge(loop, 2.0)
    assert m1.view.members == ("gcs/g/n1",)
    # graceful departure: no suspicion recorded at the survivor
    assert m1.suspicions == []


def test_leaving_coordinator_hands_over(loop, network, directory):
    m1 = make_member("n1", loop, network, directory)
    m2 = make_member("n2", loop, network, directory)
    m1.join()
    converge(loop, 0.5)
    m2.join()
    converge(loop, 0.5)
    m1.leave()  # n1 is the coordinator
    converge(loop, 2.0)
    assert m2.view.members == ("gcs/g/n2",)
    assert m2.is_coordinator


def test_crash_detected_and_view_shrinks(loop, network, directory):
    members = [make_member("n%d" % i, loop, network, directory) for i in (1, 2, 3)]
    for m in members:
        m.join()
        converge(loop, 0.5)
    members[2].crash()
    converge(loop, 3.0)
    assert members[0].view.members == ("gcs/g/n1", "gcs/g/n2")
    assert members[1].view.members == ("gcs/g/n1", "gcs/g/n2")
    assert any(s[1] == "gcs/g/n3" for s in members[0].suspicions)


def test_coordinator_crash_successor_takes_over(loop, network, directory):
    members = [make_member("n%d" % i, loop, network, directory) for i in (1, 2, 3)]
    for m in members:
        m.join()
        converge(loop, 0.5)
    members[0].crash()
    converge(loop, 3.0)
    assert members[1].is_coordinator
    assert members[1].view.size == 2


def test_simultaneous_crashes_handled(loop, network, directory):
    members = [
        make_member("n%d" % i, loop, network, directory) for i in (1, 2, 3, 4, 5)
    ]
    for m in members:
        m.join()
        converge(loop, 0.5)
    members[0].crash()
    members[2].crash()
    converge(loop, 4.0)
    survivors = [members[1], members[3], members[4]]
    for m in survivors:
        assert m.view.members == ("gcs/g/n2", "gcs/g/n4", "gcs/g/n5")


def test_join_delivers_view_change_with_joined_set(loop, network, directory):
    m1 = make_member("n1", loop, network, directory)
    changes = []
    m1.view_listeners.append(changes.append)
    m1.join()
    converge(loop, 0.5)
    m2 = make_member("n2", loop, network, directory)
    m2.join()
    converge(loop, 1.0)
    assert changes[-1].joined == {"gcs/g/n2"}


def test_rejoin_after_leave(loop, network, directory):
    m1 = make_member("n1", loop, network, directory)
    m2 = make_member("n2", loop, network, directory)
    m1.join()
    converge(loop, 0.5)
    m2.join()
    converge(loop, 0.5)
    m2.leave()
    converge(loop, 2.0)
    m2b = make_member("n2b", loop, network, directory)
    m2b.join()
    converge(loop, 1.0)
    assert m1.view.size == 2
    assert m2b.view.size == 2


def test_convergence_under_loss(directory):
    loop = EventLoop()
    network = Network(loop, RngStreams(17), loss_rate=0.15)
    members = [make_member("n%d" % i, loop, network, directory) for i in (1, 2, 3)]
    for m in members:
        m.join()
        loop.run_for(1.0)
    loop.run_for(3.0)
    views = {m.view for m in members}
    assert len(views) == 1


def test_multicast_before_join_raises(loop, network, directory):
    m = make_member("n1", loop, network, directory)
    with pytest.raises(RuntimeError):
        m.multicast("too-early")


def test_partition_shrinks_both_sides(loop, network, directory):
    members = [make_member("n%d" % i, loop, network, directory) for i in (1, 2, 3)]
    for m in members:
        m.join()
        converge(loop, 0.5)
    network.partition(
        {"gcs/g/n1", "gcs/g/n2"},
        {"gcs/g/n3"},
    )
    converge(loop, 3.0)
    assert members[0].view.members == ("gcs/g/n1", "gcs/g/n2")
    assert members[2].view.members == ("gcs/g/n3",)
