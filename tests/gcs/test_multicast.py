"""FIFO and total-order multicast properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gcs.directory import GroupDirectory
from repro.gcs.member import GroupMember
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def build_group(n, seed=0, loss=0.0):
    loop = EventLoop()
    network = Network(loop, RngStreams(seed), loss_rate=loss)
    directory = GroupDirectory()
    members = []
    inboxes = []
    for i in range(1, n + 1):
        member = GroupMember("n%d" % i, "g", loop, network, directory)
        inbox = []
        member.message_listeners.append(
            lambda s, m, inbox=inbox: inbox.append((s, m))
        )
        members.append(member)
        inboxes.append(inbox)
        member.join()
        loop.run_for(0.5)
    loop.run_for(1.0)
    return loop, members, inboxes


class TestFifo:
    def test_all_members_deliver_including_sender(self):
        loop, members, inboxes = build_group(3)
        members[1].multicast({"x": 1})
        loop.run_for(1.0)
        for inbox in inboxes:
            assert ("gcs/g/n2", {"x": 1}) in inbox

    def test_sender_self_delivery_immediate(self):
        loop, members, inboxes = build_group(2)
        members[0].multicast("m")
        assert inboxes[0][-1] == ("gcs/g/n1", "m")

    def test_per_sender_order_preserved_under_loss(self):
        loop, members, inboxes = build_group(3, seed=11, loss=0.25)
        for i in range(20):
            members[0].multicast(i)
        loop.run_for(20.0)
        for inbox in inboxes:
            from_n1 = [m for s, m in inbox if s == "gcs/g/n1"]
            assert from_n1 == list(range(20))

    def test_interleaved_senders_keep_per_sender_order(self):
        loop, members, inboxes = build_group(3, seed=3, loss=0.1)
        for i in range(10):
            members[0].multicast(("a", i))
            members[1].multicast(("b", i))
        loop.run_for(20.0)
        for inbox in inboxes:
            a_messages = [m[1] for s, m in inbox if s == "gcs/g/n1"]
            b_messages = [m[1] for s, m in inbox if s == "gcs/g/n2"]
            assert a_messages == list(range(10))
            assert b_messages == list(range(10))

    def test_joiner_receives_subsequent_messages(self):
        loop, members, inboxes = build_group(2)
        members[0].multicast("before-join")
        loop.run_for(1.0)
        directory = members[0]._directory
        network = members[0]._network
        late = GroupMember("n9", "g", loop, network, directory)
        late_inbox = []
        late.message_listeners.append(lambda s, m: late_inbox.append(m))
        late.join()
        loop.run_for(1.5)
        members[0].multicast("after-join")
        loop.run_for(1.5)
        assert "after-join" in late_inbox
        assert "before-join" not in late_inbox


class TestTotalOrder:
    def test_all_members_agree_on_order(self):
        loop, members, inboxes = build_group(3, seed=7)
        for i in range(5):
            members[1].multicast(("b", i), total_order=True)
            members[2].multicast(("c", i), total_order=True)
        loop.run_for(5.0)
        sequences = [[m for _, m in inbox] for inbox in inboxes]
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) == 10

    def test_total_order_holds_under_loss(self):
        loop, members, inboxes = build_group(4, seed=23, loss=0.2)
        for i in range(8):
            members[i % 4].multicast(i, total_order=True)
        loop.run_for(30.0)
        sequences = [[m for _, m in inbox] for inbox in inboxes]
        assert all(seq == sequences[0] for seq in sequences)
        assert sorted(sequences[0]) == list(range(8))

    def test_order_survives_coordinator_failover_for_new_messages(self):
        loop, members, inboxes = build_group(3, seed=2)
        members[1].multicast("pre", total_order=True)
        loop.run_for(2.0)
        members[0].crash()  # the sequencer
        loop.run_for(3.0)
        members[1].multicast("post-1", total_order=True)
        members[2].multicast("post-2", total_order=True)
        loop.run_for(3.0)
        survivors = [inboxes[1], inboxes[2]]
        tails = [[m for _, m in inbox if str(m).startswith("post")] for inbox in survivors]
        assert tails[0] == tails[1]
        assert set(tails[0]) == {"post-1", "post-2"}

    def test_origin_attribution_correct(self):
        loop, members, inboxes = build_group(2)
        members[1].multicast("from-2", total_order=True)
        loop.run_for(2.0)
        assert ("gcs/g/n2", "from-2") in inboxes[0]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 1000),
    sender_script=st.lists(st.integers(0, 2), min_size=1, max_size=12),
)
def test_property_total_order_agreement(seed, sender_script):
    """Whatever the interleaving of senders, all members deliver the same
    sequence, containing every message exactly once."""
    loop, members, inboxes = build_group(3, seed=seed, loss=0.05)
    for i, sender in enumerate(sender_script):
        members[sender].multicast(i, total_order=True)
    loop.run_for(30.0)
    sequences = [[m for _, m in inbox] for inbox in inboxes]
    assert sequences[0] == sequences[1] == sequences[2]
    assert sorted(sequences[0]) == sorted(range(len(sender_script)))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000), count=st.integers(1, 15))
def test_property_fifo_no_loss_no_reorder(seed, count):
    loop, members, inboxes = build_group(2, seed=seed, loss=0.15)
    for i in range(count):
        members[0].multicast(i)
    loop.run_for(30.0)
    received = [m for s, m in inboxes[1] if s == "gcs/g/n1"]
    assert received == list(range(count))
