"""View and view-change value semantics."""

import pytest

from repro.gcs.view import View, ViewChange


def test_members_sorted_and_deduplicated_order():
    view = View(1, ("c", "a", "b"))
    assert view.members == ("a", "b", "c")


def test_coordinator_is_lowest_member():
    assert View(1, ("n2", "n1", "n3")).coordinator == "n1"


def test_empty_view_has_no_coordinator():
    with pytest.raises(ValueError):
        View(1, ()).coordinator


def test_contains_and_size():
    view = View(1, ("a", "b"))
    assert view.contains("a")
    assert not view.contains("z")
    assert view.size == 2


def test_without_increments_view_id():
    view = View(3, ("a", "b", "c"))
    shrunk = view.without("b")
    assert shrunk.view_id == 4
    assert shrunk.members == ("a", "c")


def test_with_member_adds_and_increments():
    view = View(3, ("a",))
    grown = view.with_member("b")
    assert grown.view_id == 4
    assert grown.members == ("a", "b")


def test_with_existing_member_is_identity():
    view = View(3, ("a", "b"))
    assert view.with_member("a") is view


def test_dict_roundtrip():
    view = View(7, ("x", "y"))
    assert View.from_dict(view.to_dict()) == view


def test_view_change_between():
    old = View(1, ("a", "b"))
    new = View(2, ("b", "c"))
    change = ViewChange.between(old, new)
    assert change.joined == {"c"}
    assert change.left == {"a"}


def test_view_change_from_nothing():
    change = ViewChange.between(None, View(1, ("a",)))
    assert change.joined == {"a"}
    assert change.left == frozenset()
