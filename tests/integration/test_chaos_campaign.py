"""End-to-end chaos: seeded campaigns against the full platform.

The quick campaign below is the acceptance gate for the fault-injection
engine: a crash+partition episode set against a 3-node cluster, with the
whole invariant catalog armed, must (a) find no violations and (b) be
byte-for-byte reproducible from its seed. The ``chaos``-marked campaign
at the bottom is the long nightly run.
"""

import pytest

from repro.faults import ChaosCampaign, default_invariants
from repro.faults.schedule import CRASH, HEAL, PARTITION, REPAIR


def crash_partition_campaign(seed: int, **overrides) -> ChaosCampaign:
    settings = dict(
        seed=seed,
        episodes=2,
        episode_duration=12.0,
        settle=8.0,
        check_interval=0.5,
        mean_gap=3.0,
        kinds=[CRASH, REPAIR, PARTITION, HEAL],
    )
    settings.update(overrides)
    return ChaosCampaign(**settings)


def test_crash_partition_campaign_holds_all_invariants():
    """≥5 invariants exercised over crash+partition chaos on 3 nodes."""
    result = crash_partition_campaign(seed=1).run()
    assert len(result.episodes) == 2
    for episode in result.episodes:
        assert len(episode.invariant_names) >= 5
        assert episode.checks_run >= 1
    # The platform survives the chaos: no invariant fires.
    assert result.ok, "\n".join(str(v) for v in result.violations)
    # The schedules actually contained chaos, not empty episodes.
    kinds = {a.kind for e in result.episodes for a in e.schedule}
    assert CRASH in kinds or PARTITION in kinds


def test_campaign_is_deterministic_end_to_end():
    """ChaosCampaign(seed=S) twice -> byte-identical traces and verdicts."""
    first = crash_partition_campaign(seed=42).run()
    second = crash_partition_campaign(seed=42).run()
    assert first.trace_digest() == second.trace_digest()
    for a, b in zip(first.episodes, second.episodes):
        assert a.trace.text() == b.trace.text()
        assert [str(v) for v in a.violations] == [str(v) for v in b.violations]


def test_all_fault_kinds_campaign_stays_clean():
    """Unrestricted kinds (loss bursts, slow nodes, clock skew too)."""
    result = ChaosCampaign(
        seed=3,
        episodes=1,
        episode_duration=15.0,
        settle=8.0,
        check_interval=0.5,
        mean_gap=2.5,
    ).run()
    assert result.ok, "\n".join(str(v) for v in result.violations)


def test_campaign_registers_the_default_catalog():
    names = set(default_invariants().names())
    assert {
        "single-primary",
        "committed-state-durable",
        "ipvs-liveness",
        "sla-monotonic",
        "view-agreement",
    } <= names


@pytest.mark.chaos
def test_nightly_chaos_campaign():
    """The long campaign: many episodes, every fault kind, tight checks.

    Excluded from the default run by the ``chaos`` marker (see
    pyproject.toml); CI runs it on the nightly schedule.
    """
    result = ChaosCampaign(
        seed=2026,
        episodes=10,
        episode_duration=60.0,
        settle=15.0,
        check_interval=0.5,
        mean_gap=3.0,
    ).run()
    assert result.ok, "\n\n".join(result.snippets) or "\n".join(
        str(v) for v in result.violations
    )
