"""The full elasticity loop: consolidate when idle, expand under pressure."""

import pytest

from repro.cluster.node import NodeState
from repro.core import DependableEnvironment
from repro.sla import ServiceLevelAgreement
from repro.workloads.burner import CpuBurner, burner_bundle, drive_burner


def build_env(seed=47):
    env = DependableEnvironment.build(
        node_count=3,
        seed=seed,
        enable_consolidation=True,
        enable_rebalance=False,
    )
    return env


def admit_with_burner(env, name, cpu_share=0.3):
    burner = CpuBurner(cpu_per_second=0.0)
    completion = env.admit_customer(
        ServiceLevelAgreement(name, cpu_share=cpu_share),
        bundles=[burner_bundle(burner)],
    )
    env.cluster.run_until_settled([completion])
    env.run_for(1.0)
    drive_burner(env.loop, burner, interval=1.0)
    return burner


def hibernated(env):
    return [
        n.node_id for n in env.cluster.nodes() if n.state == NodeState.HIBERNATED
    ]


def test_consolidate_then_expand_under_pressure():
    env = build_env()
    burners = [
        admit_with_burner(env, "c%d" % i, cpu_share=0.3) for i in range(3)
    ]
    # Phase 1: everyone idle -> consolidation packs and hibernates.
    env.run_for(40.0)
    assert len(hibernated(env)) >= 1
    packed = [n for n in env.cluster.alive_nodes() if n.instance_names()]
    assert len(packed) == 1

    # Phase 2: load ramps up -> the expansion policy wakes capacity.
    for burner in burners:
        burner.cpu_per_second = 0.28  # ~0.84 CPU on the packed node
    env.run_for(40.0)
    on_nodes = [
        n.node_id for n in env.cluster.nodes() if n.state == NodeState.ON
    ]
    assert len(on_nodes) >= 2, "expansion should have woken capacity: %s" % {
        n.node_id: n.state.value for n in env.cluster.nodes()
    }
    # The woken node rejoined the platform group.
    for node_id in on_nodes:
        assert env.migration[node_id].running


def test_wake_node_direct():
    env = build_env(seed=53)
    hibernation = env.cluster.node("n3").hibernate()
    env.cluster.run_until_settled([hibernation])
    env.migration["n3"].stop()
    wake = env.wake_node("n3")
    env.cluster.run_until_settled([wake], timeout=30)
    env.run_for(3.0)
    assert env.cluster.node("n3").state == NodeState.ON
    assert env.migration["n3"].running
    # It shows up in peers' inventories again.
    assert "n3" in env.migration["n1"].inventory.node_ids()


def test_wake_non_hibernated_fails_cleanly():
    env = build_env(seed=59)
    completion = env.wake_node("n1")
    assert completion.done and not completion.ok
