"""Failure injection at awkward moments: crashes during migrations."""

import pytest

from repro.cluster.cluster import Cluster
from repro.migration.module import MigrationModule
from repro.migration.registry import CustomerDescriptor, CustomerDirectory


def build_platform(node_count=3, seed=71):
    cluster = Cluster.build(node_count, seed=seed)
    modules = {}
    for node in cluster.nodes():
        module = MigrationModule(node)
        node.modules["migration"] = module
        module.start()
        modules[node.node_id] = module
    cluster.run_for(2.0)
    return cluster, modules


def admit(cluster, name, node_id, bundle_hint=3):
    CustomerDirectory(cluster.store).put(
        CustomerDescriptor(name=name, cpu_share=0.2, bundle_count_hint=bundle_hint)
    )
    deploy = cluster.node(node_id).deploy_instance(name)
    cluster.run_until_settled([deploy])
    cluster.run_for(1.5)
    return deploy.result()


def host_of(cluster, name):
    for node in cluster.alive_nodes():
        if name in node.instance_names():
            return node.node_id
    return None


def test_target_crashes_mid_migration_instance_recovered():
    """Source stopped the instance, target dies before deploying it: the
    recovery sweep must find and redeploy the orphan."""
    cluster, modules = build_platform()
    admit(cluster, "acme", "n1")
    migration = modules["n1"].migrate("acme", "n2")
    # Crash the target while the DEPLOY is still in flight / deploying.
    cluster.run_for(0.05)
    cluster.node("n2").fail()
    cluster.run_for(30.0)
    host = host_of(cluster, "acme")
    assert host in ("n1", "n3")


def test_source_crashes_mid_migration_no_double_instance():
    """Source dies right after issuing the migration: whatever happens,
    exactly one copy of the instance survives."""
    cluster, modules = build_platform()
    admit(cluster, "acme", "n1")
    modules["n1"].migrate("acme", "n2")
    cluster.run_for(0.05)
    cluster.node("n1").fail()
    cluster.run_for(30.0)
    hosts = [
        n.node_id for n in cluster.alive_nodes() if "acme" in n.instance_names()
    ]
    assert len(hosts) == 1


def test_crash_during_evacuation_survivors_finish_the_job():
    cluster, modules = build_platform(node_count=4)
    admit(cluster, "a", "n1")
    admit(cluster, "b", "n1")
    modules["n1"].evacuate()
    cluster.run_for(0.1)
    cluster.node("n1").fail()  # dies mid-evacuation
    cluster.run_for(30.0)
    for name in ("a", "b"):
        host = host_of(cluster, name)
        assert host in ("n2", "n3", "n4"), "%s lost" % name


def test_rapid_fail_reboot_cycles_do_not_lose_instances():
    cluster, modules = build_platform(node_count=3)
    admit(cluster, "acme", "n1")
    for _ in range(3):
        victim = host_of(cluster, "acme")
        cluster.node(victim).fail()
        cluster.run_for(6.0)
        boot = cluster.node(victim).boot()
        cluster.run_until_settled([boot])
        fresh = MigrationModule(cluster.node(victim))
        cluster.node(victim).modules["migration"] = fresh
        fresh.start()
        modules[victim] = fresh
        cluster.run_for(4.0)
    cluster.run_for(15.0)
    hosts = [
        n.node_id for n in cluster.alive_nodes() if "acme" in n.instance_names()
    ]
    assert len(hosts) == 1


def test_all_but_one_node_crash_simultaneously():
    cluster, modules = build_platform(node_count=4)
    admit(cluster, "a", "n1")
    admit(cluster, "b", "n2")
    admit(cluster, "c", "n3")
    cluster.node("n1").fail()
    cluster.node("n2").fail()
    cluster.node("n3").fail()
    cluster.run_for(30.0)
    survivor = cluster.node("n4")
    assert set(survivor.instance_names()) == {"a", "b", "c"}
