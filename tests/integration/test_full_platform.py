"""Whole-platform integration scenarios spanning every subsystem."""

import pytest

from repro.core import DependableEnvironment
from repro.ipvs.addressing import IpEndpoint
from repro.osgi.definition import BundleActivator, simple_bundle
from repro.sla.agreement import ServiceLevelAgreement


class CounterService(BundleActivator):
    """A stateful service persisting a counter to its SAN data area."""

    def start(self, context):
        self.context = context
        self.data = context.get_data_store()

    def stop(self, context):
        self.context = None

    def increment(self):
        self.data["count"] = self.data.get("count", 0) + 1
        return self.data["count"]


def admit(env, name, cpu_share=0.2, bundles=None, node_id=None):
    completion = env.admit_customer(
        ServiceLevelAgreement(name, cpu_share=cpu_share),
        bundles=bundles,
        node_id=node_id,
    )
    env.cluster.run_until_settled([completion])
    env.run_for(1.5)
    return completion.result()


def test_lifecycle_of_a_customer_through_failures_and_migrations():
    env = DependableEnvironment.build(node_count=4, seed=21)
    service = CounterService()
    admit(
        env,
        "acme",
        bundles=[simple_bundle("counter", activator_factory=lambda: service)],
        node_id="n1",
    )
    # Work on n1.
    live = env.instance_of("acme").get_bundle_by_name("counter")._activator
    assert live.increment() == 1

    # Planned migration to n2; state follows.
    migration = env.migrate_customer("acme", "n2")
    env.cluster.run_until_settled([migration], timeout=60)
    live = env.instance_of("acme").get_bundle_by_name("counter")._activator
    assert live.increment() == 2

    # n2 crashes; decentralized redeployment; state still follows.
    env.fail_node("n2")
    env.run_for(8.0)
    host = env.locate("acme")
    assert host in ("n1", "n3", "n4")
    live = env.instance_of("acme").get_bundle_by_name("counter")._activator
    assert live.increment() == 3


def test_graceful_degradation_cascading_failures():
    env = DependableEnvironment.build(node_count=4, seed=5)
    for i in range(4):
        admit(env, "c%d" % i, cpu_share=0.2)
    for victim in ("n1", "n2", "n3"):
        if env.cluster.node(victim).alive:
            env.fail_node(victim)
            env.run_for(8.0)
    survivor = env.cluster.alive_nodes()
    assert len(survivor) == 1
    # every customer still runs, all packed on the survivor
    assert set(survivor[0].instance_names()) == {"c0", "c1", "c2", "c3"}
    # all reports show bounded downtime per failure
    for report in env.compliance():
        assert report.downtime < 15.0


def test_service_availability_through_failover_with_retrying_clients():
    from repro.migration.statefulness import RetryingClient

    env = DependableEnvironment.build(node_count=3, seed=13)
    admit(env, "shop", node_id="n1")
    vip = IpEndpoint("10.0.1.1", 443)
    env.expose_service("shop", vip, service_time=0.005)

    def send(request):
        routed = env.director.submit(vip)
        env.run_for(0.05)
        return routed.ok

    client = RetryingClient(send)
    for i in range(5):
        client.issue(i)
    assert client.pending == []

    env.fail_node("n1")
    during_failover = client.issue("during")
    env.run_for(8.0)  # redeployment completes, director re-pointed
    client.retry_pending()
    assert during_failover.completed
    assert during_failover.attempts >= 2


def test_sla_enforcement_protects_neighbours():
    env = DependableEnvironment.build(node_count=2, seed=33, sla_action="migrate")
    hog = admit(env, "hog", cpu_share=0.2, node_id="n1")
    admit(env, "quiet", cpu_share=0.2, node_id="n1")

    from tests.conftest import RecordingActivator

    activator = RecordingActivator()
    hog.install(simple_bundle("burner", activator_factory=lambda: activator)).start()

    def burn():
        if activator.context is not None:
            try:
                activator.context.account(cpu=0.7)
            except Exception:
                return
        env.loop.call_after(1.0, burn)

    env.loop.call_after(1.0, burn)
    env.run_for(15.0)
    # the autonomic module moved the hog off n1, leaving quiet alone
    assert env.locate("quiet") == "n1"
    assert env.locate("hog") == "n2"
    hog_report = env.sla_tracker.report("hog", env.loop.clock.now)
    assert hog_report.cpu_violations > 0  # tracker observed the overuse
    quiet_report = env.sla_tracker.report("quiet", env.loop.clock.now)
    assert quiet_report.cpu_violations == 0


def test_unplaceable_customer_reported_not_silently_lost():
    env = DependableEnvironment.build(node_count=2, seed=3)
    admit(env, "big-a", cpu_share=0.9, node_id="n1")
    admit(env, "big-b", cpu_share=0.9, node_id="n2")
    env.fail_node("n2")
    env.run_for(8.0)
    # no survivor has capacity for big-b (0.9 + 0.9 > 1.0)
    assert env.locate("big-b") is None
    migration = env.cluster.node("n1").modules["migration"]
    assert "big-b" in migration.unplaced


def test_two_environments_are_deterministic():
    def run():
        env = DependableEnvironment.build(node_count=3, seed=77)
        admit(env, "acme")
        env.fail_node(env.locate("acme"))
        env.run_for(10.0)
        report = env.compliance()[0]
        return (env.locate("acme"), round(report.downtime, 9))

    assert run() == run()
