"""Network partitions: split views, healing, duplicate resolution."""

import pytest

from repro.cluster.cluster import Cluster
from repro.migration.module import MigrationModule, PLATFORM_GROUP
from repro.migration.registry import CustomerDescriptor, CustomerDirectory


def gcs_endpoint(node_id):
    return "gcs/%s/%s" % (PLATFORM_GROUP, node_id)


def build_platform(node_count=4, seed=19):
    cluster = Cluster.build(node_count, seed=seed)
    modules = {}
    for node in cluster.nodes():
        module = MigrationModule(node)
        node.modules["migration"] = module
        module.start()
        modules[node.node_id] = module
    cluster.run_for(2.0)
    return cluster, modules


def partition(cluster, side_a, side_b):
    groups = (
        {gcs_endpoint(n) for n in side_a},
        {gcs_endpoint(n) for n in side_b},
    )
    cluster.network.partition(*groups)


def test_partition_splits_views_and_heal_merges():
    cluster, modules = build_platform()
    partition(cluster, ("n1", "n2"), ("n3", "n4"))
    cluster.run_for(5.0)
    assert modules["n1"].control.current_view.size == 2
    assert modules["n3"].control.current_view.size == 2

    cluster.network.heal()
    cluster.run_for(8.0)
    views = {m.control.current_view for m in modules.values()}
    assert len(views) == 1
    assert list(views)[0].size == 4


def test_partition_both_sides_redeploy_then_merge_dedups():
    """The classic split-brain: both sides think the other died, both
    redeploy the customer; after healing exactly one copy survives."""
    cluster, modules = build_platform()
    CustomerDirectory(cluster.store).put(
        CustomerDescriptor(name="acme", cpu_share=0.2)
    )
    deploy = cluster.node("n1").deploy_instance("acme")
    cluster.run_until_settled([deploy])
    cluster.run_for(2.0)

    # n1 (hosting acme) ends up alone; the majority side redeploys acme.
    partition(cluster, ("n1",), ("n2", "n3", "n4"))
    cluster.run_for(10.0)
    majority_hosts = [
        n.node_id
        for n in cluster.alive_nodes()
        if n.node_id != "n1" and "acme" in n.instance_names()
    ]
    assert len(majority_hosts) == 1  # majority side took over
    assert "acme" in cluster.node("n1").instance_names()  # split brain!

    cluster.network.heal()
    cluster.run_for(12.0)
    hosts = [
        n.node_id for n in cluster.alive_nodes() if "acme" in n.instance_names()
    ]
    assert len(hosts) == 1  # dedup rule resolved the brain split
    views = {m.control.current_view for m in modules.values()}
    assert len(views) == 1


def test_customer_keeps_running_inside_minority_partition():
    """Within its partition the customer's services never stopped — the
    SAN-based platform tolerates the split (no fencing is modelled)."""
    cluster, modules = build_platform()
    CustomerDirectory(cluster.store).put(CustomerDescriptor(name="acme"))
    deploy = cluster.node("n2").deploy_instance("acme")
    cluster.run_until_settled([deploy])
    cluster.run_for(2.0)
    partition(cluster, ("n2",), ("n1", "n3", "n4"))
    cluster.run_for(10.0)
    assert "acme" in cluster.node("n2").instance_names()
