"""``python -m repro rollout``: deterministic, self-digested verdicts.

The CLI is the reproduction surface: CI runs every scenario twice and
``cmp``'s the verdict files, so byte-stability *is* the contract.
"""

import json

import pytest

from repro.rollout.cli import SCENARIOS, rollout_main


def run(tmp_path, label, args):
    out = tmp_path / ("%s.json" % label)
    code = rollout_main(args + ["--out", str(out)])
    return code, out.read_bytes()


def test_scenarios_catalogue():
    assert sorted(SCENARIOS) == [
        "bad-release",
        "clean",
        "crash-canary",
        "crash-wave",
        "partition",
    ]


@pytest.mark.parametrize("scenario", ["clean", "crash-canary"])
def test_two_same_seed_runs_byte_identical(tmp_path, capsys, scenario):
    base = ["--seed", "3", "--scenario", scenario]
    code1, first = run(tmp_path, "first", base)
    code2, second = run(tmp_path, "second", base)
    assert code1 == 0 and code2 == 0
    assert first == second
    capsys.readouterr()


def test_verdict_document_shape(tmp_path, capsys):
    code, raw = run(tmp_path, "clean", ["--seed", "0"])
    assert code == 0
    document = json.loads(raw)
    assert document["tool"] == "repro.rollout"
    assert document["ok"] is True
    assert document["rollout"]["outcome"] == "completed"
    assert document["rollout"]["mixed_version"] is False
    assert document["requests"]["dropped_in_upgrade_windows"] == 0
    assert "rollout-no-dropped-request" in document["checkers"]
    assert "rollout-version-monotonic" in document["checkers"]
    # The digest is over the document minus itself — recomputable.
    body = dict(document)
    digest = body.pop("digest")
    import hashlib

    assert digest == hashlib.sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    capsys.readouterr()


def test_bad_release_rolls_back_and_still_passes(tmp_path, capsys):
    code, raw = run(
        tmp_path, "bad", ["--seed", "0", "--scenario", "bad-release"]
    )
    document = json.loads(raw)
    assert code == 0
    assert document["rollout"]["outcome"] == "rolled-back"
    assert "latency-p95" in document["rollout"]["reason"]
    assert document["ok"] is True
    capsys.readouterr()


def test_main_module_dispatch(capsys, tmp_path):
    from repro.__main__ import main

    out = tmp_path / "verdict.json"
    assert main(["rollout", "--seed", "1", "--out", str(out)]) == 0
    assert json.loads(out.read_bytes())["seed"] == 1
    capsys.readouterr()
