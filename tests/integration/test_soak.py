"""Soak test: sustained random failures against the platform invariants.

A bigger cluster, many customers, a seeded adversary failing and rebooting
nodes for a long virtual stretch. Invariants checked at the end:

* every active customer runs on exactly one alive node;
* per-customer downtime is bounded (no customer silently lost);
* no unresolved duplicate hosting.
"""

import pytest

from repro.core import DependableEnvironment
from repro.migration.module import MigrationModule
from repro.sim.rng import RngStreams
from repro.sla import ServiceLevelAgreement

NODES = 6
CUSTOMERS = 10
ROUNDS = 6


@pytest.mark.parametrize("seed", [1, 2026])
def test_soak_random_failures(seed):
    env = DependableEnvironment.build(
        node_count=NODES, seed=seed, enable_rebalance=False
    )
    rng = RngStreams(seed).stream("adversary")
    pending = [
        env.admit_customer(ServiceLevelAgreement("c%02d" % i, cpu_share=0.15))
        for i in range(CUSTOMERS)
    ]
    env.cluster.run_until_settled(pending)
    env.run_for(3.0)

    for _ in range(ROUNDS):
        alive = env.cluster.alive_nodes()
        if len(alive) > 2 and rng.random() < 0.8:
            victim = alive[rng.randrange(len(alive))]
            env.fail_node(victim.node_id)
        env.run_for(8.0 + rng.random() * 4.0)
        # Occasionally repair a failed node through the facade API.
        failed = [
            n
            for n in env.cluster.nodes()
            if n.state.value == "FAILED"
        ]
        if failed and rng.random() < 0.6:
            node = failed[rng.randrange(len(failed))]
            repair = env.repair_node(node.node_id)
            env.cluster.run_until_settled([repair])
            env.run_for(3.0)

    env.run_for(25.0)  # let recovery sweeps finish

    hosting = {}
    for node in env.cluster.alive_nodes():
        for name in node.instance_names():
            hosting.setdefault(name, []).append(node.node_id)

    # exactly-once hosting
    duplicates = {k: v for k, v in hosting.items() if len(v) > 1}
    assert not duplicates, "duplicate hosting: %s" % duplicates
    # nobody lost
    missing = [
        "c%02d" % i for i in range(CUSTOMERS) if "c%02d" % i not in hosting
    ]
    assert not missing, "customers lost: %s" % missing
    # availability stayed reasonable for everyone
    for report in env.compliance():
        assert report.availability > 0.5, report
