"""End-to-end tracing: one client request stream through ipvs, a node
crash, and a warm-standby failover must serialise as ONE connected trace."""

import pytest

from repro.telemetry import runtime
from repro.telemetry.cli import run_failover_scenario
from repro.telemetry.export import (
    connected_trace_ids,
    dump_chrome_json,
    trace_roots,
)


@pytest.fixture(scope="module")
def traced_run():
    env, telemetry = run_failover_scenario(seed=42)
    return env, telemetry, telemetry.export_spans()


def test_scenario_leaves_telemetry_deactivated(traced_run):
    assert runtime.ACTIVE is None


def test_single_connected_trace(traced_run):
    _, _, spans = traced_run
    trace_ids = {s["trace_id"] for s in spans}
    assert len(trace_ids) == 1
    assert connected_trace_ids(spans) == sorted(trace_ids)
    roots = trace_roots(spans)
    assert len(roots) == 1
    assert roots[0]["name"] == "scenario:failover"


def test_request_view_change_and_failover_spans_present(traced_run):
    _, _, spans = traced_run
    names = {s["name"] for s in spans}
    for required in (
        "ipvs.request",
        "ipvs.serve",
        "gcs.view_change",
        "standby.activate",
        "migration.failover",
    ):
        assert required in names, "missing %s in %s" % (required, sorted(names))


def test_failover_span_is_causally_linked_to_the_crash(traced_run):
    _, _, spans = traced_run
    (failover,) = [s for s in spans if s["name"] == "migration.failover"]
    assert failover["attributes"]["reason"] == "failure"
    assert failover["attributes"]["warm"] is True
    assert failover["attributes"]["ok"] is True
    (activation,) = [s for s in spans if s["name"] == "standby.activate"]
    assert activation["parent_id"] == failover["span_id"]
    assert activation["trace_id"] == failover["trace_id"]


def test_requests_survive_the_crash(traced_run):
    env, _, spans = traced_run
    requests = [s for s in spans if s["name"] == "ipvs.request"]
    assert len(requests) == 12
    victims = {s["attributes"].get("outcome") for s in requests}
    assert "ok" in victims


def test_metrics_capture_requests_and_failover_latency(traced_run):
    _, telemetry, _ = traced_run
    snap = telemetry.metrics.snapshot()
    assert snap["counters"]["ipvs.requests_total"] == 12.0
    failover = snap["histograms"]["migration.failover_seconds"]
    assert failover["count"] == 1
    assert failover["sum"] > 0.0


def test_same_seed_rerun_is_byte_identical(traced_run):
    _, _, spans = traced_run
    _, telemetry = run_failover_scenario(seed=42)
    meta = {"scenario": "failover", "seed": 42}
    assert dump_chrome_json(spans, meta) == dump_chrome_json(
        telemetry.export_spans(), meta
    )
