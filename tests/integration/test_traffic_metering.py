"""Traffic served through the director shows up in the customer's usage."""

import pytest

from repro.core import DependableEnvironment
from repro.ipvs.addressing import IpEndpoint
from repro.sla import ServiceLevelAgreement

VIP = IpEndpoint("10.7.7.7", 80)


@pytest.fixture
def env():
    e = DependableEnvironment.build(node_count=2, seed=31, enable_rebalance=False)
    completion = e.admit_customer(
        ServiceLevelAgreement("api", cpu_share=0.3), node_id="n1"
    )
    e.cluster.run_until_settled([completion])
    e.run_for(1.5)
    e.expose_service("api", VIP, service_time=0.01)
    return e


def offered(env, count, interval=0.05):
    done = []
    for _ in range(count):
        done.append(env.director.submit(VIP))
        env.run_for(interval)
    env.run_for(1.0)
    return done


def test_served_requests_charge_instance_cpu(env):
    offered(env, 20)
    usage = env.instance_of("api").usage()
    assert usage["cpu_seconds"] == pytest.approx(20 * 0.01)


def test_monitoring_sees_traffic_load(env):
    # 0.01s per request at 20 req/s => 0.2 CPU share.
    end = env.loop.clock.now + 5.0

    def submit():
        if env.loop.clock.now >= end:
            return
        env.director.submit(VIP)
        env.loop.call_after(0.05, submit)

    env.loop.call_after(0.05, submit)
    env.run_for(6.0)
    history = env.cluster.node("n1").monitoring.history("api")
    # Steady-state windows (the last one is partial: traffic stopped).
    steady = [r.cpu_share for r in history[-4:-1]]
    assert max(steady) == pytest.approx(0.2, abs=0.05)
    assert not any(r.cpu_violation for r in history)  # within 0.3 contract


def test_metering_follows_migration(env):
    migration = env.migrate_customer("api", "n2")
    env.cluster.run_until_settled([migration], timeout=60)
    offered(env, 10)
    usage = env.instance_of("api").usage()
    # Fresh instance on n2: only the post-migration traffic counts.
    assert usage["cpu_seconds"] == pytest.approx(10 * 0.01)
    served = env.director.per_node_served()
    assert served.get("n2", 0) == 10


def test_traffic_overload_triggers_sla_enforcement():
    env = DependableEnvironment.build(node_count=2, seed=37, sla_action="migrate")
    completion = env.admit_customer(
        ServiceLevelAgreement("api", cpu_share=0.1), node_id="n1"
    )
    env.cluster.run_until_settled([completion])
    env.run_for(1.5)
    env.expose_service("api", VIP, service_time=0.01)
    # 40 req/s x 0.01 s = 0.4 CPU share >> the 0.1 contract.
    end = env.loop.clock.now + 12.0

    def submit():
        if env.loop.clock.now >= end:
            return
        env.director.submit(VIP)
        env.loop.call_after(0.025, submit)

    env.loop.call_after(0.025, submit)
    env.run_for(15.0)
    # The autonomic module migrated the over-trafficked customer away.
    assert env.locate("api") == "n2"
    assert len(env.sla_tracker.violations("api")) > 0
