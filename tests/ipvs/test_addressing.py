"""Address registry and the Figure 5 unique-IP takeover."""

import pytest

from repro.ipvs.addressing import AddressRegistry, IpEndpoint, validate_ip


class TestValidation:
    def test_valid_addresses(self):
        for ip in ("0.0.0.0", "192.168.1.1", "255.255.255.255"):
            assert validate_ip(ip) == ip

    @pytest.mark.parametrize("bad", ["256.0.0.1", "1.2.3", "a.b.c.d", "", "1.2.3.4.5"])
    def test_invalid_addresses(self, bad):
        with pytest.raises(ValueError):
            validate_ip(bad)

    def test_endpoint_validation(self):
        endpoint = IpEndpoint("10.0.0.1", 8080)
        assert str(endpoint) == "10.0.0.1:8080"
        with pytest.raises(ValueError):
            IpEndpoint("10.0.0.1", 0)
        with pytest.raises(ValueError):
            IpEndpoint("999.0.0.1", 80)


class TestRegistry:
    def test_bind_and_owner(self, loop):
        registry = AddressRegistry(loop)
        registry.bind("10.0.0.1", "n1")
        assert registry.owner("10.0.0.1") == "n1"

    def test_rebind_same_owner_idempotent(self, loop):
        registry = AddressRegistry(loop)
        registry.bind("10.0.0.1", "n1")
        registry.bind("10.0.0.1", "n1")

    def test_conflicting_bind_rejected(self, loop):
        registry = AddressRegistry(loop)
        registry.bind("10.0.0.1", "n1")
        with pytest.raises(ValueError):
            registry.bind("10.0.0.1", "n2")

    def test_release_requires_ownership(self, loop):
        registry = AddressRegistry(loop)
        registry.bind("10.0.0.1", "n1")
        with pytest.raises(ValueError):
            registry.release("10.0.0.1", "n2")
        registry.release("10.0.0.1", "n1")
        assert registry.owner("10.0.0.1") is None

    def test_addresses_of_node(self, loop):
        registry = AddressRegistry(loop)
        registry.bind("10.0.0.2", "n1")
        registry.bind("10.0.0.1", "n1")
        registry.bind("10.0.0.3", "n2")
        assert registry.addresses_of("n1") == ["10.0.0.1", "10.0.0.2"]


class TestMove:
    def test_move_has_a_dead_window(self, loop):
        registry = AddressRegistry(loop, takeover_seconds=0.5)
        registry.bind("10.0.0.1", "n1")
        completion = registry.move("10.0.0.1", "n1", "n2")
        assert registry.owner("10.0.0.1") is None  # the Figure 5 window
        loop.run_for(0.4)
        assert registry.owner("10.0.0.1") is None
        loop.run_for(0.2)
        assert registry.owner("10.0.0.1") == "n2"
        assert completion.ok

    def test_move_counts(self, loop):
        registry = AddressRegistry(loop, takeover_seconds=0.1)
        registry.bind("10.0.0.1", "n1")
        registry.move("10.0.0.1", "n1", "n2")
        loop.run_for(1.0)
        assert registry.moves == 1

    def test_move_requires_ownership(self, loop):
        registry = AddressRegistry(loop)
        registry.bind("10.0.0.1", "n1")
        with pytest.raises(ValueError):
            registry.move("10.0.0.1", "n2", "n3")


def test_drop_node_releases_all(loop):
    registry = AddressRegistry(loop)
    registry.bind("10.0.0.1", "n1")
    registry.bind("10.0.0.2", "n1")
    registry.bind("10.0.0.3", "n2")
    lost = registry.drop_node("n1")
    assert lost == ["10.0.0.1", "10.0.0.2"]
    assert registry.owner("10.0.0.3") == "n2"
