"""The bucketed least-connection scheduler must pick exactly like the
naive scan — same server, every time, under any workload history."""

from hypothesis import given, settings, strategies as st

from repro.ipvs.addressing import IpEndpoint
from repro.ipvs.schedulers import (
    BucketedLeastConnectionScheduler,
    LeastConnectionScheduler,
)
from repro.ipvs.server import RealServer, VirtualServer
from repro.sim.eventloop import EventLoop


def make_pool(n, queue_limit=4, service_time=0.01):
    return [
        RealServer("n%02d" % i, 80, service_time=service_time, queue_limit=queue_limit)
        for i in range(n)
    ]


def naive_expectation(servers):
    available = [s for s in servers if s.available]
    if not available:
        return None
    return min(available, key=lambda s: (s.active_connections, s.node_id))


def test_empty_pool():
    assert BucketedLeastConnectionScheduler().pick([]) is None


def test_picks_least_loaded_with_node_id_tie_break():
    loop = EventLoop()
    servers = make_pool(3)
    sched = BucketedLeastConnectionScheduler()
    # All idle: lowest node_id wins the tie.
    assert sched.pick(servers) is servers[0]
    servers[0].admit(_req(1), loop)
    assert sched.pick(servers) is servers[1]
    servers[1].admit(_req(2), loop)
    servers[2].admit(_req(3), loop)
    servers[2].admit(_req(4), loop)
    # counts: n00=1 n01=1 n02=2 -> n00 by tie-break
    assert sched.pick(servers) is servers[0]


def test_skips_dead_weightless_and_full():
    loop = EventLoop()
    servers = make_pool(4, queue_limit=1)
    sched = BucketedLeastConnectionScheduler()
    servers[0].alive = False
    servers[1].weight = 0
    servers[2].admit(_req(1), loop)  # at queue_limit -> unavailable
    assert sched.pick(servers) is servers[3]
    servers[3].admit(_req(2), loop)
    assert sched.pick(servers) is None


def test_counts_tracked_through_completions():
    loop = EventLoop()
    servers = make_pool(2, queue_limit=8)
    sched = BucketedLeastConnectionScheduler()
    sched.pick(servers)  # builds index + subscribes watchers
    for i in range(4):
        servers[0].admit(_req(i), loop)
    assert sched.pick(servers) is servers[1]
    loop.run_for(10.0)  # all completions fire; counts fall back to 0
    assert servers[0].active_connections == 0
    assert sched.pick(servers) is servers[0]


def test_resync_on_topology_change_via_director():
    loop = EventLoop()
    vip = IpEndpoint("10.0.0.1", 80)
    director = VirtualServer("d1", loop)
    director.add_service(vip, BucketedLeastConnectionScheduler())
    for i in range(3):
        director.add_real_server(vip, RealServer("n%02d" % i, 80))
    # Route a few requests, then change membership and route again.
    for i in range(3):
        director.route(_req(i, vip))
    director.remove_real_server(vip, "n00")
    request = _req(99, vip)
    director.route(request)
    assert request.dropped is None
    loop.run_for(1.0)
    assert request.served_by in ("n01", "n02")


def test_resync_on_list_identity_change():
    sched = BucketedLeastConnectionScheduler()
    pool_a = make_pool(2)
    assert sched.pick(pool_a) is pool_a[0]
    pool_b = make_pool(3)
    # Fresh list object: index must rebuild, not reuse pool_a's buckets.
    assert sched.pick(pool_b) is pool_b[0]


def _req(i, endpoint=None):
    from repro.ipvs.server import Request

    return Request(i, endpoint or IpEndpoint("10.0.0.1", 80), arrived_at=0.0)


# -- the property: bucketed == naive over arbitrary histories -------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["admit", "finish", "weight", "alive"]),
        st.integers(0, 7),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(script=ops, pool_size=st.integers(1, 8))
def test_bucketed_matches_naive_min_scan(script, pool_size):
    """Replay one op script against two identical pools; after every step
    the bucketed pick must equal the naive ``min()`` pick."""
    loop = EventLoop()
    servers = make_pool(pool_size, queue_limit=3, service_time=1.0)
    naive = LeastConnectionScheduler()
    bucketed = BucketedLeastConnectionScheduler()
    next_id = 0
    for action, index, value in script:
        server = servers[index % pool_size]
        if action == "admit":
            if server.active_connections < server.queue_limit + 2:
                next_id += 1
                server.admit(_req(next_id), loop)
        elif action == "finish":
            # Fire the next pending completion (if any) by advancing time.
            upcoming = loop.peek_next_time()
            if upcoming is not None:
                loop.run_until(upcoming)
        elif action == "weight":
            server.weight = value
        else:
            server.alive = bool(value % 2)
        expected = naive.pick(servers)
        got = bucketed.pick(servers)
        assert got is expected, (
            action,
            index,
            value,
            [(s.node_id, s.active_connections, s.alive, s.weight) for s in servers],
        )
