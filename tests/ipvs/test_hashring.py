"""Consistent-hash ring: deterministic, covering, and movement-minimal."""

from repro.ipvs.hashring import ConsistentHashRing, stable_hash


def build(n=4, vnodes=64):
    ring = ConsistentHashRing(vnodes=vnodes)
    for i in range(n):
        ring.add_shard("shard%d" % i)
    return ring


def test_stable_hash_is_process_independent():
    # Pinned values: the builtin str hash is salted per process, so the
    # ring must not drift between runs (affinity = determinism).
    assert stable_hash("shard0#0") == stable_hash("shard0#0")
    assert stable_hash("a") != stable_hash("b")


def test_lookup_deterministic_across_instances():
    a, b = build(), build()
    keys = ["c%06d" % i for i in range(2000)]
    assert [a.lookup(k) for k in keys] == [b.lookup(k) for k in keys]


def test_every_shard_gets_traffic():
    ring = build(n=5)
    owners = {ring.lookup("client-%d" % i) for i in range(5000)}
    assert owners == {"shard%d" % i for i in range(5)}


def test_balance_is_reasonable():
    ring = build(n=4)
    counts = {}
    for i in range(20000):
        owner = ring.lookup("c%06d" % i)
        counts[owner] = counts.get(owner, 0) + 1
    # 64 vnodes won't be perfectly even, but no shard should starve or
    # absorb the majority.
    assert min(counts.values()) > 20000 * 0.10
    assert max(counts.values()) < 20000 * 0.45


def test_removal_only_moves_keys_of_removed_shard():
    ring = build(n=4)
    keys = ["k%05d" % i for i in range(3000)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove_shard("shard2")
    for key in keys:
        after = ring.lookup(key)
        if before[key] != "shard2":
            assert after == before[key], key
        else:
            assert after != "shard2", key


def test_addition_only_steals_keys():
    ring = build(n=3)
    keys = ["k%05d" % i for i in range(3000)]
    before = {k: ring.lookup(k) for k in keys}
    ring.add_shard("shard3")
    moved = 0
    for key in keys:
        after = ring.lookup(key)
        if after != before[key]:
            # A key only ever moves *to* the new shard.
            assert after == "shard3", key
            moved += 1
    assert 0 < moved < len(keys)


def test_shards_listing_sorted():
    ring = build(n=3)
    assert ring.shards() == ["shard0", "shard1", "shard2"]


def test_empty_ring_returns_none():
    ring = ConsistentHashRing()
    assert ring.lookup("anything") is None
