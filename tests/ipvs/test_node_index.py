"""Per-node indexes and counters replacing full-table scans."""

from repro.ipvs.addressing import IpEndpoint
from repro.ipvs.server import DirectorCluster, RealServer, VirtualServer
from repro.sim.eventloop import EventLoop


VIP_A = IpEndpoint("10.0.0.1", 80)
VIP_B = IpEndpoint("10.0.0.2", 80)


def make_director(loop):
    director = VirtualServer("d1", loop)
    director.add_service(VIP_A)
    director.add_service(VIP_B)
    # node "x" serves both services; node "y" only the first.
    director.add_real_server(VIP_A, RealServer("x", 80))
    director.add_real_server(VIP_B, RealServer("x", 80))
    director.add_real_server(VIP_A, RealServer("y", 80))
    return director


def test_mark_node_touches_every_service():
    loop = EventLoop()
    director = make_director(loop)
    assert director.mark_node("x", False) == 2
    assert [s.alive for _, s in director.all_real_servers()] == [
        False,
        True,
        False,
    ]
    assert director.mark_node("y", False) == 1
    assert director.mark_node("ghost", False) == 0


def test_set_node_weight_and_service_time():
    loop = EventLoop()
    director = make_director(loop)
    assert director.set_node_weight("x", 0) == 2
    assert director.set_node_service_time("x", 0.5) == 2
    for _, server in director.all_real_servers():
        if server.node_id == "x":
            assert server.weight == 0
            assert server.service_time == 0.5
        else:
            assert server.weight == 1


def test_node_active_connections_spans_services():
    loop = EventLoop()
    director = make_director(loop)
    for _ in range(3):
        director.route(_req(loop, VIP_A))
    for _ in range(2):
        director.route(_req(loop, VIP_B))
    assert director.node_active_connections("x") + director.node_active_connections(
        "y"
    ) == 5
    loop.run_for(5.0)
    assert director.node_active_connections("x") == 0
    assert director.node_active_connections("y") == 0


def test_index_follows_removal():
    loop = EventLoop()
    director = make_director(loop)
    assert director.remove_real_server(VIP_A, "x") == 1
    # x still serves VIP_B.
    assert director.mark_node("x", False) == 1
    assert director.remove_real_server(VIP_B, "x") == 1
    assert director.mark_node("x", True) == 0
    assert director.node_active_connections("x") == 0


def test_cluster_counter_tracks_all_replicas():
    loop = EventLoop()
    cluster = DirectorCluster(loop, replicas=2)
    cluster.add_service(VIP_A)
    cluster.add_real_server(VIP_A, "n1", service_time=0.01)
    cluster.add_real_server(VIP_A, "n2", service_time=0.01)
    for _ in range(4):
        cluster.submit(VIP_A)
    total = cluster.node_active_connections("n1") + cluster.node_active_connections(
        "n2"
    )
    assert total == 4
    # Counter equals the scan it replaced.
    for node in ("n1", "n2"):
        scan = sum(d.node_active_connections(node) for d in cluster.directors)
        assert cluster.node_active_connections(node) == scan
    loop.run_for(5.0)
    assert cluster.node_active_connections("n1") == 0
    assert cluster.node_active_connections("n2") == 0


def test_drain_wait_undrain_cycle():
    loop = EventLoop()
    cluster = DirectorCluster(loop, replicas=2)
    cluster.add_service(VIP_A)
    cluster.add_real_server(VIP_A, "n1", weight=3, service_time=0.05)
    cluster.add_real_server(VIP_A, "n2", service_time=0.05)
    for _ in range(6):
        cluster.submit(VIP_A)
    cluster.drain_node("n1")
    assert cluster.is_draining("n1")
    active_before = cluster.node_active_connections("n1")
    assert active_before > 0
    loop.run_for(2.0)
    assert cluster.node_active_connections("n1") == 0
    cluster.undrain_node("n1")
    for _, server in cluster.all_real_servers():
        if server.node_id == "n1":
            assert server.weight == 3


def _req(loop, endpoint):
    from repro.ipvs.server import Request

    _req.counter = getattr(_req, "counter", 0) + 1
    return Request(_req.counter, endpoint, arrived_at=loop.clock.now)
