"""ipvs persistence (sticky sessions) — the LVS ``-p`` analogue."""

import pytest

from repro.ipvs.addressing import IpEndpoint
from repro.ipvs.server import DirectorCluster

VIP = IpEndpoint("10.9.9.9", 443)


@pytest.fixture
def directors(loop):
    cluster = DirectorCluster(loop, replicas=1)
    cluster.add_service(VIP, persistence_seconds=10.0)
    cluster.add_real_server(VIP, "n1", service_time=0.001)
    cluster.add_real_server(VIP, "n2", service_time=0.001)
    return cluster


def drain(loop):
    loop.run_for(1.0)


def test_same_client_sticks_to_one_server(loop, directors):
    served = set()
    for _ in range(10):
        request = directors.submit(VIP, client="alice")
        drain(loop)
        served.add(request.served_by)
    assert len(served) == 1


def test_different_clients_are_balanced(loop, directors):
    servers = []
    for i in range(10):
        request = directors.submit(VIP, client="client-%d" % i)
        drain(loop)
        servers.append(request.served_by)
    assert set(servers) == {"n1", "n2"}


def test_affinity_expires_after_window(loop, directors):
    first = directors.submit(VIP, client="alice")
    drain(loop)
    # Exhaust the window; next request may re-balance (rr moves on).
    loop.run_for(11.0)
    second = directors.submit(VIP, client="alice")
    drain(loop)
    assert second.served_by != first.served_by  # rr advanced meanwhile


def test_anonymous_clients_never_pinned(loop, directors):
    served = set()
    for _ in range(4):
        request = directors.submit(VIP)
        drain(loop)
        served.add(request.served_by)
    assert served == {"n1", "n2"}


def test_pinned_server_death_falls_back_and_repins(loop, directors):
    first = directors.submit(VIP, client="alice")
    drain(loop)
    pinned = first.served_by
    directors.mark_node(pinned, False)
    second = directors.submit(VIP, client="alice")
    drain(loop)
    other = "n2" if pinned == "n1" else "n1"
    assert second.served_by == other
    # And the new affinity holds.
    third = directors.submit(VIP, client="alice")
    drain(loop)
    assert third.served_by == other


def test_non_persistent_service_ignores_client(loop):
    cluster = DirectorCluster(loop, replicas=1)
    cluster.add_service(VIP)  # no persistence
    cluster.add_real_server(VIP, "n1", service_time=0.001)
    cluster.add_real_server(VIP, "n2", service_time=0.001)
    served = []
    for _ in range(4):
        request = cluster.submit(VIP, client="alice")
        loop.run_for(1.0)
        served.append(request.served_by)
    assert set(served) == {"n1", "n2"}  # round robin, no pinning
