"""ipvs scheduling disciplines."""

import pytest

from repro.ipvs.schedulers import (
    LeastConnectionScheduler,
    RoundRobinScheduler,
    WeightedRoundRobinScheduler,
)
from repro.ipvs.server import RealServer


def servers(*specs):
    out = []
    for node, weight in specs:
        server = RealServer(node, 80, weight=weight)
        out.append(server)
    return out


class TestRoundRobin:
    def test_cycles_in_order(self):
        pool = servers(("a", 1), ("b", 1), ("c", 1))
        scheduler = RoundRobinScheduler()
        picks = [scheduler.pick(pool).node_id for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_skips_unavailable(self):
        pool = servers(("a", 1), ("b", 1))
        pool[0].alive = False
        scheduler = RoundRobinScheduler()
        assert scheduler.pick(pool).node_id == "b"

    def test_none_when_empty(self):
        assert RoundRobinScheduler().pick([]) is None
        pool = servers(("a", 1))
        pool[0].alive = False
        assert RoundRobinScheduler().pick(pool) is None


class TestWeightedRoundRobin:
    def test_weights_respected_proportionally(self):
        pool = servers(("heavy", 3), ("light", 1))
        scheduler = WeightedRoundRobinScheduler()
        picks = [scheduler.pick(pool).node_id for _ in range(40)]
        assert picks.count("heavy") == 30
        assert picks.count("light") == 10

    def test_interleaving_not_bursty(self):
        pool = servers(("a", 2), ("b", 1))
        scheduler = WeightedRoundRobinScheduler()
        picks = [scheduler.pick(pool).node_id for _ in range(6)]
        # LVS wrr interleaves: never three consecutive picks of 'a' in a
        # 2:1 schedule of length 3.
        assert picks.count("a") == 4
        for i in range(len(picks) - 2):
            assert picks[i : i + 3] != ["a", "a", "a"]

    def test_zero_weight_server_never_picked(self):
        pool = servers(("a", 0), ("b", 1))
        scheduler = WeightedRoundRobinScheduler()
        picks = {scheduler.pick(pool).node_id for _ in range(10)}
        assert picks == {"b"}

    def test_all_zero_weights_returns_none(self):
        pool = servers(("a", 0), ("b", 0))
        assert WeightedRoundRobinScheduler().pick(pool) is None


class TestLeastConnection:
    def test_picks_least_loaded(self):
        pool = servers(("a", 1), ("b", 1))
        pool[0].active_connections = 5
        pool[1].active_connections = 2
        assert LeastConnectionScheduler().pick(pool).node_id == "b"

    def test_tie_broken_by_node_id(self):
        pool = servers(("b", 1), ("a", 1))
        assert LeastConnectionScheduler().pick(pool).node_id == "a"

    def test_skips_dead(self):
        pool = servers(("a", 1), ("b", 1))
        pool[0].alive = False
        pool[0].active_connections = 0
        pool[1].active_connections = 10  # loaded but under the queue limit
        assert LeastConnectionScheduler().pick(pool).node_id == "b"


def test_real_server_queue_limit_gates_availability():
    server = RealServer("a", 80, queue_limit=2)
    assert server.available
    server.active_connections = 2
    assert not server.available


def test_real_server_validation():
    with pytest.raises(ValueError):
        RealServer("a", 80, weight=-1)
    with pytest.raises(ValueError):
        RealServer("a", 80, service_time=0)
