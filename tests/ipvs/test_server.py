"""Virtual server routing, queueing, and director failover."""

import pytest

from repro.ipvs.addressing import IpEndpoint
from repro.ipvs.schedulers import LeastConnectionScheduler
from repro.ipvs.server import DirectorCluster, RealServer, Request, VirtualServer

VIP = IpEndpoint("10.0.0.100", 80)


@pytest.fixture
def director(loop):
    d = VirtualServer("ipvs1", loop)
    d.add_service(VIP)
    return d


class TestVirtualServer:
    def test_route_to_real_server(self, loop, director):
        director.add_real_server(VIP, RealServer("n1", 80, service_time=0.01))
        request = Request(1, VIP, loop.clock.now)
        director.route(request)
        loop.run_for(1.0)
        assert request.ok
        assert request.served_by == "n1"
        assert request.latency == pytest.approx(0.01)

    def test_unknown_service_dropped(self, loop, director):
        request = Request(1, IpEndpoint("10.0.0.99", 80), loop.clock.now)
        director.route(request)
        assert request.dropped == "no-service"

    def test_no_real_server_dropped(self, loop, director):
        request = Request(1, VIP, loop.clock.now)
        director.route(request)
        assert request.dropped == "no-real-server"

    def test_dead_director_drops(self, loop, director):
        director.add_real_server(VIP, RealServer("n1", 80))
        director.alive = False
        request = Request(1, VIP, loop.clock.now)
        director.route(request)
        assert request.dropped == "director-down"

    def test_duplicate_service_rejected(self, director):
        with pytest.raises(ValueError):
            director.add_service(VIP)

    def test_real_server_for_unknown_service_rejected(self, director):
        with pytest.raises(ValueError):
            director.add_real_server(IpEndpoint("1.1.1.1", 1), RealServer("n1", 1))

    def test_queueing_adds_latency(self, loop, director):
        director.add_real_server(
            VIP, RealServer("n1", 80, service_time=0.1, queue_limit=10)
        )
        requests = []
        for i in range(3):
            request = Request(i, VIP, loop.clock.now)
            director.route(request)
            requests.append(request)
        loop.run_for(1.0)
        latencies = [r.latency for r in requests]
        assert latencies == pytest.approx([0.1, 0.2, 0.3])

    def test_queue_limit_rejects_overflow(self, loop, director):
        director.add_real_server(
            VIP, RealServer("n1", 80, service_time=1.0, queue_limit=2)
        )
        outcomes = []
        for i in range(4):
            request = Request(i, VIP, loop.clock.now)
            director.route(request)
            outcomes.append(request.dropped)
        assert outcomes.count("no-real-server") == 2

    def test_mark_node_flips_replicas(self, loop, director):
        director.add_real_server(VIP, RealServer("n1", 80))
        director.add_real_server(VIP, RealServer("n2", 80))
        assert director.mark_node("n1", False) == 1
        for i in range(4):
            request = Request(i, VIP, loop.clock.now)
            director.route(request)
        loop.run_for(1.0)
        assert all(
            r.node_id == "n2" or not r.alive for r in director.real_servers(VIP)
        )

    def test_remove_real_server(self, director):
        director.add_real_server(VIP, RealServer("n1", 80))
        assert director.remove_real_server(VIP, "n1") == 1
        assert director.real_servers(VIP) == []

    def test_server_death_mid_service_drops_request(self, loop, director):
        server = RealServer("n1", 80, service_time=0.5)
        director.add_real_server(VIP, server)
        request = Request(1, VIP, loop.clock.now)
        director.route(request)
        loop.run_for(0.1)
        server.alive = False
        loop.run_for(1.0)
        assert not request.ok
        assert request.dropped == "server-died"

    def test_custom_scheduler(self, loop):
        director = VirtualServer("d", loop)
        director.add_service(VIP, LeastConnectionScheduler())
        busy = RealServer("busy", 80)
        busy.active_connections = 3
        idle = RealServer("idle", 80)
        director.add_real_server(VIP, busy)
        director.add_real_server(VIP, idle)
        request = Request(1, VIP, loop.clock.now)
        director.route(request)
        loop.run_for(1.0)
        assert request.served_by == "idle"


class TestDirectorCluster:
    def test_config_fans_out_to_replicas(self, loop):
        cluster = DirectorCluster(loop, replicas=2)
        cluster.add_service(VIP)
        cluster.add_real_server(VIP, "n1")
        for director in cluster.directors:
            assert len(director.real_servers(VIP)) == 1

    def test_submit_routes_through_primary(self, loop):
        cluster = DirectorCluster(loop)
        cluster.add_service(VIP)
        cluster.add_real_server(VIP, "n1", service_time=0.01)
        request = cluster.submit(VIP)
        loop.run_for(1.0)
        assert request.ok
        assert cluster.directors[0].routed == 1
        assert cluster.directors[1].routed == 0

    def test_failover_window_then_standby_serves(self, loop):
        cluster = DirectorCluster(loop, failover_seconds=1.0)
        cluster.add_service(VIP)
        cluster.add_real_server(VIP, "n1", service_time=0.01)
        cluster.fail_primary()
        dropped = cluster.submit(VIP)
        assert dropped.dropped == "no-director"
        loop.run_for(1.1)
        served = cluster.submit(VIP)
        loop.run_for(1.0)
        assert served.ok
        assert cluster.directors[1].routed == 1

    def test_all_directors_dead_drops_everything(self, loop):
        cluster = DirectorCluster(loop, replicas=2, failover_seconds=0.1)
        cluster.add_service(VIP)
        cluster.add_real_server(VIP, "n1")
        cluster.fail_primary()
        loop.run_for(1.0)
        cluster.fail_primary()
        loop.run_for(1.0)
        request = cluster.submit(VIP)
        assert request.dropped == "no-director"

    def test_load_balanced_across_replicas(self, loop):
        cluster = DirectorCluster(loop)
        cluster.add_service(VIP)
        cluster.add_real_server(VIP, "n1", service_time=0.001)
        cluster.add_real_server(VIP, "n2", service_time=0.001)
        for _ in range(20):
            cluster.submit(VIP)
            loop.run_for(0.01)
        loop.run_for(1.0)
        served = cluster.per_node_served()
        assert served == {"n1": 10, "n2": 10}

    def test_stats_shape(self, loop):
        cluster = DirectorCluster(loop)
        cluster.add_service(VIP)
        cluster.add_real_server(VIP, "n1", service_time=0.01)
        cluster.submit(VIP)
        loop.run_for(1.0)
        stats = cluster.stats()
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["dropped"] == 0
        assert stats["mean_latency"] > 0

    def test_at_least_one_replica_required(self, loop):
        with pytest.raises(ValueError):
            DirectorCluster(loop, replicas=0)

    def test_watch_node_tracks_health(self, loop):
        from repro.cluster.cluster import Cluster

        node_cluster = Cluster.build(1, seed=1)
        node = node_cluster.node("n1")
        directors = DirectorCluster(node_cluster.loop)
        directors.add_service(VIP)
        directors.add_real_server(VIP, "n1", service_time=0.01)
        directors.watch_node(node)
        node.fail()
        request = directors.submit(VIP)
        assert request.dropped == "no-real-server"
