"""Permission implication semantics, with property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.isolation.permissions import (
    FilePermission,
    PackagePermission,
    Permission,
    ServicePermission,
    SocketPermission,
)


class TestFilePermission:
    def test_exact_match(self):
        grant = FilePermission("/data/file.txt", "read")
        assert grant.implies(FilePermission("/data/file.txt", "read"))

    def test_action_superset_required(self):
        grant = FilePermission("/f", "read")
        assert not grant.implies(FilePermission("/f", "read,write"))
        both = FilePermission("/f", "read,write")
        assert both.implies(FilePermission("/f", "read"))

    def test_star_covers_direct_children_only(self):
        grant = FilePermission("/data/*", "read")
        assert grant.implies(FilePermission("/data/a.txt", "read"))
        assert not grant.implies(FilePermission("/data/sub/a.txt", "read"))
        assert not grant.implies(FilePermission("/data", "read"))

    def test_dash_covers_whole_subtree(self):
        grant = FilePermission("/data/-", "write")
        assert grant.implies(FilePermission("/data/sub/deep/x", "write"))
        assert grant.implies(FilePermission("/data", "write"))
        assert not grant.implies(FilePermission("/other/x", "write"))

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FilePermission("/f", "fly")

    def test_actions_parse_from_list_or_string(self):
        assert FilePermission("/f", ["read", "write"]).actions == frozenset(
            {"read", "write"}
        )
        assert FilePermission("/f", "Read, WRITE").actions == frozenset(
            {"read", "write"}
        )

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            FilePermission("", "read")


class TestSocketPermission:
    def test_exact_host_port(self):
        grant = SocketPermission("10.0.0.1:8080", "connect")
        assert grant.implies(SocketPermission("10.0.0.1:8080", "connect"))
        assert not grant.implies(SocketPermission("10.0.0.1:8081", "connect"))

    def test_port_range(self):
        grant = SocketPermission("host:6000-7000", "bind")
        assert grant.implies(SocketPermission("host:6500", "bind"))
        assert not grant.implies(SocketPermission("host:7001", "bind"))

    def test_open_ended_ranges(self):
        low = SocketPermission("h:-1024", "connect")
        assert low.implies(SocketPermission("h:80", "connect"))
        assert not low.implies(SocketPermission("h:8080", "connect"))
        high = SocketPermission("h:1024-", "connect")
        assert high.implies(SocketPermission("h:60000", "connect"))

    def test_wildcard_host(self):
        grant = SocketPermission("*:80", "connect")
        assert grant.implies(SocketPermission("anything:80", "connect"))

    def test_suffix_wildcard_host(self):
        grant = SocketPermission("*.example.com:443", "connect")
        assert grant.implies(SocketPermission("api.example.com:443", "connect"))
        assert not grant.implies(SocketPermission("example.org:443", "connect"))

    def test_missing_port_means_all_ports(self):
        grant = SocketPermission("h", "bind")
        assert grant.implies(SocketPermission("h:1", "bind"))
        assert grant.implies(SocketPermission("h:65535", "bind"))

    def test_invalid_port_range_rejected(self):
        with pytest.raises(ValueError):
            SocketPermission("h:70000", "bind")
        with pytest.raises(ValueError):
            SocketPermission("h:500-100", "bind")


class TestNamePermissions:
    def test_service_wildcards(self):
        grant = ServicePermission("log.*", "get")
        assert grant.implies(ServicePermission("log.LogService", "get"))
        assert grant.implies(ServicePermission("log", "get"))
        assert not grant.implies(ServicePermission("http.HttpService", "get"))

    def test_star_matches_everything(self):
        grant = ServicePermission("*", "get,register")
        assert grant.implies(ServicePermission("anything.at.all", "get"))

    def test_package_import_export_actions(self):
        grant = PackagePermission("com.acme*", "import")
        assert grant.implies(PackagePermission("com.acme.util", "import"))
        assert not grant.implies(PackagePermission("com.acme.util", "export"))

    def test_cross_type_never_implies(self):
        assert not ServicePermission("x", "get").implies(
            PackagePermission("x", "import")
        )


@given(
    st.sampled_from(["/a", "/a/b", "/a/b/c", "/other"]),
    st.sampled_from(["read", "write", "read,write"]),
)
def test_implication_is_reflexive(path, actions):
    perm = FilePermission(path, actions)
    assert perm.implies(perm)


@given(
    st.sampled_from(["/a/-", "/a/*", "/a/b"]),
    st.sampled_from(["/a/-", "/a/*", "/a/b"]),
    st.sampled_from(["/a/b", "/a/b/c", "/a"]),
)
def test_implication_chains_are_consistent(g1, g2, request_path):
    """If g1 covers g2's literal target and g2 covers the request, and g2 is
    a literal (non-pattern) grant, then g1 must cover the request too."""
    if g2.endswith(("-", "*")):
        return
    a = FilePermission(g1, "read")
    b = FilePermission(g2, "read")
    c = FilePermission(request_path, "read")
    if a.implies(b) and b.implies(c):
        assert a.implies(c)


def test_equality_and_hash():
    a = FilePermission("/x", "read,write")
    b = FilePermission("/x", "write,read")
    assert a == b
    assert hash(a) == hash(b)
    assert a != FilePermission("/y", "read,write")
