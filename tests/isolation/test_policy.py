"""Security policy grants and the deny-by-default reference monitor."""

import pytest

from repro.isolation.permissions import FilePermission, ServicePermission
from repro.isolation.policy import Grant, SecurityManager, SecurityPolicy
from repro.osgi.errors import SecurityViolation


def test_deny_by_default():
    manager = SecurityManager()
    with pytest.raises(SecurityViolation):
        manager.check("acme", FilePermission("/data/x", "read"))


def test_grant_allows():
    policy = SecurityPolicy().grant("acme", FilePermission("/data/-", "read"))
    manager = SecurityManager(policy)
    manager.check("acme", FilePermission("/data/x", "read"))


def test_grant_is_per_principal():
    policy = SecurityPolicy().grant("acme", FilePermission("/data/-", "read"))
    manager = SecurityManager(policy)
    with pytest.raises(SecurityViolation):
        manager.check("globex", FilePermission("/data/x", "read"))


def test_wildcard_principal_applies_to_all():
    policy = SecurityPolicy().grant("*", ServicePermission("log.*", "get"))
    manager = SecurityManager(policy)
    manager.check("anyone", ServicePermission("log.LogService", "get"))


def test_grants_accumulate_for_same_principal():
    policy = SecurityPolicy()
    policy.grant("acme", FilePermission("/a", "read"))
    policy.grant("acme", FilePermission("/b", "read"))
    assert policy.implies("acme", FilePermission("/a", "read"))
    assert policy.implies("acme", FilePermission("/b", "read"))
    assert len(policy.grants_for("acme")) == 2


def test_revoke_removes_principal_grants():
    policy = SecurityPolicy().grant("acme", FilePermission("/a", "read"))
    policy.revoke("acme")
    assert not policy.implies("acme", FilePermission("/a", "read"))


def test_denials_audited():
    manager = SecurityManager()
    try:
        manager.check("acme", FilePermission("/x", "write"))
    except SecurityViolation:
        pass
    assert len(manager.denials) == 1
    principal, permission = manager.denials[0]
    assert principal == "acme"
    assert permission == FilePermission("/x", "write")


def test_allowed_is_non_raising_and_not_audited():
    manager = SecurityManager()
    assert manager.allowed("acme", FilePermission("/x", "read")) is False
    assert manager.denials == []


def test_checks_counted():
    policy = SecurityPolicy().grant("*", FilePermission("/x", "read"))
    manager = SecurityManager(policy)
    manager.check("a", FilePermission("/x", "read"))
    manager.allowed("b", FilePermission("/x", "read"))
    assert manager.checks == 2


def test_grant_constructed_directly():
    grant = Grant("acme", [FilePermission("/x", "read")])
    assert grant.covers("acme", FilePermission("/x", "read"))
    assert not grant.covers("acme", FilePermission("/y", "read"))
