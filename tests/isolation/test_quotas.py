"""Resource quota validation and checks."""

import pytest

from repro.isolation.quotas import QuotaExceeded, ResourceQuota


def test_defaults_are_sane():
    quota = ResourceQuota()
    assert quota.cpu_share == 1.0
    assert quota.memory_bytes > 0


@pytest.mark.parametrize("share", [0.0, -0.5, 1.5])
def test_invalid_cpu_share_rejected(share):
    with pytest.raises(ValueError):
        ResourceQuota(cpu_share=share)


def test_non_positive_memory_rejected():
    with pytest.raises(ValueError):
        ResourceQuota(memory_bytes=0)


def test_check_memory_within_limit_passes():
    ResourceQuota(memory_bytes=100).check_memory(100)


def test_check_memory_over_limit_raises_with_details():
    quota = ResourceQuota(memory_bytes=100)
    with pytest.raises(QuotaExceeded) as excinfo:
        quota.check_memory(150)
    assert excinfo.value.resource == "memory"
    assert excinfo.value.used == 150
    assert excinfo.value.limit == 100


def test_check_disk():
    quota = ResourceQuota(disk_bytes=10)
    quota.check_disk(10)
    with pytest.raises(QuotaExceeded):
        quota.check_disk(11)


def test_headroom_computation():
    quota = ResourceQuota(cpu_share=0.5, memory_bytes=1000, disk_bytes=2000)
    headroom = quota.headroom(
        {"cpu_share": 0.2, "memory_bytes": 400, "disk_bytes": 2500}
    )
    assert headroom["cpu"] == pytest.approx(0.3)
    assert headroom["memory"] == 600
    assert headroom["disk"] == -500


def test_quota_is_immutable():
    quota = ResourceQuota()
    with pytest.raises(Exception):
        quota.cpu_share = 0.5
