"""Cluster inventory soft state."""

from repro.migration.inventory import ClusterInventory, NodeInventory


def inv(node, at, instances=(), **resources):
    return NodeInventory(
        node_id=node,
        at=at,
        instances={name: {} for name in instances},
        resources=dict(resources),
    )


def test_update_and_query():
    inventory = ClusterInventory()
    inventory.update(inv("n1", 1.0, ["acme"]))
    assert inventory.instances_on("n1") == ["acme"]
    assert inventory.node_ids() == ["n1"]


def test_newer_update_wins():
    inventory = ClusterInventory()
    inventory.update(inv("n1", 1.0, ["old"]))
    inventory.update(inv("n1", 2.0, ["new"]))
    assert inventory.instances_on("n1") == ["new"]


def test_stale_update_ignored():
    inventory = ClusterInventory()
    inventory.update(inv("n1", 2.0, ["fresh"]))
    inventory.update(inv("n1", 1.0, ["stale"]))
    assert inventory.instances_on("n1") == ["fresh"]


def test_forget_returns_last_known():
    inventory = ClusterInventory()
    inventory.update(inv("n1", 1.0, ["acme"]))
    forgotten = inventory.forget("n1")
    assert forgotten.instance_names == ["acme"]
    assert inventory.node_ids() == []
    assert inventory.forget("n1") is None


def test_locate_prefers_freshest_report():
    inventory = ClusterInventory()
    inventory.update(inv("n1", 1.0, ["acme"]))
    inventory.update(inv("n2", 2.0, ["acme"]))  # moved
    assert inventory.locate("acme") == "n2"
    assert inventory.locate("ghost") is None


def test_total_instances():
    inventory = ClusterInventory()
    inventory.update(inv("n1", 1.0, ["a", "b"]))
    inventory.update(inv("n2", 1.0, ["c"]))
    assert inventory.total_instances() == 3


def test_dict_roundtrip():
    original = inv("n1", 3.5, ["a"], cpu_available_share=0.7)
    assert NodeInventory.from_dict(original.to_dict()).resources == {
        "cpu_available_share": 0.7
    }
