"""Live context migration: checkpoint/restore of running context."""

import pytest

from repro.migration.livemigration import (
    CHECKPOINT_KEY,
    CheckpointableActivator,
    ContextCheckpointer,
)
from repro.osgi.definition import simple_bundle
from repro.osgi.framework import Framework
from repro.sim.eventloop import EventLoop
from repro.storage.san import SharedStore
from repro.vosgi.instance import VirtualInstance


class CounterActivator(CheckpointableActivator):
    """A bundle whose running context is a counter."""

    def __init__(self):
        super().__init__()
        self.count = 0

    def snapshot(self):
        return {"count": self.count}

    def restore(self, snapshot):
        self.count = snapshot["count"]


def build_instance(store, host_name="host", node="n1"):
    host = Framework(host_name)
    host.start()
    instance = VirtualInstance(
        "acme",
        host,
        storage=store.mount(node).framework_storage(),
        repository=store,
    )
    instance.start()
    return host, instance


def test_checkpoint_writes_to_data_area():
    store = SharedStore()
    host, instance = build_instance(store)
    activator = CounterActivator()
    instance.install(
        simple_bundle("counter", activator_factory=lambda: activator)
    ).start()
    activator.count = 7
    assert activator.checkpoint()
    assert store.data_area("vosgi:acme", "counter")[CHECKPOINT_KEY] == {"count": 7}


def test_graceful_stop_checkpoints_implicitly():
    store = SharedStore()
    host, instance = build_instance(store)
    activator = CounterActivator()
    bundle = instance.install(
        simple_bundle("counter", activator_factory=lambda: activator)
    )
    bundle.start()
    activator.count = 3
    bundle.stop()
    assert store.data_area("vosgi:acme", "counter")[CHECKPOINT_KEY] == {"count": 3}


def test_redeployed_bundle_restores_context_on_other_node():
    store = SharedStore()
    host, instance = build_instance(store)
    instance.install(
        simple_bundle("counter", activator_factory=CounterActivator)
    ).start()
    bundle = instance.get_bundle_by_name("counter")
    bundle._activator.count = 42
    bundle._activator.checkpoint()
    # Crash: instance abandoned without stop; redeploy on another node. The
    # definition (with its activator factory) comes back from the SAN
    # repository, and the fresh activator restores from the checkpoint.
    host2, reborn = build_instance(store, "host2", "n2")
    redeployed = reborn.get_bundle_by_name("counter")
    assert redeployed is not None
    fresh_activator = redeployed._activator
    assert isinstance(fresh_activator, CounterActivator)
    assert fresh_activator.restored_from_checkpoint
    assert fresh_activator.count == 42


def test_activator_restores_on_start_automatically():
    store = SharedStore()
    host, instance = build_instance(store)
    first = CounterActivator()
    bundle = instance.install(
        simple_bundle("counter", activator_factory=lambda: first)
    )
    bundle.start()
    first.count = 9
    bundle.stop()  # implicit checkpoint

    second = CounterActivator()
    bundle2 = instance.install(
        simple_bundle("counter2", activator_factory=lambda: second),
        location="bundle://counter/1.0.0",  # same location => same bundle
    )
    # New activator for the same data area:
    fresh = CounterActivator()
    bundle.definition.activator_factory = lambda: fresh
    bundle.start()
    assert fresh.count == 9
    assert fresh.restored_from_checkpoint


def test_checkpoint_returns_false_when_not_running():
    activator = CounterActivator()
    assert activator.checkpoint() is False


class TestContextCheckpointer:
    def test_periodic_checkpointing(self):
        store = SharedStore()
        loop = EventLoop()
        host, instance = build_instance(store)
        activator = CounterActivator()
        instance.install(
            simple_bundle("counter", activator_factory=lambda: activator)
        ).start()
        checkpointer = ContextCheckpointer(loop, instance, interval=1.0)
        checkpointer.start()
        activator.count = 1
        loop.run_for(1.0)
        assert store.data_area("vosgi:acme", "counter")[CHECKPOINT_KEY] == {
            "count": 1
        }
        activator.count = 2
        loop.run_for(1.0)
        assert store.data_area("vosgi:acme", "counter")[CHECKPOINT_KEY] == {
            "count": 2
        }
        assert checkpointer.checkpoints_taken == 2

    def test_work_since_last_checkpoint_lost_on_crash(self):
        """Bounded loss: the checkpoint interval is the exposure window."""
        store = SharedStore()
        loop = EventLoop()
        host, instance = build_instance(store)
        activator = CounterActivator()
        instance.install(
            simple_bundle("counter", activator_factory=lambda: activator)
        ).start()
        checkpointer = ContextCheckpointer(loop, instance, interval=1.0)
        checkpointer.start()
        activator.count = 5
        loop.run_for(1.0)  # checkpoint at count=5
        activator.count = 99  # work after the last checkpoint
        # crash now: the stored context is 5, not 99
        stored = store.data_area("vosgi:acme", "counter")[CHECKPOINT_KEY]
        assert stored == {"count": 5}

    def test_stop_halts_checkpointing(self):
        store = SharedStore()
        loop = EventLoop()
        host, instance = build_instance(store)
        activator = CounterActivator()
        instance.install(
            simple_bundle("counter", activator_factory=lambda: activator)
        ).start()
        checkpointer = ContextCheckpointer(loop, instance, interval=1.0)
        checkpointer.start()
        loop.run_for(1.0)
        checkpointer.stop()
        loop.run_for(5.0)
        assert checkpointer.checkpoints_taken == 1

    def test_invalid_interval_rejected(self):
        store = SharedStore()
        loop = EventLoop()
        host, instance = build_instance(store)
        with pytest.raises(ValueError):
            ContextCheckpointer(loop, instance, interval=0)

    def test_non_checkpointable_bundles_skipped(self):
        store = SharedStore()
        loop = EventLoop()
        host, instance = build_instance(store)
        instance.install(simple_bundle("plain")).start()
        checkpointer = ContextCheckpointer(loop, instance, interval=1.0)
        assert checkpointer.checkpoint_now() == 0
