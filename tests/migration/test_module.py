"""Migration Module: gossip, planned migration, failure redeployment."""

import pytest

from repro.cluster.cluster import Cluster
from repro.migration.module import MigrationModule, PLATFORM_GROUP
from repro.migration.placement import RoundRobinPlacement
from repro.migration.registry import CustomerDescriptor, CustomerDirectory


def build_platform(node_count=3, seed=7, coordination="deterministic", **kwargs):
    cluster = Cluster.build(node_count, seed=seed)
    modules = {}
    for node in cluster.nodes():
        module = MigrationModule(node, coordination=coordination, **kwargs)
        node.modules["migration"] = module
        module.start()
        modules[node.node_id] = module
    cluster.run_for(2.0)
    return cluster, modules


def admit(cluster, modules, name, node_id, cpu_share=0.2, bundle_count_hint=0):
    CustomerDirectory(cluster.store).put(
        CustomerDescriptor(
            name=name, cpu_share=cpu_share, bundle_count_hint=bundle_count_hint
        )
    )
    deploy = cluster.node(node_id).deploy_instance(name)
    cluster.run_until_settled([deploy])
    cluster.run_for(1.5)  # inventory propagation
    return deploy.result()


def host_of(cluster, name):
    for node in cluster.alive_nodes():
        if name in node.instance_names():
            return node.node_id
    return None


class TestGossip:
    def test_all_modules_join_platform_group(self):
        cluster, modules = build_platform()
        views = {m.control.current_view for m in modules.values()}
        assert len(views) == 1
        assert list(views)[0].size == 3

    def test_inventories_propagate(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "acme", "n1")
        assert modules["n3"].inventory.instances_on("n1") == ["acme"]
        assert modules["n2"].inventory.locate("acme") == "n1"

    def test_inventories_carry_resources(self):
        cluster, modules = build_platform()
        cluster.run_for(2.0)
        inventory = modules["n1"].inventory.get("n2")
        assert inventory is not None
        assert "cpu_capacity" in inventory.resources


class TestPlannedMigration:
    def test_migrate_moves_instance(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "acme", "n1")
        migration = modules["n1"].migrate("acme", "n2")
        cluster.run_until_settled([migration], timeout=40)
        assert host_of(cluster, "acme") == "n2"
        record = migration.result()
        assert record.reason == "planned"
        assert record.downtime is not None and record.downtime > 0

    def test_migrate_to_self_allowed(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "acme", "n1")
        migration = modules["n1"].migrate("acme", "n1")
        cluster.run_until_settled([migration], timeout=40)
        assert host_of(cluster, "acme") == "n1"

    def test_migrate_unhosted_instance_rejected(self):
        cluster, modules = build_platform()
        with pytest.raises(ValueError):
            modules["n1"].migrate("ghost", "n2")

    def test_migration_preserves_stateful_data(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "acme", "n1")
        cluster.store.data_area("vosgi:acme", "app")["counter"] = 41
        migration = modules["n1"].migrate("acme", "n3")
        cluster.run_until_settled([migration], timeout=40)
        assert cluster.store.data_area("vosgi:acme", "app")["counter"] == 41


class TestFailureRedeployment:
    def test_orphans_redeployed_on_survivors(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "acme", "n1")
        admit(cluster, modules, "globex", "n1")
        cluster.node("n1").fail()
        cluster.run_for(6.0)
        assert host_of(cluster, "acme") in ("n2", "n3")
        assert host_of(cluster, "globex") in ("n2", "n3")

    def test_no_duplicate_deployments_deterministic_mode(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "acme", "n1")
        cluster.node("n1").fail()
        cluster.run_for(6.0)
        hosts = [
            n.node_id
            for n in cluster.alive_nodes()
            if "acme" in n.instance_names()
        ]
        assert len(hosts) == 1

    def test_sequencer_mode_redeploys_too(self):
        cluster, modules = build_platform(coordination="sequencer")
        admit(cluster, modules, "acme", "n2")
        cluster.node("n2").fail()
        cluster.run_for(6.0)
        assert host_of(cluster, "acme") in ("n1", "n3")

    def test_failure_record_reason_and_downtime(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "acme", "n1")
        cluster.node("n1").fail()
        cluster.run_for(6.0)
        records = [
            r
            for m in modules.values()
            for r in m.records
            if r.reason == "failure" and r.completed
        ]
        assert len(records) == 1
        assert records[0].from_node == "n1"
        assert records[0].downtime > 0

    def test_multiple_simultaneous_failures(self):
        cluster, modules = build_platform(node_count=4)
        admit(cluster, modules, "a", "n1")
        admit(cluster, modules, "b", "n2")
        cluster.node("n1").fail()
        cluster.node("n2").fail()
        cluster.run_for(8.0)
        assert host_of(cluster, "a") in ("n3", "n4")
        assert host_of(cluster, "b") in ("n3", "n4")

    def test_cascading_failures_graceful_degradation(self):
        cluster, modules = build_platform(node_count=3)
        admit(cluster, modules, "a", "n1")
        admit(cluster, modules, "b", "n2")
        cluster.node("n1").fail()
        cluster.run_for(6.0)
        second_host = host_of(cluster, "a")
        cluster.node(second_host).fail()
        cluster.run_for(8.0)
        # Both customers end up on the single survivor.
        survivor = cluster.alive_nodes()[0]
        assert set(survivor.instance_names()) == {"a", "b"}

    def test_empty_node_failure_triggers_nothing(self):
        cluster, modules = build_platform()
        cluster.node("n3").fail()
        cluster.run_for(5.0)
        assert all(not m.records for m in modules.values() if m.running)


class TestEvacuation:
    def test_evacuate_moves_all_instances(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "a", "n1")
        admit(cluster, modules, "b", "n1")
        evacuation = modules["n1"].evacuate()
        cluster.run_until_settled([evacuation], timeout=60)
        assert cluster.node("n1").instance_names() == []
        assert host_of(cluster, "a") in ("n2", "n3")
        assert host_of(cluster, "b") in ("n2", "n3")

    def test_evacuate_empty_node_trivially_succeeds(self):
        cluster, modules = build_platform()
        evacuation = modules["n2"].evacuate()
        cluster.run_until_settled([evacuation])
        assert evacuation.result() == []

    def test_evacuate_without_peers_fails(self):
        cluster = Cluster.build(1, seed=1)
        module = MigrationModule(cluster.node("n1"))
        module.start()
        cluster.run_for(1.0)
        admit(cluster, {"n1": module}, "a", "n1")
        evacuation = module.evacuate()
        cluster.run_for(1.0)
        assert evacuation.done and not evacuation.ok

    def test_graceful_shutdown_no_failure_records(self):
        cluster, modules = build_platform()
        admit(cluster, modules, "a", "n1")
        graceful = modules["n1"].shutdown_gracefully()
        cluster.run_until_settled([graceful], timeout=60)
        cluster.run_for(5.0)
        from repro.cluster.node import NodeState

        assert cluster.node("n1").state == NodeState.OFF
        assert host_of(cluster, "a") in ("n2", "n3")
        failure_records = [
            r
            for m in modules.values()
            for r in m.records
            if r.reason == "failure"
        ]
        assert failure_records == []


class TestCommands:
    def test_command_routed_to_target_node(self):
        cluster, modules = build_platform()
        received = []
        modules["n2"].command_handlers["ping"] = received.append
        modules["n1"].send_command("n2", "ping", {"x": 1})
        cluster.run_for(1.0)
        assert received == [{"x": 1}]

    def test_command_to_self_dispatches_directly(self):
        cluster, modules = build_platform()
        received = []
        modules["n1"].command_handlers["ping"] = received.append
        modules["n1"].send_command("n1", "ping", {"x": 2})
        assert received == [{"x": 2}]

    def test_command_to_other_node_not_delivered_elsewhere(self):
        cluster, modules = build_platform()
        received = []
        modules["n3"].command_handlers["ping"] = received.append
        modules["n1"].send_command("n2", "ping", {})
        cluster.run_for(1.0)
        assert received == []
