"""Placement policies: determinism, capacity respect, packing."""

from hypothesis import given, strategies as st

from repro.migration.inventory import ClusterInventory, NodeInventory
from repro.migration.placement import (
    LeastLoadedPlacement,
    PackingPlacement,
    RoundRobinPlacement,
)
from repro.migration.registry import CustomerDescriptor


def make_inventory(loads):
    """loads: {node: (cpu_available, memory_available)}"""
    inventory = ClusterInventory()
    for node, (cpu, memory) in loads.items():
        inventory.update(
            NodeInventory(
                node_id=node,
                at=1.0,
                resources={
                    "cpu_available_share": cpu,
                    "memory_available_bytes": memory,
                    "cpu_capacity": 1.0,
                },
            )
        )
    return inventory


def descriptors(*specs):
    return [
        CustomerDescriptor(name=name, cpu_share=cpu, memory_bytes=mem)
        for name, cpu, mem in specs
    ]


GIB = 1024**3


class TestRoundRobin:
    def test_spreads_across_nodes(self):
        policy = RoundRobinPlacement()
        instances = descriptors(("a", 0.1, 1), ("b", 0.1, 1), ("c", 0.1, 1))
        assignment = policy.assign(instances, ["n1", "n2", "n3"], ClusterInventory())
        assert set(assignment) == {"a", "b", "c"}
        assert len(set(assignment.values())) == 3

    def test_empty_candidates_yields_nothing(self):
        assert RoundRobinPlacement().assign(
            descriptors(("a", 0.1, 1)), [], ClusterInventory()
        ) == {}

    def test_priority_placed_first(self):
        low = CustomerDescriptor(name="low", priority=0)
        high = CustomerDescriptor(name="high", priority=5)
        policy = RoundRobinPlacement()
        assignment = policy.assign([low, high], ["n1"], ClusterInventory())
        assert set(assignment) == {"low", "high"}


class TestLeastLoaded:
    def test_prefers_most_headroom(self):
        inventory = make_inventory({"n1": (0.2, 4 * GIB), "n2": (0.9, 4 * GIB)})
        assignment = LeastLoadedPlacement().assign(
            descriptors(("a", 0.3, GIB)), ["n1", "n2"], inventory
        )
        assert assignment == {"a": "n2"}

    def test_respects_memory_headroom(self):
        inventory = make_inventory({"n1": (0.9, 1), "n2": (0.5, 4 * GIB)})
        assignment = LeastLoadedPlacement().assign(
            descriptors(("a", 0.3, GIB)), ["n1", "n2"], inventory
        )
        assert assignment == {"a": "n2"}

    def test_unplaceable_instance_omitted(self):
        inventory = make_inventory({"n1": (0.1, 4 * GIB)})
        assignment = LeastLoadedPlacement().assign(
            descriptors(("big", 0.9, GIB)), ["n1"], inventory
        )
        assert assignment == {}

    def test_refuse_threshold_degrades_gracefully(self):
        inventory = make_inventory({"n1": (0.5, 4 * GIB)})
        policy = LeastLoadedPlacement(refuse_threshold=0.3)
        assignment = policy.assign(
            descriptors(("a", 0.3, GIB)), ["n1"], inventory
        )
        assert assignment == {}  # would leave only 0.2 < threshold

    def test_running_tally_prevents_overcommit(self):
        inventory = make_inventory({"n1": (0.5, 4 * GIB), "n2": (0.5, 4 * GIB)})
        assignment = LeastLoadedPlacement().assign(
            descriptors(("a", 0.4, GIB), ("b", 0.4, GIB), ("c", 0.4, GIB)),
            ["n1", "n2"],
            inventory,
        )
        assert len(assignment) == 2
        assert len(set(assignment.values())) == 2

    def test_priority_customers_win_scarce_capacity(self):
        inventory = make_inventory({"n1": (0.4, 4 * GIB)})
        low = CustomerDescriptor(name="low", cpu_share=0.3, priority=0)
        high = CustomerDescriptor(name="high", cpu_share=0.3, priority=9)
        assignment = LeastLoadedPlacement().assign(
            [low, high], ["n1"], inventory
        )
        assert assignment == {"high": "n1"}

    def test_unknown_node_resources_assumed_free(self):
        assignment = LeastLoadedPlacement().assign(
            descriptors(("a", 0.3, GIB)), ["nx"], ClusterInventory()
        )
        assert assignment == {"a": "nx"}


class TestPacking:
    def test_fills_fewest_nodes(self):
        inventory = make_inventory(
            {"n1": (1.0, 4 * GIB), "n2": (1.0, 4 * GIB), "n3": (1.0, 4 * GIB)}
        )
        assignment = PackingPlacement().assign(
            descriptors(("a", 0.3, 1), ("b", 0.3, 1), ("c", 0.3, 1)),
            ["n1", "n2", "n3"],
            inventory,
        )
        assert set(assignment.values()) == {"n1"}

    def test_overflow_to_second_node(self):
        inventory = make_inventory({"n1": (1.0, 4 * GIB), "n2": (1.0, 4 * GIB)})
        assignment = PackingPlacement().assign(
            descriptors(("a", 0.6, 1), ("b", 0.6, 1)),
            ["n1", "n2"],
            inventory,
        )
        assert len(set(assignment.values())) == 2


node_names = st.lists(
    st.sampled_from(["n1", "n2", "n3", "n4"]), min_size=1, max_size=4, unique=True
)
instance_sets = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d", "e"]),
        st.floats(0.05, 0.5),
    ),
    min_size=1,
    max_size=5,
    unique_by=lambda t: t[0],
)


@given(node_names, instance_sets)
def test_property_policies_are_deterministic(nodes, instances):
    """Same inputs => same assignment, on every policy — the invariant
    decentralized redeployment relies on."""
    described = [
        CustomerDescriptor(name=n, cpu_share=c) for n, c in instances
    ]
    inventory = make_inventory({n: (1.0, 4 * GIB) for n in nodes})
    for policy_factory in (RoundRobinPlacement, LeastLoadedPlacement, PackingPlacement):
        first = policy_factory().assign(list(described), list(nodes), inventory)
        second = policy_factory().assign(list(described), list(nodes), inventory)
        assert first == second


@given(node_names, instance_sets)
def test_property_assignments_target_candidates_only(nodes, instances):
    described = [CustomerDescriptor(name=n, cpu_share=c) for n, c in instances]
    inventory = make_inventory({n: (1.0, 4 * GIB) for n in nodes})
    assignment = LeastLoadedPlacement().assign(described, nodes, inventory)
    assert set(assignment.values()) <= set(nodes)
    assert set(assignment) <= {d.name for d in described}
