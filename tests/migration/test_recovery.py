"""The orphan-recovery sweep: the deterministic mode's safety net."""

import pytest

from repro.cluster.cluster import Cluster
from repro.migration.module import MigrationModule
from repro.migration.registry import CustomerDescriptor, CustomerDirectory


def build_platform(node_count=3, seed=51):
    cluster = Cluster.build(node_count, seed=seed)
    modules = {}
    for node in cluster.nodes():
        module = MigrationModule(node)
        node.modules["migration"] = module
        module.start()
        modules[node.node_id] = module
    cluster.run_for(3.0)  # views + inventories settle
    return cluster, modules


def host_of(cluster, name):
    for node in cluster.alive_nodes():
        if name in node.instance_names():
            return node.node_id
    return None


def test_sweep_recovers_instance_dropped_outside_the_protocol():
    """Simulate the divergence case directly: an instance's SAN state
    exists and its descriptor says active, but nobody hosts it and no
    failure event will ever fire for it."""
    cluster, modules = build_platform()
    directory = CustomerDirectory(cluster.store)
    directory.put(CustomerDescriptor(name="lost", cpu_share=0.2))
    # Materialize SAN state without any deployment event reaching the
    # migration layer: deploy then silently destroy behind its back.
    deploy = cluster.node("n2").deploy_instance("lost")
    cluster.run_until_settled([deploy])
    cluster.node("n2").instance_manager.release_instance("lost")
    deploy.result().stop()
    cluster.run_for(8.0)
    assert host_of(cluster, "lost") is not None
    recovery_records = [
        r
        for m in modules.values()
        for r in m.records
        if r.instance == "lost" and r.reason == "recovery"
    ]
    assert recovery_records


def test_sweep_respects_deliberate_stops():
    cluster, modules = build_platform()
    directory = CustomerDirectory(cluster.store)
    descriptor = CustomerDescriptor(name="parked", cpu_share=0.2, active=False)
    directory.put(descriptor)
    deploy = cluster.node("n2").deploy_instance("parked")
    cluster.run_until_settled([deploy])
    undeploy = cluster.node("n2").undeploy_instance("parked")
    cluster.run_until_settled([undeploy])
    cluster.run_for(10.0)
    assert host_of(cluster, "parked") is None


def test_sweep_ignores_customers_without_san_state():
    cluster, modules = build_platform()
    CustomerDirectory(cluster.store).put(CustomerDescriptor(name="never-ran"))
    cluster.run_for(10.0)
    assert host_of(cluster, "never-ran") is None


def test_sweep_retries_unplaced_when_capacity_returns():
    """Capacity shortage parks an instance; the sweep redeploys it once a
    node frees up — the recovery half of graceful degradation."""
    cluster, modules = build_platform(node_count=2)
    directory = CustomerDirectory(cluster.store)
    directory.put(CustomerDescriptor(name="big-a", cpu_share=0.9))
    directory.put(CustomerDescriptor(name="big-b", cpu_share=0.9))
    for name, node in (("big-a", "n1"), ("big-b", "n2")):
        deploy = cluster.node(node).deploy_instance(name)
        cluster.run_until_settled([deploy])
    cluster.run_for(2.0)
    cluster.node("n2").fail()
    cluster.run_for(8.0)
    assert host_of(cluster, "big-b") is None  # no capacity on n1

    # Capacity returns: reboot n2 with a fresh platform + module.
    boot = cluster.node("n2").boot()
    cluster.run_until_settled([boot])
    fresh = MigrationModule(cluster.node("n2"))
    cluster.node("n2").modules["migration"] = fresh
    fresh.start()
    cluster.run_for(15.0)
    assert host_of(cluster, "big-b") == "n2"


def test_non_coordinator_never_sweeps():
    cluster, modules = build_platform()
    CustomerDirectory(cluster.store).put(CustomerDescriptor(name="x"))
    cluster.store.save_state(
        "vosgi:x", cluster.store.load_state("host:n1").__class__()
    )
    cluster.run_for(6.0)
    # only the coordinator's module may have records; n2/n3 must not have
    # initiated anything on their own.
    for node_id in ("n2", "n3"):
        own_recoveries = [
            r
            for r in modules[node_id].records
            if r.reason == "recovery" and r.from_node == "?"
        ]
        # they may *execute* a DEPLOY the coordinator sent them, but the
        # strikes dict stays empty on non-coordinators
        assert modules[node_id]._orphan_strikes == {}
