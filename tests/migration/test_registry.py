"""Customer directory on the SAN."""

import pytest

from repro.migration.registry import CustomerDescriptor, CustomerDirectory
from repro.storage.san import SharedStore


@pytest.fixture
def store():
    return SharedStore()


@pytest.fixture
def directory(store):
    return CustomerDirectory(store)


def test_put_get_roundtrip(directory):
    descriptor = CustomerDescriptor(
        name="acme",
        packages=("log",),
        services=("log.LogService",),
        cpu_share=0.3,
        priority=2,
        bundle_count_hint=4,
    )
    directory.put(descriptor)
    loaded = directory.get("acme")
    assert loaded == descriptor


def test_get_missing_returns_none(directory):
    assert directory.get("ghost") is None


def test_require_raises_for_missing(directory):
    with pytest.raises(KeyError):
        directory.require("ghost")


def test_visible_from_other_node_mount(store):
    CustomerDirectory(store).put(CustomerDescriptor(name="acme"))
    assert CustomerDirectory(store).get("acme") is not None


def test_remove(directory):
    directory.put(CustomerDescriptor(name="acme"))
    directory.remove("acme")
    assert directory.get("acme") is None
    directory.remove("acme")  # idempotent


def test_names_sorted(directory):
    directory.put(CustomerDescriptor(name="zeta"))
    directory.put(CustomerDescriptor(name="alpha"))
    assert directory.names() == ["alpha", "zeta"]


def test_descriptor_materializes_policy_and_quota():
    descriptor = CustomerDescriptor(
        name="acme",
        packages=("log", "http"),
        services=("log.S",),
        cpu_share=0.4,
        memory_bytes=123,
        disk_bytes=456,
    )
    policy = descriptor.policy()
    assert policy.allows_package("log")
    assert policy.allows_package("http")
    assert policy.allows_service(("log.S",))
    quota = descriptor.quota()
    assert quota.cpu_share == 0.4
    assert quota.memory_bytes == 123
    assert quota.disk_bytes == 456


def test_from_dict_defaults():
    descriptor = CustomerDescriptor.from_dict({"name": "x"})
    assert descriptor.cpu_share == 1.0
    assert descriptor.priority == 0
