"""Warm standby: preparation, advertisement, promoted failover."""

import pytest

from repro.cluster.cluster import Cluster
from repro.migration.module import MigrationModule
from repro.migration.registry import CustomerDescriptor, CustomerDirectory
from repro.migration.standby import StandbyManager
from repro.osgi.definition import simple_bundle


def build_platform(node_count=3, seed=42):
    cluster = Cluster.build(node_count, seed=seed)
    modules = {}
    standbys = {}
    for node in cluster.nodes():
        module = MigrationModule(node)
        node.modules["migration"] = module
        module.start()
        modules[node.node_id] = module
        manager = StandbyManager(node)
        node.modules["standby"] = manager
        manager.start()
        standbys[node.node_id] = manager
    cluster.run_for(2.0)
    return cluster, modules, standbys


def admit(cluster, name, node_id, bundle_count=5):
    CustomerDirectory(cluster.store).put(
        CustomerDescriptor(name=name, cpu_share=0.2, bundle_count_hint=bundle_count)
    )
    deploy = cluster.node(node_id).deploy_instance(name)
    cluster.run_until_settled([deploy])
    instance = deploy.result()
    for i in range(bundle_count):
        instance.install(simple_bundle("b%02d" % i)).start()
    cluster.run_for(1.5)
    return instance


class TestPreparation:
    def test_prepare_takes_full_instance_cost(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        before = cluster.loop.clock.now
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        elapsed = preparation.completed_at - before
        assert elapsed >= cluster.costs.instance_start_seconds(5) - 1e-9
        assert standbys["n2"].is_prepared("acme")

    def test_prepared_bundle_count_from_san_state(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1", bundle_count=7)
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        assert preparation.result().bundle_count == 7

    def test_duplicate_preparation_rejected(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        with pytest.raises(ValueError):
            standbys["n2"].prepare("acme")

    def test_standby_advertised_in_gossip(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        cluster.run_for(1.5)
        assert modules["n3"].inventory.standby_host("acme") == "n2"

    def test_memory_cost_accounted(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        assert standbys["n2"].memory_cost_bytes() > 0

    def test_resync_tracks_primary_growth(self):
        cluster, modules, standbys = build_platform()
        instance = admit(cluster, "acme", "n1", bundle_count=2)
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        record = preparation.result()
        assert record.bundle_count == 2
        instance.install(simple_bundle("late")).start()
        cluster.run_for(2.0)
        assert record.bundle_count == 3

    def test_unprepare(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        assert standbys["n2"].unprepare("acme")
        assert not standbys["n2"].is_prepared("acme")
        assert not standbys["n2"].unprepare("acme")


class TestPromotedFailover:
    def test_failover_lands_on_standby_node(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        preparation = standbys["n3"].prepare("acme")
        cluster.run_until_settled([preparation])
        cluster.run_for(1.5)
        cluster.node("n1").fail()
        cluster.run_for(5.0)
        assert "acme" in cluster.node("n3").instance_names()

    def test_promoted_failover_is_faster_than_cold(self):
        # Cold redeploy of 5 bundles: >= 0.2 + 5*0.08 = 0.6 s. Promotion:
        # 0.05 + 5*0.01 = 0.1 s. Compare measured downtimes.
        def downtime(with_standby):
            cluster, modules, standbys = build_platform(seed=77)
            admit(cluster, "acme", "n1")
            if with_standby:
                preparation = standbys["n2"].prepare("acme")
                cluster.run_until_settled([preparation])
            cluster.run_for(1.5)
            cluster.node("n1").fail()
            cluster.run_for(5.0)
            records = [
                r
                for m in modules.values()
                for r in m.records
                if r.instance == "acme" and r.completed
            ]
            return records[-1].downtime

        cold = downtime(with_standby=False)
        warm = downtime(with_standby=True)
        assert warm < cold
        assert cold - warm > 0.4  # the skipped install/resolve/SAN work

    def test_promotion_consumes_preparation(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        cluster.run_for(1.5)
        cluster.node("n1").fail()
        cluster.run_for(5.0)
        assert not standbys["n2"].is_prepared("acme")
        assert standbys["n2"].promotions == 1

    def test_standby_dropped_for_deliberately_stopped_customer(self):
        cluster, modules, standbys = build_platform()
        admit(cluster, "acme", "n1")
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        directory = CustomerDirectory(cluster.store)
        descriptor = directory.get("acme")
        directory.put(
            CustomerDescriptor(**{**descriptor.to_dict(), "active": False})
        )
        cluster.run_for(2.0)
        assert not standbys["n2"].is_prepared("acme")

    def test_dead_standby_node_falls_back_to_placement(self):
        cluster, modules, standbys = build_platform(node_count=3)
        admit(cluster, "acme", "n1")
        preparation = standbys["n2"].prepare("acme")
        cluster.run_until_settled([preparation])
        cluster.run_for(1.5)
        cluster.node("n2").fail()  # standby host dies first
        cluster.run_for(3.0)
        cluster.node("n1").fail()  # then the primary
        cluster.run_for(6.0)
        assert "acme" in cluster.node("n3").instance_names()
