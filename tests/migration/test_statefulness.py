"""Stateless / stateful / transactional migration semantics."""

import pytest

from repro.migration.statefulness import (
    PlainStatefulService,
    Request,
    RetryingClient,
    TransactionalStore,
)
from repro.storage.san import SharedStore


@pytest.fixture
def area():
    return SharedStore().data_area("vosgi:acme", "svc")


class TestRetryingClient:
    def test_successful_request_completes_first_try(self):
        client = RetryingClient(lambda request: True)
        request = client.issue("payload")
        assert request.completed
        assert request.attempts == 1

    def test_failed_request_stays_pending(self):
        client = RetryingClient(lambda request: False)
        request = client.issue("payload")
        assert not request.completed
        assert client.pending == [request]

    def test_retry_pending_completes_after_service_returns(self):
        available = {"up": False}
        client = RetryingClient(lambda request: available["up"])
        client.issue(1)
        client.issue(2)
        assert client.retry_pending() == 0
        available["up"] = True  # migration finished
        assert client.retry_pending() == 2
        assert client.pending == []

    def test_exceptions_treated_as_failure(self):
        def flaky(request):
            raise ConnectionError("mid-migration")

        client = RetryingClient(flaky)
        request = client.issue("x")
        assert not request.completed

    def test_attempts_counted_across_retries(self):
        client = RetryingClient(lambda request: False)
        request = client.issue("x")
        client.retry_pending()
        client.retry_pending()
        assert request.attempts == 3

    def test_request_ids_unique_and_increasing(self):
        client = RetryingClient(lambda request: True)
        ids = [client.issue(i).request_id for i in range(5)]
        assert ids == sorted(set(ids))


class TestTransactionalStore:
    def test_commit_persists_staged_writes(self, area):
        store = TransactionalStore(area)
        store.stage("k", 1)
        store.commit()
        assert area["k"] == 1
        assert store.commits == 1

    def test_uncommitted_writes_invisible(self, area):
        store = TransactionalStore(area)
        store.stage("k", 1)
        assert "k" not in area
        assert store.in_flight == 1

    def test_abort_discards(self, area):
        store = TransactionalStore(area)
        store.stage("k", 1)
        store.abort()
        assert "k" not in area
        assert store.aborts == 1

    def test_interrupted_request_leaves_no_trace(self, area):
        """The reduction-to-stateless argument: a crash between stage and
        commit leaves the persistent area untouched, so resending the
        request is safe."""
        store = TransactionalStore(area)
        store.stage("k", "half-done")
        # crash: store object abandoned
        fresh = TransactionalStore(area)
        assert fresh.get("k") is None
        fresh.stage("k", "retried")
        fresh.commit()
        assert area["k"] == "retried"


class TestPlainStateful:
    def test_unflushed_context_lost_on_migration(self, area):
        service = PlainStatefulService(area)
        service.handle("persisted", 1)
        service.flush()
        service.handle("in-flight", 2)
        # Migration: new service object, same (SAN) data area.
        migrated = PlainStatefulService(area)
        assert migrated.persisted("persisted") == 1
        assert migrated.persisted("in-flight") is None
        assert migrated.context == {}

    def test_flush_reports_count(self, area):
        service = PlainStatefulService(area)
        service.handle("a", 1)
        service.handle("b", 2)
        assert service.flush() == 2
        assert service.flush() == 0
