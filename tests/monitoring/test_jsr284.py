"""JSR-284 model: domains, constraints, notifications."""

import pytest

from repro.monitoring.jsr284 import (
    CPU_TIME,
    Constraint,
    ConstraintViolation,
    DomainRegistry,
    HEAP_MEMORY,
    ResourceDomain,
)


def test_consume_accumulates():
    domain = ResourceDomain("acme/cpu", CPU_TIME)
    domain.consume(1.0)
    domain.consume(0.5)
    assert domain.usage == 1.5


def test_negative_consume_rejected():
    domain = ResourceDomain("d", CPU_TIME)
    with pytest.raises(ValueError):
        domain.consume(-1)


def test_release_lowers_non_disposable():
    domain = ResourceDomain("acme/mem", HEAP_MEMORY)
    domain.consume(100)
    domain.release(30)
    assert domain.usage == 70


def test_release_cannot_go_negative():
    domain = ResourceDomain("d", HEAP_MEMORY)
    domain.consume(10)
    domain.release(50)
    assert domain.usage == 0


def test_disposable_resource_cannot_be_released():
    domain = ResourceDomain("d", CPU_TIME)
    with pytest.raises(ValueError):
        domain.release(1)


def test_hard_constraint_denies_over_limit():
    domain = ResourceDomain("d", HEAP_MEMORY)
    domain.add_constraint(Constraint(limit=100, hard=True))
    domain.consume(100)
    with pytest.raises(ConstraintViolation):
        domain.consume(1)
    assert domain.usage == 100  # denied consumption not applied


def test_soft_constraint_allows_but_notifies():
    exceeded = []
    domain = ResourceDomain("d", HEAP_MEMORY)
    constraint = Constraint(
        limit=100, hard=False, on_exceeded=lambda d, total: exceeded.append(total)
    )
    domain.add_constraint(constraint)
    domain.consume(150)
    assert domain.usage == 150
    assert exceeded == [150]
    assert constraint.violations == 1


def test_constraint_callback_errors_swallowed():
    def broken(domain, total):
        raise RuntimeError("policy bug")

    domain = ResourceDomain("d", HEAP_MEMORY)
    domain.add_constraint(Constraint(limit=0, hard=False, on_exceeded=broken))
    domain.consume(10)  # must not raise


def test_constraints_checked_in_order_hard_first_denies():
    domain = ResourceDomain("d", HEAP_MEMORY)
    domain.add_constraint(Constraint(limit=50, hard=True))
    domain.add_constraint(Constraint(limit=10, hard=False))
    with pytest.raises(ConstraintViolation):
        domain.consume(60)


def test_remove_constraint():
    domain = ResourceDomain("d", HEAP_MEMORY)
    constraint = Constraint(limit=10, hard=True)
    domain.add_constraint(constraint)
    domain.remove_constraint(constraint)
    domain.consume(100)


def test_usage_listeners_notified():
    levels = []
    domain = ResourceDomain("d", HEAP_MEMORY)
    domain.add_usage_listener(lambda d, usage: levels.append(usage))
    domain.consume(10)
    domain.release(5)
    assert levels == [10, 5]


def test_negative_limit_rejected():
    with pytest.raises(ValueError):
        Constraint(limit=-1)


class TestDomainRegistry:
    def test_domain_created_once_per_owner_resource(self):
        registry = DomainRegistry()
        a = registry.domain("acme", CPU_TIME)
        b = registry.domain("acme", CPU_TIME)
        assert a is b

    def test_domains_of_owner(self):
        registry = DomainRegistry()
        registry.domain("acme", CPU_TIME)
        registry.domain("acme", HEAP_MEMORY)
        registry.domain("globex", CPU_TIME)
        assert len(registry.domains_of("acme")) == 2

    def test_drop_owner(self):
        registry = DomainRegistry()
        registry.domain("acme", CPU_TIME).consume(5)
        registry.drop_owner("acme")
        assert registry.domain("acme", CPU_TIME).usage == 0
