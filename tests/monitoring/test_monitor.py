"""Monitoring Module: sampling loop, reports, violations, node summary."""

import pytest

from repro.isolation.quotas import ResourceQuota
from repro.monitoring.monitor import (
    MONITORING_CLASS,
    MonitoringModule,
    monitoring_bundle,
)
from repro.monitoring.sampler import ThreadSampler
from repro.osgi.definition import simple_bundle
from repro.osgi.framework import Framework
from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.vosgi.manager import InstanceManager, instance_manager_bundle

from tests.conftest import RecordingActivator


@pytest.fixture
def loop():
    return EventLoop()


@pytest.fixture
def host():
    fw = Framework("host")
    fw.start()
    yield fw
    if fw.active:
        fw.stop()


@pytest.fixture
def manager(host):
    return InstanceManager(host)


def make_worker(instance, cpu_per_call=0.0, memory=0):
    activator = RecordingActivator()
    bundle = instance.install(
        simple_bundle(
            "worker-%d" % (id(activator) % 10000),
            activator_factory=lambda: activator,
        )
    )
    bundle.start()
    if cpu_per_call or memory:
        activator.context.account(cpu=cpu_per_call, memory_delta=memory)
    return activator


def test_reports_produced_each_interval(loop, manager):
    manager.create_instance("acme")
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(3.5)
    assert module.ticks == 3
    assert len(module.history("acme")) == 3


def test_cpu_share_computed_from_window_delta(loop, manager):
    instance = manager.create_instance("acme", quota=ResourceQuota(cpu_share=0.5))
    worker = make_worker(instance)
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(1.0)  # first report: baseline
    worker.context.account(cpu=0.3)
    loop.run_for(1.0)
    report = module.latest("acme")
    assert report.cpu_share == pytest.approx(0.3)
    assert not report.cpu_violation


def test_cpu_violation_flagged_beyond_tolerance(loop, manager):
    instance = manager.create_instance("acme", quota=ResourceQuota(cpu_share=0.2))
    worker = make_worker(instance)
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(1.0)
    worker.context.account(cpu=0.5)
    loop.run_for(1.0)
    report = module.latest("acme")
    assert report.cpu_violation
    assert report.any_violation


def test_memory_violation_exact_mode(loop, manager):
    instance = manager.create_instance(
        "acme", quota=ResourceQuota(memory_bytes=1000)
    )
    worker = make_worker(instance)
    worker.context.account(memory_delta=2000)
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(1.0)
    assert module.latest("acme").memory_violation


def test_sampling_mode_cannot_see_memory(loop, manager):
    instance = manager.create_instance(
        "acme", quota=ResourceQuota(memory_bytes=1000)
    )
    worker = make_worker(instance)
    worker.context.account(memory_delta=5000)
    sampler = ThreadSampler(RngStreams(1).stream("s"))
    module = MonitoringModule(
        loop, manager, interval=1.0, mode="sampling", sampler=sampler
    )
    module.start()
    loop.run_for(1.0)
    report = module.latest("acme")
    assert report.memory_bytes is None
    assert not report.memory_violation  # invisible => unenforceable (2008!)


def test_sampling_mode_requires_sampler(loop, manager):
    with pytest.raises(ValueError):
        MonitoringModule(loop, manager, mode="sampling")


def test_invalid_mode_rejected(loop, manager):
    with pytest.raises(ValueError):
        MonitoringModule(loop, manager, mode="psychic")


def test_jsr284_domains_synced(loop, manager):
    from repro.monitoring.jsr284 import CPU_TIME, HEAP_MEMORY

    instance = manager.create_instance("acme")
    worker = make_worker(instance)
    worker.context.account(cpu=1.5, memory_delta=100)
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(1.0)
    assert module.domains.domain("acme", CPU_TIME).usage == pytest.approx(1.5)
    assert module.domains.domain("acme", HEAP_MEMORY).usage == 100
    worker.context.account(memory_delta=-40)
    loop.run_for(1.0)
    assert module.domains.domain("acme", HEAP_MEMORY).usage == 60


def test_listeners_receive_reports(loop, manager):
    manager.create_instance("acme")
    module = MonitoringModule(loop, manager, interval=1.0)
    seen = []
    module.add_listener(seen.append)
    module.start()
    loop.run_for(2.0)
    assert len(seen) == 2
    assert seen[0].instance == "acme"


def test_stop_halts_sampling(loop, manager):
    manager.create_instance("acme")
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(1.0)
    module.stop()
    loop.run_for(5.0)
    assert module.ticks == 1


def test_node_summary_aggregates(loop, manager):
    a = manager.create_instance("a", quota=ResourceQuota(cpu_share=0.5))
    b = manager.create_instance("b", quota=ResourceQuota(cpu_share=0.5))
    wa = make_worker(a)
    wb = make_worker(b)
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(1.0)
    wa.context.account(cpu=0.2, memory_delta=100)
    wb.context.account(cpu=0.3, memory_delta=200)
    loop.run_for(1.0)
    summary = module.node_summary()
    assert summary["cpu_used_share"] == pytest.approx(0.5)
    assert summary["cpu_available_share"] == pytest.approx(0.5)
    assert summary["memory_used_bytes"] == 300
    assert summary["instances"] == 2


def test_forget_drops_history(loop, manager):
    manager.create_instance("acme")
    module = MonitoringModule(loop, manager, interval=1.0)
    module.start()
    loop.run_for(1.0)
    module.forget("acme")
    assert module.latest("acme") is None


def test_history_bounded(loop, manager):
    manager.create_instance("acme")
    module = MonitoringModule(loop, manager, interval=0.1, history_size=5)
    module.start()
    loop.run_for(2.0)
    assert len(module.history("acme")) == 5


def test_bundle_packaging_finds_instance_manager(loop, host):
    host.install(instance_manager_bundle()).start()
    bundle = host.install(monitoring_bundle(loop, interval=1.0))
    bundle.start()
    ref = host.system_context.get_service_reference(MONITORING_CLASS)
    assert ref is not None


def test_bundle_packaging_requires_instance_manager(loop, host):
    bundle = host.install(monitoring_bundle(loop))
    from repro.osgi.errors import BundleException

    with pytest.raises(BundleException):
        bundle.start()
