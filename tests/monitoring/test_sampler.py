"""The 2008 fallback sampler: bounded noise, no memory visibility."""

import random

import pytest

from repro.monitoring.sampler import ThreadSampler


def test_estimate_within_relative_error_band():
    sampler = ThreadSampler(random.Random(1), relative_error=0.2, tick_seconds=0.001)
    true_cpu = 10.0
    for _ in range(100):
        estimate = sampler.sample_cpu(true_cpu)
        assert 7.9 <= estimate <= 12.1  # 20% + tick rounding


def test_zero_error_reduces_to_quantization():
    sampler = ThreadSampler(random.Random(1), relative_error=0.0, tick_seconds=0.01)
    assert sampler.sample_cpu(1.004) == pytest.approx(1.0)
    assert sampler.sample_cpu(1.006) == pytest.approx(1.01)


def test_estimates_never_negative():
    sampler = ThreadSampler(random.Random(1), relative_error=0.9)
    for _ in range(50):
        assert sampler.sample_cpu(0.001) >= 0.0


def test_memory_is_invisible():
    sampler = ThreadSampler(random.Random(1))
    assert sampler.sample_memory(12345) is None


def test_samples_counted():
    sampler = ThreadSampler(random.Random(1))
    sampler.sample_cpu(1.0)
    sampler.sample_cpu(1.0)
    assert sampler.samples_taken == 2


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ThreadSampler(random.Random(1), relative_error=-0.1)
    with pytest.raises(ValueError):
        ThreadSampler(random.Random(1), tick_seconds=0)


def test_deterministic_given_seeded_rng():
    a = ThreadSampler(random.Random(7))
    b = ThreadSampler(random.Random(7))
    assert [a.sample_cpu(5.0) for _ in range(10)] == [
        b.sample_cpu(5.0) for _ in range(10)
    ]
