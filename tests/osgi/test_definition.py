"""BundleDefinition validation."""

import pytest

from repro.osgi.definition import BundleActivator, BundleDefinition, simple_bundle
from repro.osgi.errors import BundleException
from repro.osgi.manifest import Manifest


def test_export_without_content_rejected():
    manifest = Manifest.build("b", exports=("missing.pkg",))
    with pytest.raises(BundleException):
        BundleDefinition(manifest)


def test_declared_activator_without_factory_rejected():
    manifest = Manifest.build("b", activator="com.example.Activator")
    with pytest.raises(BundleException):
        BundleDefinition(manifest)


def test_private_packages_allowed_without_export():
    definition = simple_bundle("b", packages={"secret": {"X": 1}})
    assert "secret" in definition.packages


def test_create_activator_none_for_passive_bundles():
    assert simple_bundle("b").create_activator() is None


def test_create_activator_returns_fresh_instances():
    definition = simple_bundle("b", activator_factory=BundleActivator)
    first = definition.create_activator()
    second = definition.create_activator()
    assert first is not second


def test_activator_missing_methods_rejected():
    class NotAnActivator:
        pass

    definition = simple_bundle("b", activator_factory=NotAnActivator)
    with pytest.raises(BundleException):
        definition.create_activator()


def test_packages_copied_defensively():
    source = {"pkg": {"X": 1}}
    definition = simple_bundle("b", exports=("pkg",), packages=source)
    source["pkg"]["Y"] = 2
    assert "Y" not in definition.packages["pkg"]


def test_identity_accessors():
    definition = simple_bundle("name.here", version="3.1.4")
    assert definition.symbolic_name == "name.here"
    assert str(definition.version) == "3.1.4"
    assert definition.size_bytes > 0
