"""DynamicImport-Package: lazy wiring at class-load time."""

import pytest

from repro.osgi.bundle import BundleState
from repro.osgi.definition import BundleDefinition, simple_bundle
from repro.osgi.loader import ClassNotFoundError
from repro.osgi.manifest import Manifest

from tests.conftest import library_bundle


def dynamic_bundle(name, patterns):
    manifest = Manifest.build(name, version="1.0.0", dynamic_imports=patterns)
    return BundleDefinition(manifest)


def test_exact_dynamic_import_wires_on_first_load(framework):
    framework.install(library_bundle("util", "1.0.0", "dyn-thing"))
    app = framework.install(dynamic_bundle("app", ["util"]))
    app.start()
    assert "util" not in app.wires  # not wired at resolve time
    assert app.load_class("util.Thing") == "dyn-thing"
    assert "util" in app.wires  # permanent once established


def test_wildcard_prefix_pattern(framework):
    framework.install(library_bundle("com.acme.util", "1.0.0", "A"))
    app = framework.install(dynamic_bundle("app", ["com.acme.*"]))
    app.start()
    assert app.load_class("com.acme.util.Thing") == "A"
    with pytest.raises(ClassNotFoundError):
        app.load_class("org.other.Thing")


def test_universal_pattern(framework):
    framework.install(library_bundle("anything", "1.0.0", "X"))
    app = framework.install(dynamic_bundle("app", ["*"]))
    app.start()
    assert app.load_class("anything.Thing") == "X"


def test_no_exporter_falls_through_to_not_found(framework):
    app = framework.install(dynamic_bundle("app", ["ghost.*"]))
    app.start()
    with pytest.raises(ClassNotFoundError):
        app.load_class("ghost.pkg.Thing")
    # Bundle remains healthy; a later provider makes the load succeed.
    framework.install(library_bundle("ghost.pkg", "1.0.0", "late"))
    assert app.load_class("ghost.pkg.Thing") == "late"
    assert app.state == BundleState.ACTIVE


def test_dynamic_wire_resolves_exporter_transitively(framework):
    framework.install(
        simple_bundle("base", exports=("base",), packages={"base": {"T": 1}})
    )
    framework.install(
        simple_bundle(
            "lib",
            imports=("base",),
            exports=("lib.api",),
            packages={"lib.api": {"Thing": "L"}},
        )
    )
    app = framework.install(dynamic_bundle("app", ["lib.api"]))
    app.start()
    assert app.load_class("lib.api.Thing") == "L"
    assert framework.get_bundle_by_name("base").state == BundleState.RESOLVED


def test_static_import_preferred_over_dynamic(framework):
    framework.install(library_bundle("util", "1.0.0", "static"))
    manifest = Manifest.build(
        "app", version="1.0.0", imports=("util",), dynamic_imports=["*"]
    )
    app = framework.install(BundleDefinition(manifest))
    app.start()
    assert "util" in app.wires  # wired statically at resolution
    assert app.load_class("util.Thing") == "static"


def test_textual_header_parsed():
    manifest = Manifest.parse(
        "Bundle-SymbolicName: app\n"
        "DynamicImport-Package: com.acme.*, org.exact\n"
    )
    assert manifest.dynamic_imports == ("com.acme.*", "org.exact")


def test_dynamic_wire_survives_for_lifetime_of_wiring(framework):
    framework.install(library_bundle("util", "1.0.0", "first"))
    app = framework.install(dynamic_bundle("app", ["util"]))
    app.start()
    assert app.load_class("util.Thing") == "first"
    # A newer exporter appearing later does NOT re-route the wire.
    framework.install(library_bundle("util", "2.0.0", "second"))
    assert app.load_class("util.Thing") == "first"
