"""Event dispatcher: registration, isolation of failing listeners."""

from repro.osgi.events import (
    BundleEvent,
    BundleEventType,
    EventDispatcher,
    FrameworkEvent,
    FrameworkEventType,
    ServiceEvent,
    ServiceEventType,
)
from repro.osgi.filter import parse_filter


class FakeReference:
    def __init__(self, properties):
        self.properties = properties


def test_bundle_listener_receives_events():
    dispatcher = EventDispatcher()
    seen = []
    dispatcher.add_bundle_listener(seen.append)
    event = BundleEvent(BundleEventType.INSTALLED, "bundle")
    dispatcher.fire_bundle_event(event)
    assert seen == [event]


def test_duplicate_listener_registered_once():
    dispatcher = EventDispatcher()
    seen = []
    dispatcher.add_bundle_listener(seen.append)
    dispatcher.add_bundle_listener(seen.append)
    dispatcher.fire_bundle_event(BundleEvent(BundleEventType.INSTALLED, "b"))
    assert len(seen) == 1


def test_removed_listener_stops_receiving():
    dispatcher = EventDispatcher()
    seen = []
    dispatcher.add_bundle_listener(seen.append)
    dispatcher.remove_bundle_listener(seen.append)
    dispatcher.fire_bundle_event(BundleEvent(BundleEventType.INSTALLED, "b"))
    assert seen == []


def test_failing_listener_reported_not_propagated():
    dispatcher = EventDispatcher()
    errors = []
    dispatcher.add_framework_listener(errors.append)
    called_after = []

    def bad(event):
        raise RuntimeError("listener bug")

    dispatcher.add_bundle_listener(bad)
    dispatcher.add_bundle_listener(called_after.append)
    dispatcher.fire_bundle_event(BundleEvent(BundleEventType.STARTED, "b"))
    assert len(called_after) == 1
    assert len(errors) == 1
    assert errors[0].type == FrameworkEventType.ERROR


def test_failing_framework_listener_swallowed():
    dispatcher = EventDispatcher()

    def bad(event):
        raise RuntimeError("meta bug")

    dispatcher.add_framework_listener(bad)
    dispatcher.fire_framework_event(FrameworkEvent(FrameworkEventType.INFO))


def test_service_listener_filter_applies():
    dispatcher = EventDispatcher()
    seen = []
    dispatcher.add_service_listener(seen.append, parse_filter("(want=1)"))
    dispatcher.fire_service_event(
        ServiceEvent(ServiceEventType.REGISTERED, FakeReference({"want": 0}))
    )
    dispatcher.fire_service_event(
        ServiceEvent(ServiceEventType.REGISTERED, FakeReference({"want": 1}))
    )
    assert len(seen) == 1


def test_re_adding_service_listener_replaces_filter():
    dispatcher = EventDispatcher()
    seen = []
    dispatcher.add_service_listener(seen.append, parse_filter("(a=1)"))
    dispatcher.add_service_listener(seen.append, None)
    dispatcher.fire_service_event(
        ServiceEvent(ServiceEventType.REGISTERED, FakeReference({}))
    )
    assert len(seen) == 1


def test_clear_removes_everything():
    dispatcher = EventDispatcher()
    seen = []
    dispatcher.add_bundle_listener(seen.append)
    dispatcher.add_service_listener(seen.append)
    dispatcher.add_framework_listener(seen.append)
    dispatcher.clear()
    dispatcher.fire_bundle_event(BundleEvent(BundleEventType.INSTALLED, "b"))
    dispatcher.fire_framework_event(FrameworkEvent(FrameworkEventType.INFO))
    assert seen == []
