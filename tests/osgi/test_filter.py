"""LDAP filter parsing and matching, with a property-based round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.osgi.errors import InvalidSyntaxError
from repro.osgi.filter import Filter, parse_filter
from repro.osgi.version import Version


class TestParsing:
    def test_simple_equality(self):
        f = parse_filter("(name=felix)")
        assert f.kind == Filter.EQUAL
        assert f.attribute == "name"
        assert f.value == "felix"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(",
            ")",
            "(a=1",
            "a=1",
            "(=1)",
            "(&)",
            "(|)",
            "(!(a=1)(b=2))x",
            "(a=1)(b=2)",
            "(a~=fo*o)",
            "(a>=fo*o)",
        ],
    )
    def test_malformed_filters_raise(self, bad):
        with pytest.raises(InvalidSyntaxError):
            parse_filter(bad)

    def test_escaped_special_characters(self):
        f = parse_filter(r"(path=/tmp/\(x\)/\*)")
        assert f.matches({"path": "/tmp/(x)/*"})
        assert not f.matches({"path": "/tmp/x"})

    def test_whitespace_tolerated_around_nodes(self):
        f = parse_filter("(& (a=1) (b=2) )")
        assert f.matches({"a": 1, "b": 2})


class TestMatching:
    def test_and(self):
        f = parse_filter("(&(a=1)(b=2))")
        assert f.matches({"a": 1, "b": 2})
        assert not f.matches({"a": 1, "b": 3})

    def test_or(self):
        f = parse_filter("(|(a=1)(a=2))")
        assert f.matches({"a": 1})
        assert f.matches({"a": 2})
        assert not f.matches({"a": 3})

    def test_not(self):
        f = parse_filter("(!(a=1))")
        assert not f.matches({"a": 1})
        assert f.matches({"a": 2})

    def test_nested_composite(self):
        f = parse_filter("(&(|(x=1)(y=1))(!(z=1)))")
        assert f.matches({"x": 1, "z": 0})
        assert not f.matches({"x": 1, "z": 1})

    def test_missing_attribute_never_matches(self):
        assert not parse_filter("(ghost=1)").matches({})

    def test_presence(self):
        f = parse_filter("(a=*)")
        assert f.matches({"a": "anything"})
        assert f.matches({"a": 0})
        assert not f.matches({"b": 1})

    def test_attribute_names_case_insensitive(self):
        f = parse_filter("(ObjectClass=foo)")
        assert f.matches({"objectclass": "foo"})
        assert f.matches({"OBJECTCLASS": "foo"})

    def test_values_case_sensitive_for_equal(self):
        assert not parse_filter("(a=Foo)").matches({"a": "foo"})

    def test_approx_ignores_case_and_whitespace(self):
        f = parse_filter("(a~=Hello World)")
        assert f.matches({"a": "helloworld"})
        assert f.matches({"a": "HELLO WORLD"})
        assert not f.matches({"a": "hello"})

    def test_numeric_comparisons(self):
        assert parse_filter("(n>=3)").matches({"n": 5})
        assert not parse_filter("(n>=3)").matches({"n": 2})
        assert parse_filter("(n<=3)").matches({"n": 3})
        assert parse_filter("(n=3)").matches({"n": 3.0})

    def test_numeric_against_garbage_filter_value(self):
        assert not parse_filter("(n>=abc)").matches({"n": 5})

    def test_string_ordering(self):
        assert parse_filter("(s>=b)").matches({"s": "c"})
        assert not parse_filter("(s>=b)").matches({"s": "a"})

    def test_version_aware_comparison(self):
        props = {"v": Version.parse("1.5.0")}
        assert parse_filter("(v>=1.2)").matches(props)
        assert not parse_filter("(v>=2.0)").matches(props)
        assert parse_filter("(v=1.5.0)").matches(props)

    def test_boolean_property(self):
        assert parse_filter("(flag=true)").matches({"flag": True})
        assert not parse_filter("(flag=true)").matches({"flag": False})

    def test_list_property_matches_any_element(self):
        f = parse_filter("(objectClass=log.LogService)")
        assert f.matches({"objectClass": ["other", "log.LogService"]})
        assert not f.matches({"objectClass": ["other"]})

    def test_substring_patterns(self):
        assert parse_filter("(a=foo*)").matches({"a": "foobar"})
        assert parse_filter("(a=*bar)").matches({"a": "foobar"})
        assert parse_filter("(a=f*b*r)").matches({"a": "foobar"})
        assert not parse_filter("(a=f*z*r)").matches({"a": "foobar"})

    def test_substring_requires_non_overlapping_parts(self):
        assert not parse_filter("(a=ab*ba)").matches({"a": "aba"})
        assert parse_filter("(a=ab*ba)").matches({"a": "abba"})


_attr = st.sampled_from(["a", "b", "objectClass", "service-ranking"])
_value = st.text(
    alphabet=st.characters(blacklist_characters="()*\\\x00", min_codepoint=32),
    min_size=1,
    max_size=12,
)


@st.composite
def filters(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from(["=", ">=", "<=", "~="]))
        return "(%s%s%s)" % (draw(_attr), kind, draw(_value).strip() or "v")
    op = draw(st.sampled_from(["&", "|"]))
    children = draw(st.lists(filters(depth=depth - 1), min_size=1, max_size=3))
    return "(%s%s)" % (op, "".join(children))


@given(filters())
def test_generated_filters_parse(text):
    parse_filter(text)


@given(filters())
def test_render_reparse_matches_same(text):
    f = parse_filter(text)
    rendered = f._render()
    reparsed = parse_filter(rendered)
    for props in ({}, {"a": "v"}, {"objectClass": "v", "b": "v"}):
        assert f.matches(props) == reparsed.matches(props)


@given(st.dictionaries(_attr, st.one_of(_value, st.integers(-5, 5)), max_size=4))
def test_and_of_equals_matches_iff_all_present(props):
    clauses = "".join("(%s=%s)" % (k, v) for k, v in props.items())
    if not clauses:
        return
    f = parse_filter("(&%s)" % clauses)
    assert f.matches(props)
