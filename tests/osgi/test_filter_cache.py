"""parse_filter LRU cache + compiled-closure correctness."""

import pytest

from repro.osgi.errors import InvalidSyntaxError
from repro.osgi.filter import (
    parse_filter,
    parse_filter_cache_clear,
    parse_filter_cache_info,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    parse_filter_cache_clear()
    yield
    parse_filter_cache_clear()


def test_same_text_hits_cache_and_keeps_semantics():
    first = parse_filter("(&(a=1)(b>=2))")
    before = parse_filter_cache_info().hits
    second = parse_filter("(&(a=1)(b>=2))")
    assert parse_filter_cache_info().hits == before + 1
    assert second is first  # memoised object
    for props, expected in [
        ({"a": "1", "b": 3}, True),
        ({"a": "1", "b": 1}, False),
        ({"A": "1", "B": 5}, True),  # case-insensitive attributes
    ]:
        assert first.matches(props) is expected
        assert second.matches(props) is expected


def test_cache_hit_does_not_leak_state_between_callers():
    flt = parse_filter("(names=x*z)")
    props_a = {"names": ["xyz", "other"]}
    props_b = {"names": ["nope"]}
    assert flt.matches(props_a) is True
    # A second caller getting the cached object sees fresh evaluation,
    # and matching must never mutate the caller's dict.
    cached = parse_filter("(names=x*z)")
    snapshot = dict(props_b)
    assert cached.matches(props_b) is False
    assert props_b == snapshot
    # Mutating a property value between calls is observed (no stale
    # result captured inside the closure).
    props_b["names"].append("xaz")
    assert cached.matches(props_b) is True


def test_distinct_texts_are_distinct_entries():
    a = parse_filter("(x=1)")
    b = parse_filter("(x=2)")
    assert a is not b
    assert a.matches({"x": 1}) and not a.matches({"x": 2})
    assert b.matches({"x": 2}) and not b.matches({"x": 1})


def test_invalid_filter_raises_every_time():
    for _ in range(2):
        with pytest.raises(InvalidSyntaxError):
            parse_filter("(unterminated")
    with pytest.raises(InvalidSyntaxError):
        parse_filter("   ")
    with pytest.raises(InvalidSyntaxError):
        parse_filter(None)


def test_compiled_coercions_decided_per_node():
    # Numeric operand: compares numerically for numbers, lexically for text.
    flt = parse_filter("(level>=10)")
    assert flt.matches({"level": 11}) is True
    assert flt.matches({"level": 9}) is False
    # Text values fall back to lexicographic comparison ('9' > '1').
    assert flt.matches({"level": "9"}) is True


def test_objectclass_candidates_derivation():
    assert parse_filter("(objectClass=a.B)").objectclass_candidates() == {"a.B"}
    assert parse_filter(
        "(&(objectClass=a.B)(x=1))"
    ).objectclass_candidates() == {"a.B"}
    assert parse_filter(
        "(|(objectClass=a)(objectClass=b))"
    ).objectclass_candidates() == {"a", "b"}
    assert parse_filter("(|(objectClass=a)(x=1))").objectclass_candidates() is None
    assert parse_filter("(!(objectClass=a))").objectclass_candidates() is None
    assert parse_filter("(objectClass=a.*)").objectclass_candidates() is None
