"""Property tests: the LDAP filter parser/evaluator never crashes.

``parse_filter`` may reject input only with InvalidSyntaxError, and a
successfully parsed filter must evaluate any property dictionary without
raising — the service registry feeds it arbitrary service properties.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osgi.errors import InvalidSyntaxError
from repro.osgi.filter import parse_filter

settings.register_profile("repro", max_examples=50, deadline=None)
settings.load_profile("repro")

attribute_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABC_", min_size=1, max_size=8
)
attribute_values = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789._- ", min_size=0, max_size=10
)


@st.composite
def filter_strings(draw, depth=2):
    """Well-formed filter strings over the full RFC 1960 grammar."""
    if depth == 0 or draw(st.booleans()):
        name = draw(attribute_names)
        op = draw(st.sampled_from(["=", "~=", ">=", "<="]))
        if op == "=":
            # Only `=` admits presence (`=*`) and substring wildcards.
            value = draw(
                st.one_of(
                    attribute_values,
                    st.just("*"),
                    st.tuples(attribute_values, attribute_values).map(
                        lambda p: "%s*%s" % p
                    ),
                )
            )
        else:
            value = draw(attribute_values.filter(bool))
        return "(%s%s%s)" % (name, op, value)
    op = draw(st.sampled_from(["&", "|", "!"]))
    count = 1 if op == "!" else draw(st.integers(min_value=1, max_value=3))
    inner = "".join(draw(filter_strings(depth=depth - 1)) for _ in range(count))
    return "(%s%s)" % (op, inner)


property_values = st.one_of(
    st.text(max_size=10),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.lists(st.text(max_size=5), max_size=3),
)
property_dicts = st.dictionaries(
    attribute_names, property_values, max_size=4
)


@given(st.text(max_size=40))
def test_parse_raises_only_invalid_syntax_error(text):
    try:
        parse_filter(text)
    except InvalidSyntaxError:
        pass  # the only permitted failure mode


@given(filter_strings(), property_dicts)
def test_well_formed_filters_parse_and_evaluate(text, props):
    filt = parse_filter(text)
    assert filt.matches(props) in (True, False)


@given(filter_strings())
def test_parsed_filter_str_reparses(text):
    filt = parse_filter(text)
    again = parse_filter(str(filt))
    assert str(again) == str(filt)


@given(filter_strings(), property_dicts)
def test_negation_flips_the_verdict(text, props):
    filt = parse_filter(text)
    negated = parse_filter("(!%s)" % text)
    assert negated.matches(props) == (not filt.matches(props))


@given(st.text(max_size=40), property_dicts)
def test_arbitrary_text_never_crashes_the_pipeline(text, props):
    """End to end: parse anything, evaluate whatever parses."""
    try:
        filt = parse_filter(text)
    except InvalidSyntaxError:
        return
    assert filt.matches(props) in (True, False)
