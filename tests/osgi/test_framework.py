"""Framework lifecycle, persistence/restore, properties, visibility hooks."""

import pytest

from repro.osgi.bundle import BundleState
from repro.osgi.definition import simple_bundle
from repro.osgi.errors import FrameworkError
from repro.osgi.framework import Framework
from repro.osgi.persistence import InMemoryFrameworkStorage

from tests.conftest import RecordingActivator, library_bundle


def test_install_before_start_rejected():
    fw = Framework("f")
    with pytest.raises(FrameworkError):
        fw.install(simple_bundle("a"))


def test_system_bundle_active_while_running(framework):
    assert framework.system_bundle.state == BundleState.ACTIVE
    assert framework.system_bundle.bundle_id == 0


def test_system_context_unavailable_when_stopped():
    fw = Framework("f")
    with pytest.raises(FrameworkError):
        fw.system_context


def test_same_location_returns_existing_bundle(framework):
    b1 = framework.install(simple_bundle("a"), location="loc://a")
    b2 = framework.install(simple_bundle("a", version="9.9.9"), location="loc://a")
    assert b1 is b2
    assert str(b1.version) == "1.0.0"


def test_default_location_derived_from_identity(framework):
    bundle = framework.install(simple_bundle("a", version="2.0.0"))
    assert bundle.location == "bundle://a/2.0.0"


def test_get_bundle_by_name(framework):
    framework.install(simple_bundle("x"))
    assert framework.get_bundle_by_name("x") is not None
    assert framework.get_bundle_by_name("missing") is None


def test_framework_properties_visible_to_bundles():
    fw = Framework("f", properties={"greeting": "hello"})
    fw.start()
    activator = RecordingActivator()
    bundle = fw.install(simple_bundle("a", activator_factory=lambda: activator))
    bundle.start()
    assert activator.context.get_property("greeting") == "hello"
    assert activator.context.get_property("missing", "dflt") == "dflt"


class TestPersistence:
    def test_restart_restores_bundles_and_states(self):
        storage = InMemoryFrameworkStorage()
        fw = Framework("env", storage=storage)
        fw.start()
        fw.install(library_bundle("lib", "1.0.0"))
        app = fw.install(simple_bundle("app", imports=("lib",)))
        app.start()
        fw.stop()

        fw2 = Framework("env", storage=storage, repository=fw.repository)
        fw2.start()
        names = {b.symbolic_name: b.state for b in fw2.bundles()}
        assert names["app"] == BundleState.ACTIVE
        assert names["lib"] == BundleState.RESOLVED

    def test_stopped_bundle_restored_stopped(self):
        storage = InMemoryFrameworkStorage()
        fw = Framework("env", storage=storage)
        fw.start()
        bundle = fw.install(simple_bundle("a"))
        bundle.start()
        bundle.stop()
        fw.stop()

        fw2 = Framework("env", storage=storage, repository=fw.repository)
        fw2.start()
        restored = fw2.get_bundle_by_name("a")
        assert restored.state in (BundleState.INSTALLED, BundleState.RESOLVED)

    def test_crash_recovers_thanks_to_autopersist(self):
        storage = InMemoryFrameworkStorage()
        fw = Framework("env", storage=storage)
        fw.start()
        fw.install(simple_bundle("a")).start()
        # No fw.stop(): simulate a crash by abandoning the object.
        fw2 = Framework("env", storage=storage, repository=fw.repository)
        fw2.start()
        assert fw2.get_bundle_by_name("a").state == BundleState.ACTIVE

    def test_missing_definition_warns_and_skips(self):
        storage = InMemoryFrameworkStorage()
        fw = Framework("env", storage=storage)
        fw.start()
        fw.install(simple_bundle("a")).start()
        fw.stop()

        warnings = []
        fw2 = Framework("env", storage=storage, repository={})
        fw2.dispatcher.add_framework_listener(warnings.append)
        fw2.start()
        assert fw2.bundles() == []
        assert any("no definition" in w.message for w in warnings)

    def test_definition_resolver_fallback_used(self):
        storage = InMemoryFrameworkStorage()
        fw = Framework("env", storage=storage)
        fw.start()
        bundle = fw.install(simple_bundle("a"))
        bundle.start()
        location = bundle.location
        definition = bundle.definition
        fw.stop()

        fw2 = Framework(
            "env",
            storage=storage,
            definition_resolver=lambda loc: definition if loc == location else None,
        )
        fw2.start()
        assert fw2.get_bundle_by_name("a").state == BundleState.ACTIVE

    def test_distinct_instance_ids_do_not_share_state(self):
        storage = InMemoryFrameworkStorage()
        fw = Framework("one", storage=storage)
        fw.start()
        fw.install(simple_bundle("a"))
        fw.stop()
        other = Framework("two", storage=storage, repository=fw.repository)
        other.start()
        assert other.bundles() == []

    def test_restart_same_object_possible(self):
        storage = InMemoryFrameworkStorage()
        fw = Framework("env", storage=storage)
        fw.start()
        fw.install(simple_bundle("a")).start()
        fw.stop()
        assert not fw.active
        fw.start()
        assert fw.active
        # The bundle is still installed in this same object.
        assert fw.get_bundle_by_name("a") is not None


class TestVisibilityHooks:
    def test_hook_filters_lookups(self, framework):
        framework.system_context.register_service("x.S", "secret", {"tenant": "a"})
        framework.system_context.register_service("x.S", "public", {"tenant": "b"})

        framework.add_visibility_hook(
            lambda bundle, ref: ref.get_property("tenant") == "b"
        )
        ref = framework.system_context.get_service_reference("x.S")
        assert framework.system_context.get_service(ref) == "public"
        refs = framework.system_context.get_service_references("x.S")
        assert len(refs) == 1

    def test_hook_removal_restores_visibility(self, framework):
        framework.system_context.register_service("x.S", object())
        hook = lambda bundle, ref: False  # noqa: E731
        framework.add_visibility_hook(hook)
        assert framework.system_context.get_service_reference("x.S") is None
        framework.remove_visibility_hook(hook)
        assert framework.system_context.get_service_reference("x.S") is not None


def test_memory_footprint_counts_bundles_and_services(framework):
    empty = framework.memory_footprint()
    framework.install(simple_bundle("a", size_bytes=1000))
    framework.system_context.register_service("x", object())
    assert framework.memory_footprint() >= empty + 1000 + 512


def test_counters_track_operations(framework):
    bundle = framework.install(simple_bundle("a"))
    bundle.start()
    bundle.stop()
    assert framework.counters["installs"] == 1
    assert framework.counters["starts"] == 1
    assert framework.counters["stops"] == 1
