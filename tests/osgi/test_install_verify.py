"""``Framework.install(..., verify=True)``: the static verifier as an
install-time gate, raising VerificationError with the same diagnostic
codes the CLI reports."""

import pytest

from repro.osgi.definition import simple_bundle
from repro.osgi.errors import BundleException, VerificationError
from repro.osgi.framework import Framework


@pytest.fixture
def framework():
    fw = Framework("verify-test")
    fw.start()
    yield fw
    fw.stop()


def exporter(version="1.0.0"):
    return simple_bundle(
        "exp",
        version=version,
        exports=('pkg.api;version="%s"' % version,),
        packages={"pkg.api": {}},
    )


def test_unresolvable_import_is_rejected(framework):
    bad = simple_bundle("imp", imports=("missing.pkg",))
    with pytest.raises(VerificationError) as excinfo:
        framework.install(bad, verify=True)
    error = excinfo.value
    assert isinstance(error, BundleException)
    assert [d.code for d in error.diagnostics] == ["VER001"]
    assert "imp" in str(error)
    assert "VER001" in str(error)
    # The rejected bundle must not be left half-installed.
    assert [b.symbolic_name for b in framework.bundles()] == []


def test_diagnostics_round_trip_like_the_cli(framework):
    """The exception carries the same Diagnostic objects the CLI would
    serialise — to_dict() gives the identical JSON shape."""
    bad = simple_bundle("imp", imports=("missing.pkg",))
    with pytest.raises(VerificationError) as excinfo:
        framework.install(bad, verify=True)
    payload = [d.to_dict() for d in excinfo.value.diagnostics]
    assert payload[0]["code"] == "VER001"
    assert payload[0]["severity"] == "error"
    assert payload[0]["source"] == "imp"


def test_installed_exporter_satisfies_the_import(framework):
    framework.install(exporter(), verify=True)
    consumer = simple_bundle("imp", imports=('pkg.api;version="[1.0,2.0)"',))
    bundle = framework.install(consumer, verify=True)
    bundle.start()
    assert bundle.state.name == "ACTIVE"


def test_system_bundle_exports_count_as_context(framework):
    consumer = simple_bundle("fw-user", imports=("org.osgi.framework",))
    bundle = framework.install(consumer, verify=True)
    assert bundle.symbolic_name == "fw-user"


def test_verify_defaults_off(framework):
    # Without verify=True an unresolvable import still installs fine and
    # only fails at resolution time — the pre-existing contract.
    bad = simple_bundle("imp", imports=("missing.pkg",))
    bundle = framework.install(bad)
    assert bundle.symbolic_name == "imp"


def test_warnings_do_not_block_install(framework):
    a = exporter()
    framework.install(a, verify=True)
    # Duplicate export at the same version is VER003, a warning.
    duplicate = simple_bundle(
        "exp2", exports=('pkg.api;version="1.0.0"',), packages={"pkg.api": {}}
    )
    bundle = framework.install(duplicate, verify=True)
    assert bundle.symbolic_name == "exp2"


def test_reinstall_same_location_skips_verification(framework):
    bad = simple_bundle("imp", imports=("missing.pkg",))
    first = framework.install(bad, location="bundle://imp")
    # Reinstalling an existing location returns the live bundle; OSGi
    # semantics say this is not a fresh install, so no re-verification.
    again = framework.install(bad, location="bundle://imp", verify=True)
    assert again is first


def test_context_install_bundle_passes_verify_through(framework):
    host = framework.install(exporter())
    host.start()
    bad = simple_bundle("imp", imports=("missing.pkg",))
    with pytest.raises(VerificationError):
        host.context.install_bundle(bad, verify=True)
    good = simple_bundle("imp2", imports=("pkg.api",))
    assert host.context.install_bundle(good, verify=True).symbolic_name == "imp2"
