"""Bundle lifecycle: the OSGi state machine, activators, update, uninstall."""

import pytest

from repro.osgi.bundle import BundleState
from repro.osgi.definition import simple_bundle
from repro.osgi.errors import BundleException
from repro.osgi.events import BundleEventType

from tests.conftest import (
    FailingStartActivator,
    FailingStopActivator,
    RecordingActivator,
    library_bundle,
)


def test_install_puts_bundle_in_installed(framework):
    bundle = framework.install(simple_bundle("a"))
    assert bundle.state == BundleState.INSTALLED


def test_start_transitions_to_active(framework):
    bundle = framework.install(simple_bundle("a"))
    bundle.start()
    assert bundle.state == BundleState.ACTIVE


def test_start_is_idempotent(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    bundle.start()
    assert activator.events == ["start"]


def test_stop_returns_to_resolved(framework):
    bundle = framework.install(simple_bundle("a"))
    bundle.start()
    bundle.stop()
    assert bundle.state == BundleState.RESOLVED


def test_stop_when_not_active_is_noop(framework):
    bundle = framework.install(simple_bundle("a"))
    bundle.stop()
    assert bundle.state == BundleState.INSTALLED


def test_activator_receives_valid_context(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    assert activator.context is not None
    assert activator.context.bundle is bundle


def test_failing_start_rolls_back_to_resolved(framework):
    bundle = framework.install(
        simple_bundle("a", activator_factory=FailingStartActivator)
    )
    with pytest.raises(BundleException) as excinfo:
        bundle.start()
    assert excinfo.value.type == BundleException.ACTIVATOR_ERROR
    assert bundle.state == BundleState.RESOLVED
    assert bundle.context is None


def test_failing_stop_still_stops_bundle(framework):
    bundle = framework.install(
        simple_bundle("a", activator_factory=FailingStopActivator)
    )
    bundle.start()
    with pytest.raises(BundleException):
        bundle.stop()
    assert bundle.state == BundleState.RESOLVED


def test_stop_unregisters_bundle_services(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    activator.context.register_service("x.Svc", object())
    assert framework.registry.get_reference("x.Svc") is not None
    bundle.stop()
    assert framework.registry.get_reference("x.Svc") is None


def test_context_invalid_after_stop(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    context = activator.context
    bundle.stop()
    with pytest.raises(BundleException):
        context.register_service("x", object())


def test_lifecycle_events_in_order(framework):
    events = []
    framework.dispatcher.add_bundle_listener(
        lambda e: events.append((e.type, e.bundle.symbolic_name))
    )
    bundle = framework.install(simple_bundle("a"))
    bundle.start()
    bundle.stop()
    bundle.uninstall()
    kinds = [k for k, name in events if name == "a"]
    assert kinds == [
        BundleEventType.INSTALLED,
        BundleEventType.RESOLVED,
        BundleEventType.STARTING,
        BundleEventType.STARTED,
        BundleEventType.STOPPING,
        BundleEventType.STOPPED,
        BundleEventType.UNRESOLVED,
        BundleEventType.UNINSTALLED,
    ]


def test_uninstall_active_bundle_stops_it_first(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    bundle.uninstall()
    assert activator.events == ["start", "stop"]
    assert bundle.state == BundleState.UNINSTALLED


def test_operations_on_uninstalled_bundle_raise(framework):
    bundle = framework.install(simple_bundle("a"))
    bundle.uninstall()
    for operation in (bundle.start, bundle.stop, bundle.uninstall):
        with pytest.raises(BundleException):
            operation()


def test_uninstalled_bundle_gone_from_framework(framework):
    bundle = framework.install(simple_bundle("a"))
    bundle_id = bundle.bundle_id
    bundle.uninstall()
    assert framework.get_bundle(bundle_id) is None


def test_update_replaces_definition_and_restarts(framework):
    activator_v2 = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", version="1.0.0", activator_factory=RecordingActivator)
    )
    bundle.start()
    bundle.update(
        simple_bundle("a", version="2.0.0", activator_factory=lambda: activator_v2)
    )
    assert str(bundle.version) == "2.0.0"
    assert bundle.state == BundleState.ACTIVE
    assert activator_v2.events == ["start"]


def test_update_stopped_bundle_stays_stopped(framework):
    bundle = framework.install(simple_bundle("a", version="1.0.0"))
    bundle.update(simple_bundle("a", version="2.0.0"))
    assert bundle.state == BundleState.INSTALLED


def test_update_fires_updated_event(framework):
    events = []
    framework.dispatcher.add_bundle_listener(lambda e: events.append(e.type))
    bundle = framework.install(simple_bundle("a"))
    bundle.update(simple_bundle("a", version="2.0.0"))
    assert BundleEventType.UPDATED in events


def test_update_rewires_dependents_on_next_resolve(framework):
    framework.install(library_bundle("lib", "1.0.0", symbol_value="v1"))
    consumer = framework.install(
        simple_bundle("app", imports=("lib;version=\"[1.0,3.0)\"",))
    )
    consumer.start()
    assert consumer.load_class("lib.Thing") == "v1"


def test_ledger_accounting_via_context(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    activator.context.account(cpu=0.5, memory_delta=100, disk_delta=10)
    activator.context.account(cpu=0.25, memory_delta=-30)
    snapshot = bundle.ledger.snapshot()
    assert snapshot["cpu_seconds"] == 0.75
    assert snapshot["memory_bytes"] == 70
    assert snapshot["disk_bytes"] == 10


def test_negative_cpu_account_rejected(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    with pytest.raises(ValueError):
        activator.context.account(cpu=-1.0)


def test_memory_never_goes_negative(framework):
    bundle = framework.install(simple_bundle("a"))
    bundle.ledger.account(memory_delta=-500)
    assert bundle.ledger.memory_bytes == 0


def test_data_store_persists_across_restart(framework):
    activator = RecordingActivator()
    bundle = framework.install(
        simple_bundle("a", activator_factory=lambda: activator)
    )
    bundle.start()
    activator.context.get_data_store()["key"] = {"nested": [1, 2, 3]}
    bundle.stop()
    bundle.start()
    fresh = bundle.context.get_data_store()
    assert fresh["key"] == {"nested": [1, 2, 3]}


def test_update_preserves_data_area(framework):
    """The data area is keyed by symbolic name, so a bundle update (new
    code, same identity) keeps the persistent state — the OSGi contract
    stateful services rely on across upgrades."""
    activator_v1 = RecordingActivator()
    bundle = framework.install(
        simple_bundle("svc", version="1.0.0", activator_factory=lambda: activator_v1)
    )
    bundle.start()
    activator_v1.context.get_data_store()["orders"] = [1, 2]

    activator_v2 = RecordingActivator()
    bundle.update(
        simple_bundle("svc", version="2.0.0", activator_factory=lambda: activator_v2)
    )
    assert activator_v2.context.get_data_store()["orders"] == [1, 2]
