"""Service-listener indexing by objectClass in the EventDispatcher."""

from repro.osgi.events import EventDispatcher, ServiceEventType
from repro.osgi.filter import parse_filter
from repro.osgi.registry import ServiceRegistry


def make():
    dispatcher = EventDispatcher()
    return dispatcher, ServiceRegistry(dispatcher)


def test_class_scoped_listener_only_sees_its_class():
    dispatcher, registry = make()
    seen = []
    dispatcher.add_service_listener(seen.append, classes=("wanted",))
    registry.register(object(), "other", object())
    assert seen == []
    registration = registry.register(object(), "wanted", object())
    assert [e.type for e in seen] == [ServiceEventType.REGISTERED]
    registration.set_properties({"x": 1})
    registration.unregister()
    assert [e.type for e in seen] == [
        ServiceEventType.REGISTERED,
        ServiceEventType.MODIFIED,
        ServiceEventType.UNREGISTERING,
    ]


def test_interest_set_derived_from_filter():
    dispatcher, registry = make()
    seen = []
    dispatcher.add_service_listener(
        seen.append, parse_filter("(&(objectClass=wanted)(grade>=3))")
    )
    registry.register(object(), "other", object(), {"grade": 9})
    registry.register(object(), "wanted", object(), {"grade": 1})
    assert seen == []  # right class, filter rejects
    registry.register(object(), "wanted", object(), {"grade": 5})
    assert len(seen) == 1


def test_wildcard_listener_still_sees_everything():
    dispatcher, registry = make()
    wildcard, scoped = [], []
    dispatcher.add_service_listener(wildcard.append)
    dispatcher.add_service_listener(scoped.append, classes=("a",))
    registry.register(object(), "a", object())
    registry.register(object(), "b", object())
    assert len(wildcard) == 2
    assert len(scoped) == 1


def test_multi_class_event_delivers_once_in_registration_order():
    dispatcher, registry = make()
    order = []
    dispatcher.add_service_listener(lambda e: order.append("both"), classes=("a", "b"))
    dispatcher.add_service_listener(lambda e: order.append("wild"))
    dispatcher.add_service_listener(lambda e: order.append("only-b"), classes=("b",))
    registry.register(object(), ("a", "b"), object())
    assert order == ["both", "wild", "only-b"]


def test_removed_listener_leaves_index_clean():
    dispatcher, registry = make()
    seen = []
    listener = seen.append
    dispatcher.add_service_listener(listener, classes=("a",))
    dispatcher.remove_service_listener(listener)
    registry.register(object(), "a", object())
    assert seen == []
    assert dispatcher._service_index == {}
