"""Manifest parsing: headers, continuation lines, clause grammar."""

import pytest

from repro.osgi.errors import BundleException
from repro.osgi.manifest import (
    ExportedPackage,
    ImportedPackage,
    Manifest,
    parse_clause,
    parse_headers,
    split_clauses,
)
from repro.osgi.version import Version, VersionRange


class TestHeaderParsing:
    def test_simple_headers(self):
        headers = parse_headers("A: one\nB: two\n")
        assert headers == {"A": "one", "B": "two"}

    def test_continuation_lines(self):
        text = "Import-Package: aaa,\n bbb,\n ccc\n"
        headers = parse_headers(text)
        assert headers["Import-Package"] == "aaa,bbb,ccc"

    def test_continuation_without_header_raises(self):
        with pytest.raises(BundleException):
            parse_headers(" orphan continuation\n")

    def test_line_without_colon_raises(self):
        with pytest.raises(BundleException):
            parse_headers("garbage line\n")

    def test_blank_line_resets_continuation(self):
        headers = parse_headers("A: one\n\nB: two\n")
        assert headers == {"A": "one", "B": "two"}


class TestClauseSplitting:
    def test_commas_split_clauses(self):
        assert split_clauses("a, b ,c") == ["a", "b", "c"]

    def test_commas_inside_quotes_do_not_split(self):
        clauses = split_clauses('a;version="[1.0,2.0)", b')
        assert clauses == ['a;version="[1.0,2.0)"', "b"]

    def test_empty_value_yields_nothing(self):
        assert split_clauses("") == []

    def test_parse_clause_paths_attrs_directives(self):
        paths, attrs, directives = parse_clause(
            'x.y;version="1.2";resolution:=optional'
        )
        assert paths == ["x.y"]
        assert attrs == {"version": "1.2"}
        assert directives == {"resolution": "optional"}

    def test_parse_clause_no_path_raises(self):
        with pytest.raises(BundleException):
            parse_clause('version="1.0"')


class TestManifestBuild:
    def test_build_minimal(self):
        m = Manifest.build("my.bundle")
        assert m.symbolic_name == "my.bundle"
        assert m.version == Version(0, 0, 0)

    def test_build_with_versioned_clauses(self):
        m = Manifest.build(
            "b",
            version="2.1.0",
            imports=('log;version="[1.0,2.0)"', "http"),
            exports=('api;version="2.1.0"',),
        )
        assert m.imports[0] == ImportedPackage(
            "log", VersionRange.parse("[1.0,2.0)")
        )
        assert m.imports[1].version_range.includes("0.0.0")
        assert m.exports[0] == ExportedPackage("api", Version.parse("2.1.0"))

    def test_optional_import_directive(self):
        m = Manifest.build("b", imports=("maybe;resolution:=optional",))
        assert m.imports[0].optional

    def test_empty_symbolic_name_rejected(self):
        with pytest.raises(BundleException):
            Manifest("")

    def test_duplicate_exports_rejected(self):
        with pytest.raises(BundleException):
            Manifest.build("b", exports=("p", 'p;version="2.0"'))

    def test_duplicate_imports_rejected(self):
        with pytest.raises(BundleException):
            Manifest.build("b", imports=("p", "p"))


class TestManifestTextual:
    MF = """Bundle-ManifestVersion: 2
Bundle-SymbolicName: com.example.app
Bundle-Version: 3.2.1
Bundle-Activator: com.example.Activator
Import-Package: org.osgi.framework;version="1.4",
 com.example.util;version="[1.0,2.0)";resolution:=optional
Export-Package: com.example.api;version="3.2.1";vendor="example"
X-Custom: hello
"""

    def test_parse_full_manifest(self):
        m = Manifest.parse(self.MF)
        assert m.symbolic_name == "com.example.app"
        assert m.version == Version.parse("3.2.1")
        assert m.activator == "com.example.Activator"
        assert len(m.imports) == 2
        assert m.imports[1].optional
        assert m.exports[0].version == Version.parse("3.2.1")
        assert dict(m.exports[0].attributes) == {"vendor": "example"}
        assert m.headers["X-Custom"] == "hello"

    def test_missing_symbolic_name_raises(self):
        with pytest.raises(BundleException):
            Manifest.parse("Bundle-Version: 1.0\n")

    def test_to_text_reparse_roundtrip(self):
        original = Manifest.parse(self.MF)
        reparsed = Manifest.parse(original.to_text())
        assert reparsed.symbolic_name == original.symbolic_name
        assert reparsed.version == original.version
        assert reparsed.imports == original.imports
        assert reparsed.exports == original.exports
        assert reparsed.headers.get("X-Custom") == "hello"
