"""Property tests: Manifest survives a to_text -> parse round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osgi.manifest import (
    ExportedPackage,
    ImportedPackage,
    Manifest,
)
from repro.osgi.version import Version, VersionRange

settings.register_profile("repro", max_examples=50, deadline=None)
settings.load_profile("repro")

package_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz",
        min_size=1,
        max_size=8,
    ),
    min_size=1,
    max_size=3,
).map(".".join)

components = st.integers(min_value=0, max_value=99)
versions = st.builds(Version, components, components, components)
ranges = st.one_of(
    st.builds(VersionRange, versions),
    st.builds(
        VersionRange,
        versions,
        versions,
        floor_inclusive=st.booleans(),
        ceiling_inclusive=st.booleans(),
    ),
)

imports = st.builds(
    ImportedPackage,
    name=package_names,
    version_range=ranges,
    optional=st.booleans(),
)
exports = st.builds(
    ExportedPackage,
    name=package_names,
    version=versions,
)


def unique_by_name(clauses):
    return st.lists(clauses, max_size=4, unique_by=lambda c: c.name)


manifests = st.builds(
    Manifest,
    symbolic_name=package_names,
    version=versions,
    imports=unique_by_name(imports),
    exports=unique_by_name(exports),
    activator=st.one_of(st.just(""), package_names),
)


@given(manifests)
def test_to_text_parse_round_trip(manifest):
    rebuilt = Manifest.parse(manifest.to_text())
    assert rebuilt.symbolic_name == manifest.symbolic_name
    assert rebuilt.version == manifest.version
    assert rebuilt.imports == manifest.imports
    assert rebuilt.exports == manifest.exports
    assert rebuilt.activator == manifest.activator


@given(manifests)
def test_round_trip_is_stable(manifest):
    """A second trip through text changes nothing further."""
    once = Manifest.parse(manifest.to_text())
    twice = Manifest.parse(once.to_text())
    assert twice.to_text() == once.to_text()


@given(manifests)
def test_clause_strings_rebuild_identically(manifest):
    """Each rendered clause re-parses to the same dataclass through the
    compact Manifest.build path too."""
    rebuilt = Manifest.build(
        manifest.symbolic_name,
        version=str(manifest.version),
        imports=[str(i) for i in manifest.imports],
        exports=[str(e) for e in manifest.exports],
    )
    assert rebuilt.imports == manifest.imports
    assert rebuilt.exports == manifest.exports
