"""Service registry: registration, lookup, ranking, use counts, factories."""

import pytest

from repro.osgi.errors import ServiceException
from repro.osgi.events import EventDispatcher, ServiceEventType
from repro.osgi.registry import (
    OBJECTCLASS,
    SERVICE_RANKING,
    ServiceFactory,
    ServiceRegistry,
)


@pytest.fixture
def dispatcher():
    return EventDispatcher()


@pytest.fixture
def registry(dispatcher):
    return ServiceRegistry(dispatcher)


BUNDLE_A = object()
BUNDLE_B = object()


class TestRegistration:
    def test_register_and_lookup(self, registry):
        svc = object()
        registry.register(BUNDLE_A, "x.Service", svc)
        ref = registry.get_reference("x.Service")
        assert ref is not None
        assert registry.get_service(BUNDLE_B, ref) is svc

    def test_multiple_object_classes(self, registry):
        registry.register(BUNDLE_A, ("x.A", "x.B"), object())
        assert registry.get_reference("x.A") is not None
        assert registry.get_reference("x.B") is not None

    def test_none_service_rejected(self, registry):
        with pytest.raises(ServiceException):
            registry.register(BUNDLE_A, "x", None)

    def test_empty_classes_rejected(self, registry):
        with pytest.raises(ServiceException):
            registry.register(BUNDLE_A, (), object())

    def test_service_ids_are_increasing(self, registry):
        r1 = registry.register(BUNDLE_A, "x", object())
        r2 = registry.register(BUNDLE_A, "x", object())
        assert r2.reference.service_id > r1.reference.service_id

    def test_registered_event_fired(self, registry, dispatcher):
        events = []
        dispatcher.add_service_listener(events.append)
        registry.register(BUNDLE_A, "x", object())
        assert [e.type for e in events] == [ServiceEventType.REGISTERED]


class TestLookup:
    def test_filter_narrows(self, registry):
        registry.register(BUNDLE_A, "x", object(), {"color": "red"})
        registry.register(BUNDLE_A, "x", object(), {"color": "blue"})
        refs = registry.get_references("x", "(color=blue)")
        assert len(refs) == 1
        assert refs[0].get_property("color") == "blue"

    def test_lookup_without_class_scans_all(self, registry):
        registry.register(BUNDLE_A, "x", object(), {"k": 1})
        registry.register(BUNDLE_A, "y", object(), {"k": 1})
        assert len(registry.get_references(None, "(k=1)")) == 2

    def test_ranking_orders_best_first(self, registry):
        registry.register(BUNDLE_A, "x", "low", {SERVICE_RANKING: 1})
        registry.register(BUNDLE_A, "x", "high", {SERVICE_RANKING: 10})
        best = registry.get_reference("x")
        assert registry.get_service(BUNDLE_B, best) == "high"

    def test_tie_broken_by_oldest_registration(self, registry):
        registry.register(BUNDLE_A, "x", "first")
        registry.register(BUNDLE_A, "x", "second")
        best = registry.get_reference("x")
        assert registry.get_service(BUNDLE_B, best) == "first"

    def test_non_integer_ranking_treated_as_zero(self, registry):
        registry.register(BUNDLE_A, "x", "weird", {SERVICE_RANKING: "9"})
        registry.register(BUNDLE_A, "x", "normal", {SERVICE_RANKING: 1})
        best = registry.get_reference("x")
        assert registry.get_service(BUNDLE_B, best) == "normal"

    def test_missing_service_returns_none(self, registry):
        assert registry.get_reference("ghost") is None


class TestUnregistration:
    def test_unregister_removes_and_fires(self, registry, dispatcher):
        events = []
        dispatcher.add_service_listener(events.append)
        registration = registry.register(BUNDLE_A, "x", object())
        registration.unregister()
        assert registry.get_reference("x") is None
        assert events[-1].type == ServiceEventType.UNREGISTERING

    def test_double_unregister_raises(self, registry):
        registration = registry.register(BUNDLE_A, "x", object())
        registration.unregister()
        with pytest.raises(ServiceException):
            registration.unregister()

    def test_get_service_after_unregister_returns_none(self, registry):
        registration = registry.register(BUNDLE_A, "x", object())
        ref = registration.reference
        registration.unregister()
        assert registry.get_service(BUNDLE_B, ref) is None

    def test_unregister_all_for_bundle(self, registry):
        registry.register(BUNDLE_A, "x", object())
        registry.register(BUNDLE_A, "y", object())
        registry.register(BUNDLE_B, "z", object())
        assert registry.unregister_all(BUNDLE_A) == 2
        assert registry.size == 1


class TestProperties:
    def test_set_properties_fires_modified(self, registry, dispatcher):
        events = []
        registration = registry.register(BUNDLE_A, "x", object(), {"v": 1})
        dispatcher.add_service_listener(events.append)
        registration.set_properties({"v": 2})
        assert events[0].type == ServiceEventType.MODIFIED
        assert registration.reference.get_property("v") == 2

    def test_objectclass_and_id_pinned(self, registry):
        registration = registry.register(BUNDLE_A, "x", object())
        original_id = registration.reference.service_id
        registration.set_properties({OBJECTCLASS: ("hijack",), "service.id": 999})
        assert registration.reference.object_classes == ("x",)
        assert registration.reference.service_id == original_id

    def test_filtered_listener_only_sees_matches(self, registry, dispatcher):
        from repro.osgi.filter import parse_filter

        events = []
        dispatcher.add_service_listener(events.append, parse_filter("(want=yes)"))
        registry.register(BUNDLE_A, "x", object(), {"want": "no"})
        registry.register(BUNDLE_A, "x", object(), {"want": "yes"})
        assert len(events) == 1


class TestUseCounts:
    def test_use_counting(self, registry):
        registration = registry.register(BUNDLE_A, "x", object())
        ref = registration.reference
        registry.get_service(BUNDLE_B, ref)
        registry.get_service(BUNDLE_B, ref)
        assert BUNDLE_B in ref.using_bundles
        assert registry.unget_service(BUNDLE_B, ref) is True
        assert BUNDLE_B in ref.using_bundles
        assert registry.unget_service(BUNDLE_B, ref) is True
        assert BUNDLE_B not in ref.using_bundles

    def test_unget_without_use_returns_false(self, registry):
        registration = registry.register(BUNDLE_A, "x", object())
        assert registry.unget_service(BUNDLE_B, registration.reference) is False

    def test_release_all_clears_uses(self, registry):
        registration = registry.register(BUNDLE_A, "x", object())
        registry.get_service(BUNDLE_B, registration.reference)
        registry.release_all(BUNDLE_B)
        assert registration.reference.using_bundles == []

    def test_in_use_by_and_services_of(self, registry):
        registration = registry.register(BUNDLE_A, "x", object())
        registry.get_service(BUNDLE_B, registration.reference)
        assert registry.services_of(BUNDLE_A) == [registration.reference]
        assert registry.in_use_by(BUNDLE_B) == [registration.reference]


class CountingFactory(ServiceFactory):
    def __init__(self):
        self.created = 0
        self.released = []

    def get_service(self, bundle, registration):
        self.created += 1
        return "instance-%d" % self.created

    def unget_service(self, bundle, registration, service):
        self.released.append(service)


class TestServiceFactory:
    def test_distinct_instance_per_bundle(self, registry):
        factory = CountingFactory()
        registration = registry.register(BUNDLE_A, "x", factory)
        ref = registration.reference
        a = registry.get_service(BUNDLE_A, ref)
        b = registry.get_service(BUNDLE_B, ref)
        assert a != b
        assert factory.created == 2

    def test_same_bundle_gets_cached_instance(self, registry):
        factory = CountingFactory()
        ref = registry.register(BUNDLE_A, "x", factory).reference
        first = registry.get_service(BUNDLE_B, ref)
        second = registry.get_service(BUNDLE_B, ref)
        assert first is second
        assert factory.created == 1

    def test_unget_releases_factory_instance(self, registry):
        factory = CountingFactory()
        ref = registry.register(BUNDLE_A, "x", factory).reference
        instance = registry.get_service(BUNDLE_B, ref)
        registry.unget_service(BUNDLE_B, ref)
        assert factory.released == [instance]

    def test_factory_error_wrapped(self, registry):
        class Broken(ServiceFactory):
            def get_service(self, bundle, registration):
                raise RuntimeError("nope")

        ref = registry.register(BUNDLE_A, "x", Broken()).reference
        with pytest.raises(ServiceException):
            registry.get_service(BUNDLE_B, ref)

    def test_factory_returning_none_rejected(self, registry):
        class NoneFactory(ServiceFactory):
            def get_service(self, bundle, registration):
                return None

        ref = registry.register(BUNDLE_A, "x", NoneFactory()).reference
        with pytest.raises(ServiceException):
            registry.get_service(BUNDLE_B, ref)
