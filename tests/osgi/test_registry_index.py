"""The per-objectClass registry index must be invisible semantically.

``get_references`` promises best-first ``(-ranking, service.id)`` order;
these tests pin that ordering across index maintenance (register,
unregister, set_properties ranking changes) and cross-check the indexed
implementation against a naive linear-scan model under randomized op
sequences.
"""

import random

import pytest

from repro.osgi.events import EventDispatcher
from repro.osgi.filter import parse_filter
from repro.osgi.registry import ServiceRegistry


@pytest.fixture
def registry():
    return ServiceRegistry(EventDispatcher())


def linear_model(registry, clazz=None, flt=None):
    """The pre-index lookup semantics: full scan, then one sort."""
    out = []
    for registration in registry._registrations.values():
        props = registration._properties
        if clazz is not None and clazz not in props["objectClass"]:
            continue
        if flt is not None and not flt.matches(props):
            continue
        out.append(registration._reference)
    out.sort(key=lambda ref: ref._sort_key())
    return out


def ids(refs):
    return [r.service_id for r in refs]


def test_ranking_then_age_tie_break_survives_index(registry):
    low = registry.register(object(), "svc", object(), {"service.ranking": 1})
    high = registry.register(object(), "svc", object(), {"service.ranking": 9})
    old_tie = registry.register(object(), "svc", object(), {"service.ranking": 9})
    unranked = registry.register(object(), "svc", object())

    refs = registry.get_references("svc")
    assert refs == [high.reference, old_tie.reference, low.reference, unranked.reference]
    assert refs == linear_model(registry, "svc")
    assert registry.get_reference("svc") == high.reference


def test_set_properties_ranking_change_resorts_lookup(registry):
    a = registry.register(object(), "svc", object(), {"service.ranking": 5})
    b = registry.register(object(), "svc", object(), {"service.ranking": 1})
    assert registry.get_references("svc") == [a.reference, b.reference]

    b.set_properties({"service.ranking": 10})
    assert registry.get_references("svc") == [b.reference, a.reference]
    assert registry.get_reference("svc") == b.reference

    # Dropping the ranking property entirely falls back to 0.
    b.set_properties({})
    assert registry.get_references("svc") == [a.reference, b.reference]
    assert registry.get_references("svc") == linear_model(registry, "svc")


def test_multi_class_service_appears_in_each_bucket_once(registry):
    reg = registry.register(object(), ("a", "b"), object())
    only_a = registry.register(object(), "a", object(), {"service.ranking": 3})

    assert registry.get_references("a") == [only_a.reference, reg.reference]
    assert registry.get_references("b") == [reg.reference]
    # Unfiltered scan sees the dual-class service exactly once,
    # best-first (only_a carries ranking 3).
    assert ids(registry.get_references()) == [2, 1]


def test_filter_with_objectclass_uses_index_and_dedups(registry):
    both = registry.register(object(), ("a", "b"), object())
    registry.register(object(), "c", object())
    flt = parse_filter("(|(objectClass=a)(objectClass=b))")
    refs = registry.get_references(filter=flt)
    assert refs == [both.reference]
    assert refs == linear_model(registry, flt=flt)


def test_unregister_removes_from_every_bucket(registry):
    reg = registry.register(object(), ("a", "b"), object())
    reg.unregister()
    assert registry.get_references("a") == []
    assert registry.get_references("b") == []
    assert registry.size == 0
    assert registry._by_class == {}


def test_unregister_all_uses_keyed_registrations(registry):
    mine, other = object(), object()
    for i in range(10):
        registry.register(mine if i % 2 else other, "svc%d" % i, object())
    assert registry.unregister_all(mine) == 5
    assert registry.size == 5
    assert all(r._bundle is other for r in registry._registrations.values())


def test_randomized_ops_match_linear_model(registry):
    rng = random.Random(20260805)
    classes = ["svc.A", "svc.B", "svc.C", "svc.D"]
    live = []
    filters = [None, parse_filter("(shard>=2)"), parse_filter("(!(shard=1))")]
    for step in range(300):
        roll = rng.random()
        if roll < 0.55 or not live:
            chosen = rng.sample(classes, rng.randint(1, 2))
            live.append(
                registry.register(
                    object(),
                    tuple(chosen),
                    object(),
                    {"service.ranking": rng.randint(-3, 3), "shard": rng.randint(0, 4)},
                )
            )
        elif roll < 0.8:
            victim = live.pop(rng.randrange(len(live)))
            victim.unregister()
        else:
            target = rng.choice(live)
            target.set_properties(
                {"service.ranking": rng.randint(-3, 3), "shard": rng.randint(0, 4)}
            )
        clazz = rng.choice(classes + [None])
        flt = rng.choice(filters)
        assert registry.get_references(clazz, flt) == linear_model(
            registry, clazz, flt
        ), "divergence at step %d" % step


def test_candidate_merge_dedup_is_keyed_by_service_id(registry):
    """Regression for the ``id(r)``-keyed seen-set in the filter-driven
    candidate merge: dedup must key on ``service.id`` so results are
    stable facts about the registration, not about interpreter object
    identity (which CPython reuses across the lifetime of a process).

    A service registered under several classes matched by one OR filter
    is the merge path's worst case: it appears in every candidate
    bucket and must come back exactly once, best-first.
    """
    tri = registry.register(
        object(), ("a", "b", "c"), object(), {"service.ranking": 1}
    )
    only_b = registry.register(object(), "b", object(), {"service.ranking": 7})
    flt = parse_filter("(|(objectClass=a)(objectClass=b)(objectClass=c))")

    for _ in range(50):  # repeated merges over the same buckets
        refs = registry.get_references(filter=flt)
        assert refs == [only_b.reference, tri.reference]
        assert len(set(ids(refs))) == len(refs)
        assert refs == linear_model(registry, flt=flt)

    # Churn that recycles object identities: unregister/re-register other
    # services so fresh references reuse freed addresses, then re-query.
    for round_number in range(5):
        extras = [
            registry.register(object(), "a", object(), {"service.ranking": -1})
            for _ in range(20)
        ]
        refs = registry.get_references(filter=flt)
        assert refs[:2] == [only_b.reference, tri.reference]
        assert len(set(ids(refs))) == len(refs)
        assert refs == linear_model(registry, flt=flt)
        for extra in extras:
            extra.unregister()
