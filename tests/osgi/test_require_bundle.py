"""Require-Bundle resolution: whole-bundle dependencies."""

import pytest

from repro.osgi.bundle import BundleState
from repro.osgi.definition import BundleDefinition, simple_bundle
from repro.osgi.errors import ResolutionError
from repro.osgi.manifest import Manifest


def requiring_bundle(name, required, version_range="0.0.0", optional=False):
    clause = required
    if version_range != "0.0.0":
        clause = '%s;bundle-version="%s"' % (required, version_range)
    if optional:
        clause += ";resolution:=optional"
    manifest = Manifest.build(name, version="1.0.0", requires=(clause,))
    return BundleDefinition(manifest)


def multi_export_lib(version="1.0.0", marker="v1"):
    return simple_bundle(
        "lib",
        version=version,
        exports=('lib.api;version="%s"' % version, 'lib.util;version="%s"' % version),
        packages={
            "lib.api": {"Thing": marker + "-api"},
            "lib.util": {"Thing": marker + "-util"},
        },
    )


def test_require_grants_all_exported_packages(framework):
    framework.install(multi_export_lib())
    app = framework.install(requiring_bundle("app", "lib"))
    app.start()
    assert app.load_class("lib.api.Thing") == "v1-api"
    assert app.load_class("lib.util.Thing") == "v1-util"


def test_require_missing_bundle_fails(framework):
    app = framework.install(requiring_bundle("app", "ghost"))
    with pytest.raises(ResolutionError) as excinfo:
        app.start()
    assert "ghost" in str(excinfo.value)


def test_optional_require_tolerates_absence(framework):
    app = framework.install(requiring_bundle("app", "ghost", optional=True))
    app.start()
    assert app.state == BundleState.ACTIVE


def test_require_respects_bundle_version_range(framework):
    framework.install(multi_export_lib(version="3.0.0", marker="v3"))
    app = framework.install(requiring_bundle("app", "lib", "[1.0,2.0)"))
    with pytest.raises(ResolutionError):
        app.start()


def test_require_prefers_highest_version(framework):
    framework.install(multi_export_lib(version="1.0.0", marker="v1"))
    framework.install(multi_export_lib(version="1.5.0", marker="v15"))
    app = framework.install(requiring_bundle("app", "lib", "[1.0,2.0)"))
    app.start()
    assert app.load_class("lib.api.Thing") == "v15-api"


def test_explicit_import_wins_over_require(framework):
    framework.install(multi_export_lib(marker="required"))
    framework.install(
        simple_bundle(
            "other",
            exports=('lib.api;version="9.0.0"',),
            packages={"lib.api": {"Thing": "imported"}},
        )
    )
    manifest = Manifest.build(
        "app", version="1.0.0", imports=('lib.api;version="9.0.0"',), requires=("lib",)
    )
    app = framework.install(BundleDefinition(manifest))
    app.start()
    # lib.api comes from the explicit import; lib.util still via require.
    assert app.load_class("lib.api.Thing") == "imported"
    assert app.load_class("lib.util.Thing") == "required-util"


def test_require_resolves_provider_transitively(framework):
    framework.install(
        simple_bundle(
            "base",
            exports=("base",),
            packages={"base": {"Thing": "B"}},
        )
    )
    framework.install(
        simple_bundle(
            "lib",
            imports=("base",),
            exports=("lib.api",),
            packages={"lib.api": {"Thing": "L"}},
        )
    )
    app = framework.install(requiring_bundle("app", "lib"))
    app.start()
    assert framework.get_bundle_by_name("base").state == BundleState.RESOLVED


def test_require_with_unresolvable_provider_falls_back(framework):
    # lib 2.0 requires a missing dep; lib 1.0 is clean.
    broken = simple_bundle(
        "lib",
        version="2.0.0",
        imports=("nowhere",),
        exports=("lib.api",),
        packages={"lib.api": {"Thing": "broken"}},
    )
    framework.install(broken)
    framework.install(
        simple_bundle(
            "lib",
            version="1.0.0",
            exports=("lib.api",),
            packages={"lib.api": {"Thing": "works"}},
        )
    )
    app = framework.install(requiring_bundle("app", "lib"))
    app.start()
    assert app.load_class("lib.api.Thing") == "works"
