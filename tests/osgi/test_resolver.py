"""Wiring resolution: candidates, versions, transitivity, cycles, failures."""

import pytest

from repro.osgi.bundle import BundleState
from repro.osgi.definition import simple_bundle
from repro.osgi.errors import ResolutionError
from repro.osgi.loader import ClassNotFoundError

from tests.conftest import consumer_bundle, library_bundle


def test_import_wired_to_exporter(framework):
    lib = framework.install(library_bundle("util", "1.0.0", "the-thing"))
    app = framework.install(consumer_bundle("app", "util"))
    app.start()
    assert app.wires["util"].exporter is lib
    assert app.load_class("util.Thing") == "the-thing"


def test_missing_import_fails_resolution(framework):
    app = framework.install(consumer_bundle("app", "ghost.pkg"))
    with pytest.raises(ResolutionError) as excinfo:
        app.start()
    assert "ghost.pkg" in str(excinfo.value)
    assert app.state == BundleState.INSTALLED


def test_optional_import_tolerates_absence(framework):
    app = framework.install(
        simple_bundle("app", imports=("maybe;resolution:=optional",))
    )
    app.start()
    assert app.state == BundleState.ACTIVE
    with pytest.raises(ClassNotFoundError):
        app.load_class("maybe.Thing")


def test_version_range_excludes_wrong_exporter(framework):
    framework.install(library_bundle("util", "3.0.0"))
    app = framework.install(consumer_bundle("app", "util", "[1.0,2.0)"))
    with pytest.raises(ResolutionError):
        app.start()


def test_highest_version_preferred(framework):
    framework.install(library_bundle("util", "1.0.0", "old"))
    framework.install(library_bundle("util", "1.5.0", "new"))
    app = framework.install(consumer_bundle("app", "util", "[1.0,2.0)"))
    app.start()
    assert app.load_class("util.Thing") == "new"


def test_already_resolved_exporter_preferred_over_higher_version(framework):
    old = framework.install(library_bundle("util", "1.0.0", "old"))
    first = framework.install(consumer_bundle("first", "util"))
    first.start()  # resolves old
    framework.install(library_bundle("util", "1.5.0", "new"))
    second = framework.install(consumer_bundle("second", "util"))
    second.start()
    assert second.load_class("util.Thing") == "old"


def test_transitive_resolution(framework):
    base = framework.install(library_bundle("base", "1.0.0", "B"))
    middle = framework.install(
        simple_bundle(
            "middle",
            imports=("base",),
            exports=('mid;version="1.0.0"',),
            packages={"mid": {"Thing": "M"}},
        )
    )
    app = framework.install(consumer_bundle("app", "mid"))
    app.start()
    assert base.state == BundleState.RESOLVED
    assert middle.state == BundleState.RESOLVED
    assert app.load_class("mid.Thing") == "M"


def test_transitive_failure_propagates(framework):
    framework.install(
        simple_bundle(
            "middle",
            imports=("missing.dep",),
            exports=("mid",),
            packages={"mid": {"Thing": "M"}},
        )
    )
    app = framework.install(consumer_bundle("app", "mid"))
    with pytest.raises(ResolutionError):
        app.start()


def test_mutual_import_cycle_resolves(framework):
    a = framework.install(
        simple_bundle(
            "a",
            imports=("pkg.b",),
            exports=("pkg.a",),
            packages={"pkg.a": {"Thing": "A"}},
        )
    )
    b = framework.install(
        simple_bundle(
            "b",
            imports=("pkg.a",),
            exports=("pkg.b",),
            packages={"pkg.b": {"Thing": "B"}},
        )
    )
    a.start()
    assert a.state == BundleState.ACTIVE
    assert b.state == BundleState.RESOLVED
    assert a.load_class("pkg.b.Thing") == "B"
    assert b.namespace.load("pkg.a.Thing") == "A"


def test_backtracking_picks_resolvable_candidate(framework):
    # v2 exporter itself has an unsatisfiable import; resolver must fall
    # back to v1 instead of failing.
    framework.install(
        simple_bundle(
            "broken-lib",
            version="2.0.0",
            imports=("nowhere",),
            exports=('util;version="2.0.0"',),
            packages={"util": {"Thing": "broken"}},
        )
    )
    framework.install(library_bundle("util", "1.0.0", "works"))
    app = framework.install(consumer_bundle("app", "util"))
    app.start()
    assert app.load_class("util.Thing") == "works"


def test_imported_package_shadows_private_content(framework):
    framework.install(library_bundle("shared", "1.0.0", "from-wire"))
    app = framework.install(
        simple_bundle(
            "app",
            imports=("shared",),
            packages={"shared": {"Thing": "private-copy"}},
        )
    )
    app.start()
    assert app.load_class("shared.Thing") == "from-wire"


def test_private_package_invisible_to_others(framework):
    framework.install(
        simple_bundle("secretive", packages={"secret": {"Thing": "hidden"}})
    )
    app = framework.install(consumer_bundle("app", "secret"))
    with pytest.raises(ResolutionError):
        app.start()


def test_uninstalled_bundle_not_a_candidate(framework):
    lib = framework.install(library_bundle("util", "1.0.0"))
    lib.uninstall()
    app = framework.install(consumer_bundle("app", "util"))
    with pytest.raises(ResolutionError):
        app.start()


def test_namespace_isolation_between_consumers(framework):
    framework.install(library_bundle("util", "1.0.0", "v1"))
    framework.install(library_bundle("util", "2.0.0", "v2"))
    app1 = framework.install(consumer_bundle("app1", "util", "[1.0,2.0)"))
    app2 = framework.install(consumer_bundle("app2", "util", "[2.0,3.0)"))
    app1.start()
    app2.start()
    # Two bundles see different objects for the same qualified name.
    assert app1.load_class("util.Thing") == "v1"
    assert app2.load_class("util.Thing") == "v2"


def test_visible_packages_report_provenance(framework):
    framework.install(library_bundle("util", "1.0.0"))
    app = framework.install(
        simple_bundle(
            "app", imports=("util",), packages={"own": {"Thing": 1}}
        )
    )
    app.start()
    view = app.namespace.visible_packages()
    assert view["util"] == "util"
    assert view["own"] == "local"
