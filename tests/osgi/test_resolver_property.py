"""Property-based resolver checks over random dependency graphs."""

from hypothesis import given, settings, strategies as st

from repro.osgi.bundle import BundleState
from repro.osgi.definition import simple_bundle
from repro.osgi.errors import ResolutionError
from repro.osgi.framework import Framework

# A random layered dependency graph: bundle i may import packages exported
# only by bundles with smaller index (guaranteeing a solution exists).
MAX_BUNDLES = 6


@st.composite
def layered_graphs(draw):
    count = draw(st.integers(2, MAX_BUNDLES))
    edges = []
    for importer in range(1, count):
        providers = draw(
            st.lists(
                st.integers(0, importer - 1), unique=True, min_size=0, max_size=2
            )
        )
        edges.append(providers)
    return count, edges


def build(framework, count, edges):
    bundles = []
    for i in range(count):
        imports = tuple("pkg%d" % p for p in (edges[i - 1] if i >= 1 else []))
        definition = simple_bundle(
            "b%d" % i,
            exports=("pkg%d" % i,),
            imports=imports,
            packages={"pkg%d" % i: {"Thing": "thing-%d" % i}},
        )
        bundles.append(framework.install(definition))
    return bundles


@settings(max_examples=50, deadline=None)
@given(layered_graphs())
def test_solvable_graphs_always_resolve(graph):
    count, edges = graph
    framework = Framework("prop")
    framework.start()
    bundles = build(framework, count, edges)
    for bundle in bundles:
        bundle.start()
        assert bundle.state == BundleState.ACTIVE
    # Every wire points at the declared provider and loads its symbol.
    for i, bundle in enumerate(bundles[1:], start=1):
        for provider_index in edges[i - 1]:
            package = "pkg%d" % provider_index
            assert bundle.wires[package].exporter.symbolic_name == (
                "b%d" % provider_index
            )
            assert bundle.load_class("%s.Thing" % package) == (
                "thing-%d" % provider_index
            )
    framework.stop()


@settings(max_examples=50, deadline=None)
@given(layered_graphs(), st.integers(0, MAX_BUNDLES - 1))
def test_removing_a_provider_breaks_exactly_its_dependents(graph, removed):
    count, edges = graph
    removed = removed % count
    framework = Framework("prop2")
    framework.start()
    bundles = []
    for i in range(count):
        if i == removed:
            bundles.append(None)
            continue
        imports = tuple("pkg%d" % p for p in (edges[i - 1] if i >= 1 else []))
        definition = simple_bundle(
            "b%d" % i,
            exports=("pkg%d" % i,),
            imports=imports,
            packages={"pkg%d" % i: {"Thing": i}},
        )
        bundles.append(framework.install(definition))

    def depends_on_removed(index, seen=None):
        if seen is None:
            seen = set()
        if index in seen:
            return False
        seen.add(index)
        if index == removed:
            return True
        providers = edges[index - 1] if index >= 1 else []
        return any(depends_on_removed(p, seen) for p in providers)

    for i, bundle in enumerate(bundles):
        if bundle is None:
            continue
        if depends_on_removed(i):
            try:
                bundle.start()
                started = True
            except ResolutionError:
                started = False
            assert not started, "b%d should be unresolvable" % i
        else:
            bundle.start()
            assert bundle.state == BundleState.ACTIVE
    framework.stop()
