"""Start-level ordered activation/deactivation."""

import pytest

from repro.osgi.bundle import BundleState
from repro.osgi.definition import simple_bundle
from repro.osgi.errors import BundleException
from repro.osgi.framework import Framework

from tests.conftest import RecordingActivator


def ordered_framework():
    fw = Framework("levels")
    fw.start(target_level=1)
    return fw


def test_bundle_above_framework_level_waits():
    fw = ordered_framework()
    bundle = fw.install(simple_bundle("a"))
    fw.start_levels.set_bundle_level(bundle, 5)
    bundle.start()
    assert bundle.state != BundleState.ACTIVE
    assert bundle.autostart
    fw.start_levels.set_level(5)
    assert bundle.state == BundleState.ACTIVE


def test_lowering_level_stops_bundles_but_keeps_autostart():
    fw = ordered_framework()
    bundle = fw.install(simple_bundle("a"))
    fw.start_levels.set_bundle_level(bundle, 3)
    fw.start_levels.set_level(3)
    bundle.start()
    assert bundle.state == BundleState.ACTIVE
    fw.start_levels.set_level(1)
    assert bundle.state == BundleState.RESOLVED
    assert bundle.autostart
    fw.start_levels.set_level(3)
    assert bundle.state == BundleState.ACTIVE


def test_activation_order_follows_levels():
    order = []

    def make_activator(name):
        class A(RecordingActivator):
            def start(self, context):
                order.append(name)

            def stop(self, context):
                order.append("-" + name)

        return A

    fw = ordered_framework()
    late = fw.install(simple_bundle("late", activator_factory=make_activator("late")))
    early = fw.install(
        simple_bundle("early", activator_factory=make_activator("early"))
    )
    fw.start_levels.set_bundle_level(late, 5)
    fw.start_levels.set_bundle_level(early, 2)
    late.start()
    early.start()
    fw.start_levels.set_level(10)
    assert order == ["early", "late"]
    fw.start_levels.set_level(0)
    assert order == ["early", "late", "-late", "-early"]


def test_same_level_ordered_by_bundle_id():
    order = []

    def make_activator(name):
        class A(RecordingActivator):
            def start(self, context):
                order.append(name)

        return A

    fw = ordered_framework()
    first = fw.install(simple_bundle("first", activator_factory=make_activator("f")))
    second = fw.install(
        simple_bundle("second", activator_factory=make_activator("s"))
    )
    for bundle in (first, second):
        fw.start_levels.set_bundle_level(bundle, 4)
        bundle.start()
    fw.start_levels.set_level(4)
    assert order == ["f", "s"]


def test_invalid_levels_rejected():
    fw = ordered_framework()
    bundle = fw.install(simple_bundle("a"))
    with pytest.raises(BundleException):
        fw.start_levels.set_bundle_level(bundle, 0)
    with pytest.raises(BundleException):
        fw.start_levels.set_level(-1)


def test_moving_bundle_level_applies_immediately():
    fw = ordered_framework()
    fw.start_levels.set_level(5)
    bundle = fw.install(simple_bundle("a"))
    bundle.start()
    assert bundle.state == BundleState.ACTIVE
    fw.start_levels.set_bundle_level(bundle, 9)
    assert bundle.state == BundleState.RESOLVED
    fw.start_levels.set_bundle_level(bundle, 2)
    assert bundle.state == BundleState.ACTIVE


def test_startlevel_changed_event_fired():
    from repro.osgi.events import FrameworkEventType

    fw = ordered_framework()
    events = []
    fw.dispatcher.add_framework_listener(events.append)
    fw.start_levels.set_level(5)
    fw.start_levels.set_level(5)  # no-op: no duplicate event
    changed = [
        e for e in events if e.type == FrameworkEventType.STARTLEVEL_CHANGED
    ]
    assert len(changed) == 1
    assert "5" in changed[0].message


def test_failing_activator_does_not_block_level_walk():
    from tests.conftest import FailingStartActivator

    fw = ordered_framework()
    bad = fw.install(simple_bundle("bad", activator_factory=FailingStartActivator))
    good = fw.install(simple_bundle("good"))
    for bundle in (bad, good):
        fw.start_levels.set_bundle_level(bundle, 3)
        bundle.start()
    fw.start_levels.set_level(3)
    assert good.state == BundleState.ACTIVE
    assert bad.state == BundleState.RESOLVED
