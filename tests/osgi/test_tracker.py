"""ServiceTracker behaviour: open/close, customizers, dynamics."""

import pytest

from repro.osgi.definition import simple_bundle
from repro.osgi.tracker import ServiceTracker

from tests.conftest import RecordingActivator


@pytest.fixture
def context(framework):
    return framework.system_context


def test_tracker_requires_class_or_filter(context):
    with pytest.raises(ValueError):
        ServiceTracker(context)


def test_tracker_picks_up_existing_services(context):
    context.register_service("x.S", "svc")
    tracker = ServiceTracker(context, "x.S")
    tracker.open()
    assert tracker.get_service() == "svc"
    assert tracker.size == 1


def test_tracker_sees_later_registrations(context):
    tracker = ServiceTracker(context, "x.S")
    tracker.open()
    assert tracker.get_service() is None
    context.register_service("x.S", "late")
    assert tracker.get_service() == "late"


def test_tracker_drops_unregistered_services(context):
    tracker = ServiceTracker(context, "x.S")
    tracker.open()
    registration = context.register_service("x.S", "svc")
    registration.unregister()
    assert tracker.get_service() is None


def test_filter_restricts_tracking(context):
    tracker = ServiceTracker(context, "x.S", filter="(color=red)")
    tracker.open()
    context.register_service("x.S", "blue", {"color": "blue"})
    context.register_service("x.S", "red", {"color": "red"})
    assert tracker.get_services() == ["red"]


def test_modification_into_filter_adds_service(context):
    tracker = ServiceTracker(context, "x.S", filter="(ready=true)")
    tracker.open()
    registration = context.register_service("x.S", "svc", {"ready": False})
    assert tracker.size == 0
    registration.set_properties({"ready": True})
    assert tracker.size == 1


def test_modification_out_of_filter_removes_service(context):
    tracker = ServiceTracker(context, "x.S", filter="(ready=true)")
    tracker.open()
    registration = context.register_service("x.S", "svc", {"ready": True})
    assert tracker.size == 1
    registration.set_properties({"ready": False})
    assert tracker.size == 0


def test_customizer_callbacks(context):
    added, modified, removed = [], [], []
    tracker = ServiceTracker(
        context,
        "x.S",
        on_added=lambda ref, svc: added.append(svc),
        on_modified=lambda ref, svc: modified.append(svc),
        on_removed=lambda ref, svc: removed.append(svc),
    )
    tracker.open()
    registration = context.register_service("x.S", "svc")
    registration.set_properties({"v": 2})
    registration.unregister()
    assert added == ["svc"]
    assert modified == ["svc"]
    assert removed == ["svc"]


def test_on_added_replacement_is_stored(context):
    tracker = ServiceTracker(
        context, "x.S", on_added=lambda ref, svc: "wrapped:" + svc
    )
    tracker.open()
    context.register_service("x.S", "svc")
    assert tracker.get_service() == "wrapped:svc"


def test_best_service_follows_ranking(context):
    tracker = ServiceTracker(context, "x.S")
    tracker.open()
    context.register_service("x.S", "low", {"service.ranking": 1})
    context.register_service("x.S", "high", {"service.ranking": 5})
    assert tracker.get_service() == "high"


def test_close_releases_everything(context):
    removed = []
    tracker = ServiceTracker(
        context, "x.S", on_removed=lambda ref, svc: removed.append(svc)
    )
    tracker.open()
    context.register_service("x.S", "svc")
    tracker.close()
    assert removed == ["svc"]
    assert tracker.size == 0
    assert not tracker.is_open


def test_closed_tracker_ignores_events(context):
    tracker = ServiceTracker(context, "x.S")
    tracker.open()
    tracker.close()
    context.register_service("x.S", "svc")
    assert tracker.size == 0


def test_open_close_idempotent(context):
    tracker = ServiceTracker(context, "x.S")
    tracker.open()
    tracker.open()
    tracker.close()
    tracker.close()


def test_tracking_count_increments(context):
    tracker = ServiceTracker(context, "x.S")
    tracker.open()
    registration = context.register_service("x.S", "svc")
    registration.set_properties({"a": 1})
    registration.unregister()
    assert tracker.tracking_count == 3


def test_modules_find_each_other_via_tracker(framework):
    """The decoupling pattern the platform modules use."""
    provider = RecordingActivator()
    provider_bundle = framework.install(
        simple_bundle("provider", activator_factory=lambda: provider)
    )
    provider_bundle.start()
    provider.context.register_service("module.Api", {"answer": 42})

    seen = []

    class ConsumerActivator(RecordingActivator):
        def start(self, context):
            super().start(context)
            self.tracker = ServiceTracker(
                context, "module.Api", on_added=lambda r, s: seen.append(s)
            )
            self.tracker.open()

    consumer_bundle_obj = framework.install(
        simple_bundle("consumer", activator_factory=ConsumerActivator)
    )
    consumer_bundle_obj.start()
    assert seen == [{"answer": 42}]
    # Provider goes away; consumer notices via the tracker.
    provider_bundle.stop()
