"""Version and version-range semantics, including property-based ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.osgi.version import ANY_VERSION, Version, VersionRange


class TestVersionParse:
    def test_full(self):
        v = Version.parse("1.2.3.beta-1")
        assert (v.major, v.minor, v.micro, v.qualifier) == (1, 2, 3, "beta-1")

    def test_partial_components_default_to_zero(self):
        assert Version.parse("2") == Version(2, 0, 0)
        assert Version.parse("2.1") == Version(2, 1, 0)

    def test_idempotent_on_version(self):
        v = Version(1, 2, 3)
        assert Version.parse(v) is v

    @pytest.mark.parametrize("bad", ["", "a.b.c", "1.2.3.4.5", "1..2", "-1"])
    def test_invalid_strings(self, bad):
        with pytest.raises(ValueError):
            Version.parse(bad)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            Version(-1)

    def test_invalid_qualifier_rejected(self):
        with pytest.raises(ValueError):
            Version(1, 0, 0, "has space")

    def test_str_roundtrip(self):
        for text in ["0.0.0", "1.2.3", "9.8.7.rc1"]:
            assert str(Version.parse(text)) == text


class TestVersionOrdering:
    def test_major_dominates(self):
        assert Version.parse("2.0.0") > Version.parse("1.99.99")

    def test_qualifier_orders_lexicographically(self):
        assert Version.parse("1.0.0.a") < Version.parse("1.0.0.b")

    def test_no_qualifier_sorts_before_qualifier(self):
        assert Version.parse("1.0.0") < Version.parse("1.0.0.alpha")

    def test_hash_consistent_with_eq(self):
        assert hash(Version.parse("1.2.3")) == hash(Version(1, 2, 3))


version_strategy = st.builds(
    Version,
    st.integers(0, 99),
    st.integers(0, 99),
    st.integers(0, 99),
    st.sampled_from(["", "alpha", "beta", "rc1", "final"]),
)


@given(version_strategy, version_strategy)
def test_ordering_is_antisymmetric(a, b):
    if a < b:
        assert not (b < a)
    if a == b:
        assert not (a < b) and not (b < a)


@given(version_strategy, version_strategy, version_strategy)
def test_ordering_is_transitive(a, b, c):
    if a <= b and b <= c:
        assert a <= c


@given(version_strategy)
def test_str_parse_roundtrip(v):
    assert Version.parse(str(v)) == v


class TestVersionRange:
    def test_bare_version_is_unbounded_above(self):
        r = VersionRange.parse("1.5")
        assert r.includes("1.5.0")
        assert r.includes("99.0.0")
        assert not r.includes("1.4.9")

    def test_inclusive_exclusive_brackets(self):
        r = VersionRange.parse("[1.0,2.0)")
        assert r.includes("1.0.0")
        assert r.includes("1.9.9")
        assert not r.includes("2.0.0")

    def test_both_inclusive(self):
        r = VersionRange.parse("[1.0,2.0]")
        assert r.includes("2.0.0")

    def test_both_exclusive(self):
        r = VersionRange.parse("(1.0,2.0)")
        assert not r.includes("1.0.0")
        assert not r.includes("2.0.0")
        assert r.includes("1.5.0")

    def test_empty_ranges(self):
        assert VersionRange.parse("(1.0,1.0)").is_empty()
        assert VersionRange.parse("[2.0,1.0]").is_empty()
        assert not VersionRange.parse("[1.0,1.0]").is_empty()

    def test_any_version_includes_zero(self):
        assert ANY_VERSION.includes("0.0.0")

    def test_str_roundtrip(self):
        for text in ["[1.0.0,2.0.0)", "(1.0.0,3.0.0]", "1.2.0"]:
            assert str(VersionRange.parse(text)) == text

    def test_idempotent_parse(self):
        r = VersionRange.parse("[1.0,2.0)")
        assert VersionRange.parse(r) is r

    def test_equality_and_hash(self):
        a = VersionRange.parse("[1.0,2.0)")
        b = VersionRange.parse("[1.0,2.0)")
        assert a == b
        assert hash(a) == hash(b)


@given(version_strategy, version_strategy, version_strategy)
def test_range_membership_consistent_with_ordering(low, high, probe):
    r = VersionRange(low, high, floor_inclusive=True, ceiling_inclusive=False)
    expected = low <= probe < high
    assert r.includes(probe) == expected
