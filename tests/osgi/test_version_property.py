"""Property tests for OSGi version ordering and range containment."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osgi.version import Version, VersionRange

settings.register_profile("repro", max_examples=50, deadline=None)
settings.load_profile("repro")

components = st.integers(min_value=0, max_value=999)
qualifiers = st.one_of(
    st.just(""),
    st.text(
        alphabet="0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "abcdefghijklmnopqrstuvwxyz_-",
        min_size=1,
        max_size=8,
    ),
)
versions = st.builds(Version, components, components, components, qualifiers)


@given(versions)
def test_str_parse_round_trip(version):
    assert Version.parse(str(version)) == version


@given(versions, versions)
def test_ordering_is_antisymmetric(a, b):
    assert (a < b) + (b < a) + (a == b) == 1


@given(versions, versions, versions)
def test_ordering_is_transitive(a, b, c):
    if a < b and b < c:
        assert a < c


@given(versions, versions)
def test_ordering_agrees_with_component_tuples(a, b):
    key = lambda v: (v.major, v.minor, v.micro, v.qualifier)
    assert (a < b) == (key(a) < key(b))


@given(versions, versions)
def test_equal_versions_hash_equal(a, b):
    if a == b:
        assert hash(a) == hash(b)


@given(versions)
def test_parse_is_idempotent(version):
    assert Version.parse(Version.parse(str(version))) == version


# ----------------------------------------------------------------------
# Ranges
# ----------------------------------------------------------------------
ranges = st.one_of(
    # Unbounded [v, infinity)
    st.builds(VersionRange, versions),
    # Bounded with random bracket inclusivity
    st.builds(
        VersionRange,
        versions,
        versions,
        floor_inclusive=st.booleans(),
        ceiling_inclusive=st.booleans(),
    ),
)


@given(ranges)
def test_range_str_parse_round_trip(rng):
    assert VersionRange.parse(str(rng)) == rng


@given(ranges, versions)
def test_containment_matches_interval_semantics(rng, version):
    above_floor = (
        version >= rng.floor if rng.floor_inclusive else version > rng.floor
    )
    below_ceiling = rng.ceiling is None or (
        version <= rng.ceiling
        if rng.ceiling_inclusive
        else version < rng.ceiling
    )
    assert rng.includes(version) == (above_floor and below_ceiling)


@given(ranges)
def test_empty_ranges_contain_nothing(rng):
    if rng.is_empty():
        assert not rng.includes(rng.floor)
        if rng.ceiling is not None:
            assert not rng.includes(rng.ceiling)


@given(versions)
def test_floor_membership_of_inclusive_unbounded_range(version):
    assert VersionRange(version).includes(version)
