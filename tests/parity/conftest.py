"""Lane-parity differential harness plumbing.

The contract under test (docs/SIM.md): for any scenario, a run on the
``laned`` scheduler is *byte-identical* to the same-seed run on the
``global`` scheduler — same digests, same verdicts, same exported
artifacts. The ``run_both`` fixture runs a scenario callable once per
scheduler (each run builds its own world from the seed inside the
callable) and returns both results for the test to compare.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

import pytest

from repro.sim.scheduler import SCHEDULERS, use_scheduler


@pytest.fixture
def run_both() -> Callable[[Callable[[], Any]], Tuple[Any, Any]]:
    """Run ``scenario()`` under the global then the laned scheduler.

    The callable must build everything it touches (cluster, env, loop)
    from scratch on each invocation — shared state across runs would
    turn a real divergence into a flaky artefact, or mask one.
    """

    def runner(scenario: Callable[[], Any]) -> Tuple[Any, Any]:
        results = []
        for name in SCHEDULERS:
            with use_scheduler(name):
                results.append(scenario())
        return tuple(results)

    return runner


def assert_parity(global_result: Any, laned_result: Any, what: str) -> None:
    """Equality with a divergence-first error message."""
    assert global_result == laned_result, (
        "lane-parity divergence in %s:\n  global: %r\n  laned:  %r"
        % (what, global_result, laned_result)
    )
