"""Property-based lane parity: random schedules, topologies and faults.

Two generators, two levels:

* raw event loops — random scripts of timed events that spawn
  same-instant and future children across lanes and cancel earlier
  events mid-run, the adversarial surface of the k-way merge;
* whole clusters — random node counts, link latencies, jitter, loss
  rates and fault scripts replayed through the real injector, compared
  by fault-trace digest.

On divergence Hypothesis shrinks to a minimal seed + script — the
reproduction recipe goes straight into a regression test.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DependableEnvironment
from repro.faults.campaign import replay_schedule
from repro.faults.schedule import FaultSchedule
from repro.sim.clock import Clock
from repro.sim.eventloop import EventLoop
from repro.sim.lanes import LanedEventLoop

# One script op: (when in centiseconds, lane 0-2, children spawned on
# fire, cancel code — 0 means none, k>0 cancels handle (k-1) % len).
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=150),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=20,
)


def run_script(loop, ops):
    """Deterministic interpreter for a generated schedule script."""
    lanes = [0, loop.register_lane("n1"), loop.register_lane("n2")]
    log = []
    handles = []

    def schedule(tag, when, lane, children, cancel):
        def fire():
            log.append((tag, round(loop.clock.now, 9)))
            if cancel and handles:
                handles[(cancel - 1) % len(handles)].cancel()
            for child in range(children):
                # child 0 is same-instant (merge-boundary territory),
                # later children land in other lanes in the future.
                schedule(
                    "%s.%d" % (tag, child),
                    loop.clock.now + 0.01 * child,
                    lanes[(lane + child + 1) % 3],
                    0,
                    0,
                )

        handles.append(loop.call_at(when, fire, lane=lane, label=tag))

    for index, (when_cs, lane_idx, children, cancel) in enumerate(ops):
        schedule(str(index), when_cs / 100.0, lanes[lane_idx], children, cancel)
    loop.run_until(2.0)
    return log, loop.fired, loop.scheduled, loop.pending, loop.clock.now


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_random_schedules_fire_identically(ops):
    """Any script of events, children and cancellations fires in the
    same order at the same instants on both schedulers."""
    assert run_script(EventLoop(Clock()), ops) == run_script(
        LanedEventLoop(Clock()), ops
    )


# A fault script against nodes n1..n<count>: (kind, centiseconds, node).
FAULTS = st.lists(
    st.tuples(
        st.sampled_from(["crash", "repair", "partition", "heal"]),
        st.integers(min_value=50, max_value=600),
        st.integers(min_value=1, max_value=3),
    ),
    max_size=4,
)


def _build_schedule(script, node_count):
    schedule = FaultSchedule()
    node_ids = ["n%d" % (k + 1) for k in range(node_count)]
    for kind, when_cs, which in script:
        at = when_cs / 100.0
        node = node_ids[which % node_count]
        if kind == "crash":
            schedule.crash(at, node)
        elif kind == "repair":
            schedule.repair(at, node)
        elif kind == "partition":
            rest = [n for n in node_ids if n != node]
            schedule.partition(at, [node], rest)
        else:
            schedule.heal(at)
    return schedule


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    node_count=st.integers(min_value=3, max_value=4),
    latency=st.sampled_from([0.001, 0.004]),
    jitter=st.sampled_from([0.0, 0.0005]),
    loss_rate=st.sampled_from([0.0, 0.02]),
    script=FAULTS,
)
def test_random_cluster_fault_scripts_reach_identical_digests(
    seed, node_count, latency, jitter, loss_rate, script
):
    """Random topology + link parameters + fault script: the replayed
    fault trace digest (which folds in every observed view change and
    redeployment) is scheduler-independent."""
    from repro.sim.scheduler import use_scheduler

    def scenario(scheduler):
        with use_scheduler(scheduler):
            env = DependableEnvironment.build(
                node_count=node_count,
                seed=seed,
                latency=latency,
                jitter=jitter,
                loss_rate=loss_rate,
            )
            schedule = _build_schedule(script, node_count)
            trace, violations = replay_schedule(
                env, schedule, duration=6.0, settle=4.0
            )
        # NOTE: loop.fired is deliberately NOT compared — the laned
        # scheduler keeps Network tick coalescing lane-local, so a
        # cross-lane burst becomes several smaller delivery events.
        # Event *order* (hence every digest) is unchanged; raw event
        # counts are an implementation detail, not an observable.
        return (
            trace.digest(),
            [str(v) for v in violations],
            round(env.loop.clock.now, 9),
        )

    assert scenario("global") == scenario("laned")
