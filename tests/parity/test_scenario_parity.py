"""Every digest-producing scenario, global vs laned, byte for byte.

Each test runs one end-to-end scenario under both schedulers and
compares the *serialised artifact* — the JSON verdict, the exported
span dump, the self-digested report — not just a summary number. A
single reordered event anywhere in the run changes a digest, so these
are whole-trajectory equivalence proofs at CI cost.
"""

from __future__ import annotations

import pytest

from repro.conformance.report import campaign_verdict, verdict_json
from repro.faults.campaign import ChaosCampaign
from repro.macrobench.scenario import MacroConfig, MacroScenario
from repro.rollout.cli import SCENARIOS as ROLLOUT_SCENARIOS
from repro.rollout.cli import rollout_main
from repro.telemetry.export import dump_chrome_json, dump_spans_json

from tests.parity.conftest import assert_parity

CONFORMANCE_SCENARIOS = {
    "default": None,
    "crash": ("crash", "repair"),
    "partition": ("partition", "heal"),
    "loss": ("loss_burst",),
}


def test_chaos_campaign_parity(run_both):
    """Chaos with telemetry + conformance on: fault trace digests,
    per-episode history digests, span counts and the full JSON verdict
    must not move by a byte."""

    def scenario():
        campaign = ChaosCampaign(
            seed=7,
            episodes=2,
            episode_duration=10.0,
            settle=6.0,
            telemetry=True,
            conformance=True,
        )
        result = campaign.run()
        document = campaign_verdict(result, scenario="parity")
        return {
            "trace_digest": result.trace_digest(),
            "episode_digests": [e.digest() for e in result.episodes],
            "history_digests": [e.history_digest for e in result.episodes],
            "span_counts": [len(e.spans) for e in result.episodes],
            "failover_seconds": list(result.failover_seconds),
            "verdict": verdict_json(document),
        }

    global_run, laned_run = run_both(scenario)
    for key in global_run:
        assert_parity(global_run[key], laned_run[key], "chaos %s" % key)


def test_failover_trace_export_parity(run_both):
    """The acceptance trace: exported Chrome JSON and raw span dumps are
    identical files — span ids included, thanks to per-node RNG
    substreams."""
    from repro.telemetry.cli import run_failover_scenario

    def scenario():
        env, telemetry = run_failover_scenario(seed=42, requests=6)
        spans = telemetry.export_spans()
        meta = {"scenario": "failover", "seed": 42}
        return dump_chrome_json(spans, meta), dump_spans_json(spans, meta)

    (global_chrome, global_spans), (laned_chrome, laned_spans) = run_both(scenario)
    assert global_chrome == laned_chrome
    assert global_spans == laned_spans


@pytest.mark.parametrize("name", sorted(CONFORMANCE_SCENARIOS))
def test_conformance_verdict_parity(run_both, name):
    """`python -m repro conform` scenario mixes: byte-identical verdicts."""
    kinds = CONFORMANCE_SCENARIOS[name]

    def scenario():
        campaign = ChaosCampaign(
            seed=3,
            episodes=1,
            episode_duration=8.0,
            settle=5.0,
            kinds=kinds,
            conformance=True,
        )
        document = campaign_verdict(campaign.run(), scenario=name)
        return verdict_json(document)

    global_text, laned_text = run_both(scenario)
    assert_parity(global_text, laned_text, "conform verdict %r" % name)


@pytest.mark.parametrize("name", ["clean", "crash-canary"])
def test_rollout_verdict_parity(tmp_path, name):
    """`python -m repro rollout` drives the full stack — engine, gates,
    telemetry, conformance — through the real CLI; the verdict files
    from the two schedulers must compare equal byte for byte."""
    assert name in ROLLOUT_SCENARIOS
    outputs = {}
    for scheduler in ("global", "laned"):
        out = tmp_path / ("%s-%s.json" % (name, scheduler))
        rollout_main(
            [
                "--scenario",
                name,
                "--seed",
                "0",
                "--out",
                str(out),
                "--scheduler",
                scheduler,
            ]
        )
        outputs[scheduler] = out.read_bytes()
    assert outputs["global"] == outputs["laned"]


def test_macro_report_parity():
    """The macro benchmark's self-digested report (a reduced-size smoke
    config) is identical under both schedulers; ``loop_scheduler`` is
    deliberately excluded from the report so the digest can prove it."""
    reports = {}
    for scheduler in ("global", "laned"):
        config = MacroConfig.smoke(
            base_rps=120.0,
            peak_rps=480.0,
            day_seconds=12.0,
            loop_scheduler=scheduler,
        )
        scenario = MacroScenario(config)
        assert scenario.loop.laned == (scheduler == "laned")
        reports[scheduler] = scenario.run().report()
    assert reports["global"]["digest"] == reports["laned"]["digest"]
    assert reports["global"] == reports["laned"]
