"""The regression gate: ``bench --compare`` semantics and exit codes."""

import json

import pytest

from repro.bench import bench_main, compare_reports


def report_with(benchmarks):
    return {"revision": "test", "benchmarks": benchmarks}


def entry(ops):
    return {"ops_per_sec": ops, "p50_us": 1.0, "p99_us": 2.0, "iterations": 10}


def test_flags_regressions_past_threshold():
    old = report_with({"a": entry(1000.0), "b": entry(1000.0)})
    new = report_with({"a": entry(800.0), "b": entry(990.0)})
    outcome = compare_reports(old, new, threshold=0.15)
    assert outcome["regressions"] == ["a"]
    rows = {name: change for name, _, _, change in outcome["rows"]}
    assert rows["a"] == pytest.approx(-0.20)
    assert rows["b"] == pytest.approx(-0.01)


def test_improvements_and_small_dips_pass():
    old = report_with({"a": entry(1000.0)})
    new = report_with({"a": entry(900.0)})
    assert compare_reports(old, new, threshold=0.15)["regressions"] == []
    new = report_with({"a": entry(5000.0)})
    assert compare_reports(old, new, threshold=0.15)["regressions"] == []


def test_unshared_benchmarks_ignored():
    old = report_with({"retired": entry(1000.0)})
    new = report_with({"brand_new": entry(1.0)})
    outcome = compare_reports(old, new)
    assert outcome["rows"] == []
    assert outcome["regressions"] == []


def test_zero_old_ops_skipped():
    old = report_with({"a": entry(0.0)})
    new = report_with({"a": entry(100.0)})
    assert compare_reports(old, new)["rows"] == []


def test_threshold_is_strict_boundary():
    old = report_with({"a": entry(1000.0)})
    new = report_with({"a": entry(850.0)})  # exactly -15%
    assert compare_reports(old, new, threshold=0.15)["regressions"] == []
    new = report_with({"a": entry(849.0)})
    assert compare_reports(old, new, threshold=0.15)["regressions"] == ["a"]


FAST_ONLY = "registry_lookup"


def _run_cli(tmp_path, old_benchmarks, threshold="0.15"):
    old_path = tmp_path / "old.json"
    old_path.write_text(json.dumps(report_with(old_benchmarks)))
    return bench_main(
        [
            "--quick",
            "--only",
            FAST_ONLY,
            "--out",
            str(tmp_path / "new.json"),
            "--compare",
            str(old_path),
            "--compare-threshold",
            threshold,
        ]
    )


def test_cli_exits_nonzero_on_regression(tmp_path, capsys):
    # An absurdly fast "old" run: the real run must look regressed.
    code = _run_cli(tmp_path, {FAST_ONLY: entry(1e15)})
    assert code == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "FAIL" in out


def test_cli_exits_zero_without_regression(tmp_path, capsys):
    code = _run_cli(tmp_path, {FAST_ONLY: entry(0.001)})
    assert code == 0
    assert "REGRESSION" not in capsys.readouterr().out


def test_cli_exits_zero_with_no_shared_benchmarks(tmp_path, capsys):
    code = _run_cli(tmp_path, {"something_else": entry(1000.0)})
    assert code == 0
    assert "no shared benchmarks" in capsys.readouterr().out
