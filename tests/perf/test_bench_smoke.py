"""The bench harness must run and emit schema-valid, JSON-serialisable data."""

import json

import pytest

from repro.bench import BENCHMARK_NAMES, run_suite

FAST = [
    "registry_lookup",
    "registry_lookup_linear_baseline",
    "filter_match",
    "filter_parse_cached",
    "event_dispatch",
]


@pytest.fixture(scope="module")
def report():
    return run_suite(quick=True, only=FAST)


def test_report_shape(report):
    assert set(report["benchmarks"]) == set(FAST)
    for name, data in report["benchmarks"].items():
        assert data["ops_per_sec"] > 0, name
        assert data["p50_us"] >= 0, name
        assert data["p99_us"] >= data["p50_us"], name
        assert data["iterations"] > 0, name


def test_report_is_json_serialisable(report):
    decoded = json.loads(json.dumps(report))
    assert decoded["quick"] is True
    assert decoded["revision"]


def test_registry_speedup_recorded(report):
    # The acceptance bar for the indexed registry: >= 10x over the
    # linear scan on 1000 services / 10 matching. Benchmarked on the
    # same data set in the same process, so this is stable even on
    # noisy CI machines (typically 30-80x).
    speedup = report["derived"]["registry_lookup_speedup_vs_linear"]
    assert speedup >= 10.0


def test_benchmark_names_cover_suite():
    full = run_suite(quick=True, only=["network_fanout"])
    assert "network_fanout" in full["benchmarks"]
    assert set(FAST) <= set(BENCHMARK_NAMES)
