"""Macro-benchmark scenario: deterministic, accounted, and schedulable."""

import json

import pytest

from repro.macrobench import MacroConfig, MacroScenario


@pytest.fixture(scope="module")
def smoke_result():
    # Trimmed further below CI smoke scale to keep the unit suite fast.
    config = MacroConfig.smoke(day_seconds=10.0)
    return MacroScenario(config).run()


def test_two_runs_byte_identical():
    config = MacroConfig.smoke(day_seconds=10.0)
    first = json.dumps(MacroScenario(config).run().report(), sort_keys=True)
    second = json.dumps(MacroScenario(config).run().report(), sort_keys=True)
    assert first == second


def test_seed_changes_the_run():
    a = MacroScenario(MacroConfig.smoke(day_seconds=10.0)).run()
    b = MacroScenario(MacroConfig.smoke(day_seconds=10.0, seed=9)).run()
    assert a.report()["digest"] != b.report()["digest"]


def test_accounting_balances(smoke_result):
    result = smoke_result
    assert result.submitted > 0
    assert result.submitted == result.completed + result.dropped
    assert sum(result.per_shard_submitted) == result.submitted
    assert sum(result.per_shard_completed) == result.completed
    # ~mean-rate x duration arrivals, within Poisson noise.
    expected = result.config.expected_requests
    assert abs(result.submitted - expected) < expected * 0.15


def test_every_shard_sees_traffic(smoke_result):
    assert len(smoke_result.per_shard_submitted) == smoke_result.config.shards
    assert all(n > 0 for n in smoke_result.per_shard_submitted)


def test_latencies_sane(smoke_result):
    result = smoke_result
    service_time = result.config.service_time
    assert result.latency_p50 >= service_time - 1e-12
    assert result.latency_p50 <= result.latency_p99 <= result.latency_max
    assert result.latency_mean > 0


def test_report_shape(smoke_result):
    report = smoke_result.report()
    decoded = json.loads(json.dumps(report, sort_keys=True))
    assert decoded["scenario"] == "million-user-day"
    assert decoded["config"]["seed"] == 2026
    assert decoded["requests"]["submitted"] == smoke_result.submitted
    assert len(decoded["digest"]) == 64
    # Digest covers the payload: recompute by clearing and re-reporting.
    again = smoke_result.report()
    assert again["digest"] == decoded["digest"]


def test_bucketed_scheduler_run_matches_naive():
    """Config-level A/B: identical traffic outcome either way."""
    naive = MacroScenario(MacroConfig.smoke(day_seconds=5.0)).run().report()
    bucketed = (
        MacroScenario(MacroConfig.smoke(day_seconds=5.0, scheduler="lc-bucketed"))
        .run()
        .report()
    )
    naive["config"].pop("scheduler")
    bucketed["config"].pop("scheduler")
    naive.pop("digest")
    bucketed.pop("digest")
    assert naive == bucketed


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        MacroScenario(MacroConfig.smoke(scheduler="wlc"))
