"""Chaos-during-upgrade matrix: faults mid-rollout, pinned seeds.

Each pinned scenario attacks the rollout at a specific point — crash the
canary's node mid-soak, crash a wave member's node mid-deploy, partition
the canary from the directors — and must still end in a terminal,
uniform-version state with zero rollout-attributed request drops: the
engine either finishes the upgrade or rolls everything back, never
leaves the fleet mixed. The randomized upgrade-mode campaign then sweeps
the same claim across many seeds (the 25-episode sweep is ``chaos``-
marked for the nightly run).
"""

import pytest

from repro.conformance import check_history
from repro.conformance import runtime as _crt
from repro.conformance.recorder import HistoryRecorder
from repro.faults.campaign import ChaosCampaign, replay_schedule
from repro.rollout.cli import SCENARIOS
from repro.rollout.engine import COMPLETED, ROLLED_BACK
from repro.rollout.scenario import (
    PINNED_VERSION,
    TARGET_VERSION,
    rollout_scenario,
)
from repro.telemetry import runtime as _rt
from repro.telemetry.runtime import Telemetry

PINNED_FAULT_SCENARIOS = ("crash-canary", "crash-wave", "partition")


def run_scenario(name, seed=0):
    """One pinned fault scenario, instrumented exactly like the CLI."""
    schedule = SCENARIOS[name]()
    env = rollout_scenario(seed, bad_release=name == "bad-release")
    telemetry = Telemetry(env.loop.clock, env.cluster.rng, scenario="rollout")
    _rt.activate(telemetry)
    telemetry.open_root("rollout:%s" % name)
    recorder = _crt.activate(HistoryRecorder(env.loop.clock))
    try:
        _trace, violations = replay_schedule(
            env, schedule, duration=18.0, settle=12.0
        )
    finally:
        _crt.deactivate()
        telemetry.close_root()
        _rt.deactivate()
    report = env.rollout_engine.report
    return env, report, recorder, violations


@pytest.mark.parametrize("name", PINNED_FAULT_SCENARIOS)
def test_fault_mid_rollout_never_ends_mixed_version(name):
    _env, report, recorder, violations = run_scenario(name)
    assert report is not None, "%s: rollout never terminated" % name
    # Completed or fully rolled back — both are legal under injected
    # faults; a mixed-version steady state never is.
    assert report.outcome in (COMPLETED, ROLLED_BACK)
    assert not report.mixed_version
    expected = {
        COMPLETED: TARGET_VERSION,
        ROLLED_BACK: PINNED_VERSION,
    }[report.outcome]
    assert set(report.final_versions.values()) == {expected}
    assert violations == []
    # The offline judges agree: no drop pinned on a draining node, no
    # version-order anomaly.
    assert check_history(recorder.history) == []


def upgrade_campaign(seed, episodes):
    return ChaosCampaign(
        seed=seed,
        episodes=episodes,
        episode_duration=18.0,
        settle=12.0,
        upgrade=True,
    )


def assert_campaign_safe(result):
    assert result.ok, [str(v) for v in result.violations]
    for episode in result.episodes:
        assert episode.rollout is not None
        assert episode.rollout["outcome"] in (COMPLETED, ROLLED_BACK)
        assert episode.rollout["mixed_version"] is False
        assert episode.conformance == []


def test_small_upgrade_campaign_is_safe():
    result = upgrade_campaign(seed=5, episodes=3).run()
    assert_campaign_safe(result)


def test_upgrade_campaign_is_deterministic():
    first = upgrade_campaign(seed=9, episodes=2).run()
    second = upgrade_campaign(seed=9, episodes=2).run()
    assert first.trace_digest() == second.trace_digest()
    assert [e.rollout for e in first.episodes] == [
        e.rollout for e in second.episodes
    ]


@pytest.mark.chaos
def test_25_episode_upgrade_sweep():
    """The acceptance sweep: 25 seeded episodes of chaos-during-upgrade,
    zero rollout-attributed drops, zero mixed-version end states."""
    result = upgrade_campaign(seed=0, episodes=25).run()
    assert_campaign_safe(result)
    outcomes = [e.rollout["outcome"] for e in result.episodes]
    assert len(outcomes) == 25
