"""The live rollout engine: clean completion and SLA-gated rollback.

Both runs record a conformance history; the offline checkers must stay
silent — a correct rollout neither drops requests nor leaves the fleet
mixed-version, whichever way it terminates.
"""

from repro.conformance import check_history
from repro.conformance.runtime import recording
from repro.rollout.engine import COMPLETED, ROLLED_BACK
from repro.rollout.scenario import (
    PINNED_VERSION,
    TARGET_VERSION,
    rollout_scenario,
)
from repro.telemetry import runtime as _rt
from repro.telemetry.runtime import Telemetry


def run_rollout(seed=0, bad_release=False, duration=20.0):
    """Run one instrumented rollout: telemetry gates + recorded history."""
    env = rollout_scenario(seed, bad_release=bad_release)
    telemetry = Telemetry(env.loop.clock, env.cluster.rng, scenario="rollout")
    _rt.activate(telemetry)
    telemetry.open_root("rollout-test")
    try:
        with recording(env.loop.clock) as recorder:
            env.run_for(duration)
    finally:
        telemetry.close_root()
        _rt.deactivate()
    report = env.rollout_engine.report
    assert report is not None, "rollout never terminated"
    return env, report, recorder


def test_clean_rollout_completes_at_target():
    env, report, recorder = run_rollout()
    assert report.outcome == COMPLETED
    assert set(report.final_versions.values()) == {TARGET_VERSION}
    assert not report.mixed_version
    assert sorted(report.touched) == sorted(env.rollout_fleet)
    # Every gate evaluation along the way passed.
    assert report.gate_results
    assert all(
        g["ok"] for entry in report.gate_results for g in entry["gates"]
    )
    assert check_history(recorder.history) == []


def test_bad_release_rolls_back_to_pinned():
    env, report, recorder = run_rollout(bad_release=True)
    assert report.outcome == ROLLED_BACK
    assert "latency-p95" in report.reason
    assert set(report.final_versions.values()) == {PINNED_VERSION}
    assert not report.mixed_version
    # The canary was touched, judged unhealthy, and restored — with its
    # drain intact, so the rollback itself dropped nothing.
    assert any(
        not g["ok"] for entry in report.gate_results for g in entry["gates"]
    )
    assert check_history(recorder.history) == []


def test_report_summary_is_sorted_and_serialisable():
    import json

    _env, report, _recorder = run_rollout()
    summary = report.summary()
    assert summary["outcome"] == COMPLETED
    assert summary["final_versions"] == report.final_versions
    assert list(summary["final_versions"]) == sorted(summary["final_versions"])
    json.dumps(summary, sort_keys=True)


def test_history_records_the_full_phase_sequence():
    _env, _report, recorder = run_rollout()
    phases = [
        e.data["phase"] for e in recorder.history.of_kind("rollout")
    ]
    assert phases[0] == "start"
    assert phases[-1] == "final"
    for member_phase in ("drain-begin", "drain-complete", "upgrade-begin",
                         "upgrade-complete", "undrain"):
        assert phases.count(member_phase) == 3
