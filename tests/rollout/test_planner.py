"""Property tests for the wave planner and its pure rollout model.

The model (:func:`simulate_plan`) is the specification the live engine
is judged against: on success every instance upgrades exactly once, and
a gate trip at *any* point rolls every touched instance back to the
pinned version — never a mixed-version end state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rollout.planner import plan_waves, simulate_plan

settings.register_profile("repro", max_examples=50, deadline=None)
settings.load_profile("repro")

PINNED = "1.0.0"
TARGET = "2.0.0"

names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
fleets = st.lists(names, min_size=1, max_size=12)
canaries = st.integers(min_value=1, max_value=4)
wave_sizes = st.integers(min_value=1, max_value=5)


@given(fleets, canaries, wave_sizes)
def test_every_member_planned_exactly_once(fleet, n_canaries, wave_size):
    plan = plan_waves(fleet, canaries=n_canaries, wave_size=wave_size)
    assert sorted(plan.members) == sorted(set(fleet))
    assert len(plan.members) == len(set(plan.members))


@given(fleets, canaries, wave_sizes)
def test_wave_shapes(fleet, n_canaries, wave_size):
    plan = plan_waves(fleet, canaries=n_canaries, wave_size=wave_size)
    assert all(plan.waves), "no empty waves"
    assert len(plan.waves[0]) == min(n_canaries, len(set(fleet)))
    for wave in plan.waves[1:]:
        assert len(wave) <= wave_size


@given(fleets, canaries, wave_sizes)
def test_plan_is_order_insensitive(fleet, n_canaries, wave_size):
    forward = plan_waves(fleet, canaries=n_canaries, wave_size=wave_size)
    backward = plan_waves(
        list(reversed(fleet)), canaries=n_canaries, wave_size=wave_size
    )
    assert forward == backward


@given(fleets, canaries, wave_sizes)
def test_success_upgrades_every_instance_exactly_once(
    fleet, n_canaries, wave_size
):
    plan = plan_waves(fleet, canaries=n_canaries, wave_size=wave_size)
    versions, counts = simulate_plan(plan, PINNED, TARGET)
    assert set(versions.values()) == {TARGET}
    assert set(counts.values()) == {1}


@given(fleets, canaries, wave_sizes, st.integers(min_value=0, max_value=20))
def test_any_trip_point_restores_pinned(
    fleet, n_canaries, wave_size, trip_after
):
    plan = plan_waves(fleet, canaries=n_canaries, wave_size=wave_size)
    versions, counts = simulate_plan(
        plan, PINNED, TARGET, trip_after=trip_after
    )
    # Regardless of where the gate tripped, the end state is uniform and
    # pinned — the rollback undoes every touched member.
    assert set(versions.values()) == {PINNED}
    assert all(count <= 1 for count in counts.values())
    # Only the members upgraded before the trip were ever touched.
    assert sum(counts.values()) == min(trip_after, len(plan.members))


def test_rejects_degenerate_plans():
    with pytest.raises(ValueError):
        plan_waves([])
    with pytest.raises(ValueError):
        plan_waves(["a"], canaries=0)
    with pytest.raises(ValueError):
        plan_waves(["a"], wave_size=0)


def test_small_fleet_shape():
    plan = plan_waves(["svc-1", "svc-2", "svc-3"])
    assert plan.waves == (("svc-1",), ("svc-2", "svc-3"))
