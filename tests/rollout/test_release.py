"""BundleRelease: version-pinned, freshly-materialised definitions."""

from repro.rollout.release import BundleRelease, make_release


def test_make_release_defaults():
    release = make_release()
    assert release.symbolic_name == "fleet.app"
    assert release.version == "2.0.0"
    assert str(release) == "fleet.app@2.0.0"


def test_definition_carries_version_and_profile():
    release = make_release("fleet.app", version="3.1.0", service_time=0.05)
    definition = release.definition()
    assert definition.symbolic_name == "fleet.app"
    assert str(definition.version) == "3.1.0"


def test_definitions_are_fresh_per_call():
    release = make_release()
    assert release.definition() is not release.definition()


def test_release_is_value_like():
    assert make_release(version="9.0.0") == BundleRelease(
        symbolic_name="fleet.app", version="9.0.0"
    )
