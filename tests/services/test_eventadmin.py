"""EventAdmin topic routing."""

import pytest

from repro.services.eventadmin import (
    EVENT_ADMIN_CLASS,
    EventAdmin,
    PlatformEvent,
    eventadmin_bundle,
)
from repro.sim.eventloop import EventLoop


@pytest.fixture
def admin():
    return EventAdmin()


class TestTopics:
    @pytest.mark.parametrize("bad", ["", "/x", "x/", "a//b"])
    def test_invalid_topics_rejected(self, bad):
        with pytest.raises(ValueError):
            PlatformEvent(bad)

    def test_exact_topic_delivery(self, admin):
        seen = []
        admin.subscribe("a/b", seen.append)
        assert admin.send_event(PlatformEvent("a/b", {"k": 1})) == 1
        assert seen[0].get("k") == 1
        assert admin.send_event(PlatformEvent("a/c")) == 0

    def test_wildcard_covers_subtree(self, admin):
        seen = []
        admin.subscribe("platform/*", seen.append)
        admin.send_event(PlatformEvent("platform/node/failed"))
        admin.send_event(PlatformEvent("platform"))
        admin.send_event(PlatformEvent("other/topic"))
        assert [e.topic for e in seen] == ["platform/node/failed", "platform"]

    def test_universal_wildcard(self, admin):
        seen = []
        admin.subscribe("*", seen.append)
        admin.send_event(PlatformEvent("anything/at/all"))
        assert len(seen) == 1


class TestFilters:
    def test_property_filter_narrows(self, admin):
        seen = []
        admin.subscribe("sla/*", seen.append, filter="(severity>=3)")
        admin.send_event(PlatformEvent("sla/violation", {"severity": 1}))
        admin.send_event(PlatformEvent("sla/violation", {"severity": 5}))
        assert len(seen) == 1
        assert seen[0].get("severity") == 5


class TestDelivery:
    def test_broken_handler_does_not_block_others(self, admin):
        seen = []

        def broken(event):
            raise RuntimeError("handler bug")

        admin.subscribe("t", broken)
        admin.subscribe("t", seen.append)
        assert admin.send_event(PlatformEvent("t")) == 2
        assert len(seen) == 1

    def test_unsubscribe(self, admin):
        seen = []
        subscription = admin.subscribe("t", seen.append)
        subscription.unsubscribe()
        subscription.unsubscribe()  # idempotent
        admin.send_event(PlatformEvent("t"))
        assert seen == []
        assert admin.subscription_count == 0

    def test_post_event_defers_to_loop(self):
        loop = EventLoop()
        admin = EventAdmin(loop)
        seen = []
        admin.subscribe("t", seen.append)
        admin.post_event(PlatformEvent("t"))
        assert seen == []  # not yet delivered
        assert admin.posted_pending == 1
        loop.run_for(0.0)
        assert len(seen) == 1
        assert admin.posted_pending == 0

    def test_post_without_loop_raises(self, admin):
        with pytest.raises(RuntimeError):
            admin.post_event(PlatformEvent("t"))

    def test_empty_pattern_rejected(self, admin):
        with pytest.raises(ValueError):
            admin.subscribe("", lambda e: None)


def test_bundle_registers_service(framework):
    framework.install(eventadmin_bundle()).start()
    ref = framework.system_context.get_service_reference(EVENT_ADMIN_CLASS)
    assert ref is not None


def test_shared_across_virtual_instances(framework):
    """The VOSGi composition: tenants exchange events through the host's
    single EventAdmin, under explicit export."""
    from repro.vosgi.delegation import ExportPolicy
    from repro.vosgi.manager import InstanceManager

    framework.install(eventadmin_bundle()).start()
    manager = InstanceManager(framework)
    exports = ExportPolicy(service_classes={EVENT_ADMIN_CLASS})
    producer = manager.create_instance("producer", policy=exports)
    consumer = manager.create_instance("consumer", policy=exports)

    def admin_of(instance):
        registry = instance.framework.registry
        ref = registry.get_reference(EVENT_ADMIN_CLASS)
        return registry.get_service(instance.framework.system_bundle, ref)

    seen = []
    admin_of(consumer).subscribe("orders/*", seen.append)
    admin_of(producer).send_event(PlatformEvent("orders/new", {"id": 7}))
    assert len(seen) == 1 and seen[0].get("id") == 7
