"""JMX-analogue platform MBeans."""

import pytest

from repro.osgi.definition import simple_bundle
from repro.services.jmx import (
    JMX_SERVICE_CLASS,
    MBeanNotFound,
    PlatformMBeanServer,
    jmx_bundle,
)
from repro.vosgi.manager import instance_manager_bundle


def jmx_of(framework):
    ref = framework.system_context.get_service_reference(JMX_SERVICE_CLASS)
    return framework.system_context.get_service(ref)


def test_framework_mbean_reflects_live_state(framework):
    framework.install(jmx_bundle()).start()
    server = jmx_of(framework)
    before = server.get_attribute("platform:type=Framework", "BundleCount")
    framework.install(simple_bundle("extra")).start()
    after = server.get_attribute("platform:type=Framework", "BundleCount")
    assert after == before + 1
    bundles = server.get_attribute("platform:type=Framework", "Bundles")
    assert bundles["extra"] == "ACTIVE"


def test_memory_mbean(framework):
    framework.install(jmx_bundle()).start()
    server = jmx_of(framework)
    assert server.get_attribute("platform:type=Memory", "FootprintBytes") > 0


def test_instances_mbean_present_with_instance_manager(framework):
    framework.install(instance_manager_bundle()).start()
    framework.install(jmx_bundle()).start()
    server = jmx_of(framework)
    assert "platform:type=Instances" in server.query_names("platform:")
    from repro.vosgi.manager import INSTANCE_MANAGER_CLASS

    manager = framework.system_context.get_service(
        framework.system_context.get_service_reference(INSTANCE_MANAGER_CLASS)
    )
    manager.create_instance("acme")
    assert server.get_attribute("platform:type=Instances", "Names") == ["acme"]
    usage = server.get_attribute("platform:type=Instances", "Usage")
    assert "acme" in usage


def test_instances_mbean_absent_without_manager(framework):
    framework.install(jmx_bundle()).start()
    server = jmx_of(framework)
    assert "platform:type=Instances" not in server.query_names()


def test_unknown_names_raise():
    server = PlatformMBeanServer()
    with pytest.raises(MBeanNotFound):
        server.get_attribute("no:such=bean", "X")
    server.register_mbean("a:b=c", {"X": lambda: 1})
    with pytest.raises(MBeanNotFound):
        server.get_attribute("a:b=c", "Missing")
    assert server.attributes_of("a:b=c") == ["X"]
    with pytest.raises(MBeanNotFound):
        server.attributes_of("gone")


def test_duplicate_registration_rejected():
    server = PlatformMBeanServer()
    server.register_mbean("a:b=c", {})
    with pytest.raises(ValueError):
        server.register_mbean("a:b=c", {})


def test_query_names_prefix():
    server = PlatformMBeanServer()
    server.register_mbean("platform:x=1", {})
    server.register_mbean("tenant:y=2", {})
    assert server.query_names("platform:") == ["platform:x=1"]
