"""Log service bundle."""

import pytest

from repro.services.log import (
    LOG_ERROR,
    LOG_INFO,
    LOG_SERVICE_CLASS,
    LogService,
    log_bundle,
)


def test_bundle_registers_service(framework):
    framework.install(log_bundle()).start()
    ref = framework.system_context.get_service_reference(LOG_SERVICE_CLASS)
    assert ref is not None


def test_entries_recorded_with_source():
    log = LogService()
    log.info("hello", source="acme")
    log.error("boom", source="globex")
    assert len(log) == 2
    assert str(log.entries()[1]) == "[ERROR] globex: boom"


def test_severity_filter():
    log = LogService()
    log.info("fyi", "a")
    log.error("bad", "a")
    errors_only = log.entries(max_level=LOG_ERROR)
    assert [e.message for e in errors_only] == ["bad"]


def test_source_filter():
    log = LogService()
    log.info("one", "acme")
    log.info("two", "globex")
    assert [e.message for e in log.entries(source="acme")] == ["one"]


def test_invalid_level_rejected():
    with pytest.raises(ValueError):
        LogService().log(9, "nope")


def test_capacity_bounds_memory():
    log = LogService(capacity=3)
    for i in range(10):
        log.info("m%d" % i)
    assert len(log) == 3
    assert [e.message for e in log.entries()] == ["m7", "m8", "m9"]
