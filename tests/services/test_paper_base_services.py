"""The paper's §4 fidelity scenario, exactly as written.

"We already tested it by running multiple virtual instances that use
services from the underlying environment namely the log service, the HTTP
service and the JMX server service."
"""

from repro.osgi.definition import BundleActivator, simple_bundle
from repro.osgi.framework import Framework
from repro.services import (
    HTTP_SERVICE_CLASS,
    JMX_SERVICE_CLASS,
    LOG_SERVICE_CLASS,
    http_service_bundle,
    jmx_bundle,
    log_bundle,
)
from repro.vosgi.delegation import ExportPolicy


class PaperTenantActivator(BundleActivator):
    """A tenant bundle using all three underlying services."""

    def start(self, context):
        name = context.get_property("vosgi.instance")
        log = context.get_service(
            context.get_service_reference(LOG_SERVICE_CLASS)
        )
        http = context.get_service(
            context.get_service_reference(HTTP_SERVICE_CLASS)
        )
        jmx = context.get_service(
            context.get_service_reference(JMX_SERVICE_CLASS)
        )
        log.info("starting", source=name)
        http.register_servlet(
            "/%s" % name, lambda request: "%s says hi" % name
        )
        self.peer_count = jmx.get_attribute("platform:type=Instances", "Count")
        log.info("saw %d instances via JMX" % self.peer_count, source=name)

    def stop(self, context):
        pass


def test_paper_scenario_three_base_services():
    host = Framework("paper-host")
    host.start()
    host.install(log_bundle()).start()
    host.install(http_service_bundle()).start()
    from repro.vosgi.manager import instance_manager_bundle, INSTANCE_MANAGER_CLASS

    host.install(instance_manager_bundle()).start()
    host.install(jmx_bundle()).start()
    manager = host.system_context.get_service(
        host.system_context.get_service_reference(INSTANCE_MANAGER_CLASS)
    )
    exports = ExportPolicy(
        service_classes={
            LOG_SERVICE_CLASS,
            HTTP_SERVICE_CLASS,
            JMX_SERVICE_CLASS,
        }
    )
    for name in ("acme", "globex", "initech"):
        instance = manager.create_instance(name, policy=exports)
        instance.install(
            simple_bundle("app", activator_factory=PaperTenantActivator)
        ).start()

    # The single shared log saw every tenant.
    log = host.system_context.get_service(
        host.system_context.get_service_reference(LOG_SERVICE_CLASS)
    )
    sources = {entry.source for entry in log.entries()}
    assert sources == {"acme", "globex", "initech"}

    # The single shared HTTP service serves every tenant's servlet.
    http = host.system_context.get_service(
        host.system_context.get_service_reference(HTTP_SERVICE_CLASS)
    )
    assert http.dispatch("/globex", None) == (200, "globex says hi")

    # Tenants introspected the platform through the shared JMX server.
    app = manager.get("initech").get_bundle_by_name("app")
    assert app._activator.peer_count == 3
    host.stop()
