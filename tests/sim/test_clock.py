"""Clock invariants."""

import pytest

from repro.sim.clock import Clock


def test_starts_at_zero_by_default():
    assert Clock().now == 0.0


def test_starts_at_given_time():
    assert Clock(5.5).now == 5.5


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        Clock(-1.0)


def test_advance_moves_forward():
    clock = Clock()
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_to_same_time_is_allowed():
    clock = Clock(2.0)
    clock.advance_to(2.0)
    assert clock.now == 2.0


def test_advance_backwards_raises():
    clock = Clock(2.0)
    with pytest.raises(ValueError):
        clock.advance_to(1.0)


def test_repr_mentions_time():
    assert "1.5" in repr(Clock(1.5))
