"""Event loop ordering, cancellation and time-window semantics."""

import pytest

from repro.sim.eventloop import EventLoop


def test_events_fire_in_time_order(loop):
    fired = []
    loop.call_at(2.0, lambda: fired.append("b"))
    loop.call_at(1.0, lambda: fired.append("a"))
    loop.call_at(3.0, lambda: fired.append("c"))
    loop.run_until(10.0)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order(loop):
    fired = []
    for name in "abcde":
        loop.call_at(1.0, lambda n=name: fired.append(n))
    loop.run_until(1.0)
    assert fired == list("abcde")


def test_call_after_is_relative(loop):
    loop.run_until(5.0)
    seen = []
    loop.call_after(2.0, lambda: seen.append(loop.clock.now))
    loop.run_for(3.0)
    assert seen == [7.0]


def test_call_soon_runs_at_current_instant(loop):
    loop.run_until(1.0)
    seen = []
    loop.call_soon(lambda: seen.append(loop.clock.now))
    loop.run_for(0.0)
    assert seen == [1.0]


def test_scheduling_in_the_past_raises(loop):
    loop.run_until(5.0)
    with pytest.raises(ValueError):
        loop.call_at(4.0, lambda: None)


def test_negative_delay_raises(loop):
    with pytest.raises(ValueError):
        loop.call_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire(loop):
    fired = []
    handle = loop.call_at(1.0, lambda: fired.append(1))
    handle.cancel()
    loop.run_until(2.0)
    assert fired == []


def test_cancel_is_idempotent(loop):
    handle = loop.call_at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert loop.run_until(2.0) == 0


def test_run_until_advances_clock_even_when_idle(loop):
    loop.run_until(7.0)
    assert loop.clock.now == 7.0


def test_run_until_does_not_fire_later_events(loop):
    fired = []
    loop.call_at(5.0, lambda: fired.append(1))
    loop.run_until(4.0)
    assert fired == []
    loop.run_until(5.0)
    assert fired == [1]


def test_events_scheduled_during_execution_run_same_pass(loop):
    fired = []

    def outer():
        fired.append("outer")
        loop.call_after(0.5, lambda: fired.append("inner"))

    loop.call_at(1.0, outer)
    loop.run_until(2.0)
    assert fired == ["outer", "inner"]


def test_pending_counts_live_events(loop):
    a = loop.call_at(1.0, lambda: None)
    loop.call_at(2.0, lambda: None)
    assert loop.pending == 2
    a.cancel()
    assert loop.pending == 1


def test_fired_counter(loop):
    loop.call_at(1.0, lambda: None)
    loop.call_at(2.0, lambda: None)
    loop.run_until(5.0)
    assert loop.fired == 2


def test_step_returns_false_when_empty(loop):
    assert loop.step() is False


def test_drain_guards_against_runaway(loop):
    def reschedule():
        loop.call_after(0.1, reschedule)

    loop.call_after(0.1, reschedule)
    with pytest.raises(RuntimeError):
        loop.drain(max_events=100)


def test_peek_next_time_skips_cancelled(loop):
    a = loop.call_at(1.0, lambda: None)
    loop.call_at(2.0, lambda: None)
    a.cancel()
    assert loop.peek_next_time() == 2.0


def test_run_for_negative_raises(loop):
    with pytest.raises(ValueError):
        loop.run_for(-1.0)
