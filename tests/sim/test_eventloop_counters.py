"""O(1) pending accounting, heap compaction, and same-instant batching."""

from repro.sim.eventloop import EventLoop


def test_pending_counter_tracks_schedule_cancel_fire():
    loop = EventLoop()
    events = [loop.call_at(float(i), lambda: None) for i in range(10)]
    assert loop.pending == 10
    events[3].cancel()
    events[7].cancel()
    assert loop.pending == 8
    loop.run_until(4.0)  # fires 0,1,2,4 (3 cancelled)
    assert loop.fired == 4
    assert loop.pending == 4


def test_double_cancel_does_not_double_decrement():
    loop = EventLoop()
    event = loop.call_at(1.0, lambda: None)
    keeper = loop.call_at(2.0, lambda: None)
    event.cancel()
    event.cancel()
    event.cancel()
    assert loop.pending == 1
    loop.drain()
    assert loop.pending == 0
    assert loop.fired == 1
    assert not keeper.cancelled


def test_cancel_after_fire_does_not_corrupt_counter():
    loop = EventLoop()
    event = loop.call_at(1.0, lambda: None)
    loop.call_at(2.0, lambda: None)
    loop.run_until(1.5)
    event.cancel()  # already fired: a no-op for the books
    assert loop.pending == 1
    loop.drain()
    assert loop.pending == 0


def test_compaction_shrinks_queue_and_preserves_order():
    loop = EventLoop()
    events = [loop.call_at(float(i), lambda i=i: fired.append(i)) for i in range(100)]
    fired = []
    # Cancel 60% — crossing the half-cancelled threshold compacts the heap.
    for event in events[::2]:
        event.cancel()
    for event in events[1::10]:
        event.cancel()
    survivors = [e for e in events if not e.cancelled]
    assert len(loop._queue) < len(events)  # compaction dropped dead entries
    assert loop.pending == len(survivors)
    loop.drain()
    assert fired == sorted(e.when for e in survivors)


def test_same_instant_batch_preserves_seq_order_and_cancellation():
    loop = EventLoop()
    order = []
    third = loop.call_at(1.0, lambda: order.append("third"))

    def first():
        order.append("first")
        third.cancel()
        loop.call_soon(lambda: order.append("late"))

    loop.call_at(1.0, first)
    loop.call_at(1.0, lambda: order.append("second"))
    loop.run_until(1.0)
    # Strict schedule order within the instant: "third" (earliest seq)
    # fires before "first" can cancel it (a safe no-op), and the
    # call_soon'd "late" event joins the back of the same batch.
    assert order == ["third", "first", "second", "late"]
    assert loop.pending == 0


def test_mid_batch_cancellation_is_honoured():
    loop = EventLoop()
    order = []
    victim = None

    def killer():
        order.append("killer")
        victim.cancel()

    loop.call_at(1.0, killer)
    victim = loop.call_at(1.0, lambda: order.append("victim"))
    loop.call_at(1.0, lambda: order.append("tail"))
    loop.run_until(2.0)
    assert order == ["killer", "tail"]
    assert loop.pending == 0


def test_mid_batch_compaction_keeps_draining_current_instant():
    loop = EventLoop()
    order = []
    # A large population of future events that get mass-cancelled from
    # inside a same-instant batch, forcing an in-place compaction while
    # run_until is iterating the queue alias.
    future = [loop.call_at(5.0 + i, lambda: order.append("future")) for i in range(50)]

    def purge():
        order.append("purge")
        for event in future:
            event.cancel()

    loop.call_at(1.0, purge)
    loop.call_at(1.0, lambda: order.append("after-purge"))
    loop.call_at(2.0, lambda: order.append("next-instant"))
    loop.run_until(10.0)
    assert order == ["purge", "after-purge", "next-instant"]
    assert loop.pending == 0
