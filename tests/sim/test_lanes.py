"""LanedEventLoop mechanics: merge order, lanes, cancellation, pooling.

The differential parity harness (``tests/parity``) proves whole-scenario
equivalence; these tests pin the individual mechanisms the proof rests
on — exact ``(when, seq)`` merge order, lane routing, cross-lane
cancellation bookkeeping, transient-pool sharing, same-instant FIFO
across a merge boundary, and the conservative lookahead horizon.
"""

from __future__ import annotations

import pytest

from repro.sim.clock import Clock
from repro.sim.eventloop import EventLoop
from repro.sim.lanes import LanedEventLoop


@pytest.fixture
def laned() -> LanedEventLoop:
    return LanedEventLoop(Clock())


def test_registration_is_idempotent_and_lane0_is_default(laned):
    a = laned.register_lane("n1")
    b = laned.register_lane("n2")
    assert (a, b) == (1, 2)
    assert laned.register_lane("n1") == a
    assert laned.lane_of_node("n1") == a
    assert laned.lane_of_node("unknown") == 0
    assert laned.lane_count == 3


def test_global_order_across_lanes(laned):
    """Events fire in exact (when, seq) order no matter the lane."""
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []
    laned.call_at(0.3, lambda: fired.append("b"), lane=l2)
    laned.call_at(0.1, lambda: fired.append("a"), lane=l1)
    laned.call_at(0.5, lambda: fired.append("c"), lane=0)
    laned.call_at(0.5, lambda: fired.append("d"), lane=l2)  # same when, later seq
    laned.run_until(1.0)
    assert fired == ["a", "b", "c", "d"]
    assert laned.clock.now == 1.0


def test_same_instant_fifo_across_lane_merge_boundary(laned):
    """Same-instant events in *different* lanes fire in schedule order.

    This is the merge-boundary case: the batch fast-path must stop at a
    cross-lane event with an interleaved sequence number rather than
    draining its own lane past it.
    """
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []
    # Interleave lanes at one instant: seq order is 1a, 2a, 1b, 2b.
    laned.call_at(0.2, lambda: fired.append("1a"), lane=l1)
    laned.call_at(0.2, lambda: fired.append("2a"), lane=l2)
    laned.call_at(0.2, lambda: fired.append("1b"), lane=l1)
    laned.call_at(0.2, lambda: fired.append("2b"), lane=l2)
    laned.run_until(1.0)
    assert fired == ["1a", "2a", "1b", "2b"]


def test_same_instant_chain_spawned_mid_batch_joins_in_seq_order(laned):
    """An event fired in lane A scheduling *now* into lane B yields to it
    exactly when seq order says so — the batch bound tracks cross posts."""
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []

    def first():
        fired.append("a1")
        # Cross-lane same-instant: must fire after a2 (already queued,
        # smaller seq) but the batch may not drain a2's lane past it.
        laned.call_soon(lambda: fired.append("b1"), lane=l2)

    laned.call_at(0.1, first, lane=l1)
    laned.call_at(0.1, lambda: fired.append("a2"), lane=l1)
    laned.run_until(1.0)
    assert fired == ["a1", "a2", "b1"]


def test_events_inherit_the_firing_lane(laned):
    """Work scheduled by a lane's event stays in that lane by default."""
    l1 = laned.register_lane("n1")
    seen = []

    def tick():
        seen.append(laned.executing_lane)
        if len(seen) < 3:
            laned.call_after(0.1, tick)  # no lane hint: inherits

    laned.call_at(0.1, tick, lane=l1)
    laned.run_until(1.0)
    assert seen == [l1, l1, l1]
    assert laned.lane_fired_counts()["n1"] == 3


def test_lane_scope_sets_default_and_restores(laned):
    l1 = laned.register_lane("n1")
    with laned.lane_scope(l1):
        event = laned.call_at(0.5, lambda: None)
    assert event.lane == l1
    assert laned.call_at(0.6, lambda: None).lane == 0


def test_cancel_event_owned_by_non_current_lane(laned):
    """A lane-A event cancelling a queued lane-B event: the cancellation
    must be honoured and lane B's accounting must stay consistent."""
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []
    doomed = laned.call_at(0.5, lambda: fired.append("doomed"), lane=l2)
    survivor = laned.call_at(0.6, lambda: fired.append("survivor"), lane=l2)
    laned.call_at(0.2, doomed.cancel, lane=l1)
    assert laned.pending == 3
    laned.run_until(1.0)
    assert fired == ["survivor"]
    assert laned.pending == 0
    assert survivor.lane == l2
    counts = laned.lane_fired_counts()
    assert counts["n1"] == 1 and counts["n2"] == 1


def test_cancel_storm_in_one_lane_compacts_only_that_lane(laned):
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []
    doomed = [
        laned.call_at(1.0 + i * 0.01, lambda: fired.append("x"), lane=l1)
        for i in range(50)
    ]
    laned.call_at(1.0, lambda: fired.append("keep"), lane=l2)
    for event in doomed:
        event.cancel()
    assert laned.pending == 1
    laned.run_until(2.0)
    assert fired == ["keep"]


def test_cancelled_head_is_skipped_by_the_merge(laned):
    """Cancelling the globally-smallest event (its head-index entry goes
    stale) must not stall or reorder the merge."""
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []
    head = laned.call_at(0.1, lambda: fired.append("head"), lane=l1)
    laned.call_at(0.2, lambda: fired.append("next"), lane=l2)
    head.cancel()
    laned.run_until(1.0)
    assert fired == ["next"]


def test_transient_pool_reuse_across_lanes(laned):
    """Transient events recycle through one shared pool: an object freed
    by lane A's firing is reused for lane B without leaking lane state."""
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []
    laned.call_transient_at(0.1, fired.append, "a", lane=l1)
    laned.run_until(0.15)
    # The pooled object from lane 1's firing must be reusable in lane 2.
    assert len(laned._pool) == 1
    recycled = laned._pool[0]
    laned.call_transient_at(0.2, fired.append, "b", lane=l2)
    assert not laned._pool
    assert recycled.lane == l2
    laned.run_until(1.0)
    assert fired == ["a", "b"]
    assert laned.lane_fired_counts() == {"": 0, "n1": 1, "n2": 1}


def test_step_and_peek_follow_global_order(laned):
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    fired = []
    laned.call_at(0.4, lambda: fired.append("b"), lane=l1)
    laned.call_at(0.2, lambda: fired.append("a"), lane=l2)
    assert laned.peek_next_time() == 0.2
    assert laned.step()
    assert fired == ["a"]
    assert laned.peek_next_time() == 0.4
    assert laned.step()
    assert not laned.step()
    assert fired == ["a", "b"]


def test_safe_horizon_uses_min_link_latency(laned):
    l1 = laned.register_lane("n1")
    l2 = laned.register_lane("n2")
    laned.note_link_latency(0.01)
    laned.note_link_latency(0.002)  # a second, faster network wins
    laned.call_at(1.0, lambda: None, lane=l1)
    laned.call_at(5.0, lambda: None, lane=l2)
    # Lane 2's future is sealed until lane 1's head plus the lookahead;
    # lane 0 is empty and does not constrain anyone.
    assert laned.scheduler.safe_horizon(l2) == pytest.approx(1.002)
    assert laned.scheduler.safe_horizon(l1) == pytest.approx(5.002)


def test_safe_horizon_is_infinite_with_no_other_work(laned):
    l1 = laned.register_lane("n1")
    laned.note_link_latency(0.001)
    laned.call_at(1.0, lambda: None, lane=l1)
    assert laned.scheduler.safe_horizon(l1) == float("inf")


def test_mirrors_global_loop_counters():
    """fired/pending/clock agree with the global loop on a shared script."""

    def script(loop):
        lanes = [loop.register_lane(k) for k in ("n1", "n2")]
        out = []
        for i in range(10):
            loop.call_at(
                0.1 * (i % 4) + 0.05,
                lambda i=i: out.append(i),
                lane=lanes[i % 2],
            )
        cancelled = loop.call_at(0.3, lambda: out.append("no"), lane=lanes[0])
        cancelled.cancel()
        loop.run_until(1.0)
        return out, loop.fired, loop.pending, loop.clock.now

    assert script(EventLoop(Clock())) == script(LanedEventLoop(Clock()))
