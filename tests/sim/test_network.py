"""Simulated network: delivery, FIFO links, loss, partitions."""

import pytest

from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def make_pair(network):
    inbox_a, inbox_b = [], []
    a = network.attach("a", inbox_a.append)
    b = network.attach("b", inbox_b.append)
    return a, b, inbox_a, inbox_b


def test_basic_delivery(loop, network):
    a, b, _, inbox_b = make_pair(network)
    a.send("b", {"hello": 1})
    loop.run_for(1.0)
    assert len(inbox_b) == 1
    assert inbox_b[0].payload == {"hello": 1}
    assert inbox_b[0].source == "a"


def test_latency_is_applied(loop):
    network = Network(loop, RngStreams(0), latency=0.5, jitter=0.0)
    _, b, _, inbox_b = make_pair(network)
    network.send("a", "b", "x")
    loop.run_for(0.4)
    assert inbox_b == []
    loop.run_for(0.2)
    assert len(inbox_b) == 1


def test_fifo_per_link_despite_jitter(loop):
    network = Network(loop, RngStreams(3), latency=0.01, jitter=0.05)
    a, b, _, inbox_b = make_pair(network)
    for i in range(50):
        a.send("b", i)
    loop.run_for(5.0)
    assert [m.payload for m in inbox_b] == list(range(50))


def test_duplicate_attach_rejected(loop, network):
    network.attach("x", lambda m: None)
    with pytest.raises(ValueError):
        network.attach("x", lambda m: None)


def test_message_to_unknown_endpoint_dropped(loop, network):
    a = network.attach("a", lambda m: None)
    a.send("ghost", "boo")
    loop.run_for(1.0)
    assert network.stats.dropped_dead == 1


def test_detached_endpoint_stops_receiving(loop, network):
    a, b, _, inbox_b = make_pair(network)
    a.send("b", 1)
    network.detach("b")
    loop.run_for(1.0)
    assert inbox_b == []
    assert network.stats.dropped_dead == 1


def test_loss_rate_drops_some_messages(loop):
    network = Network(loop, RngStreams(5), loss_rate=0.5)
    a, b, _, inbox_b = make_pair(network)
    for _ in range(200):
        a.send("b", "x")
    loop.run_for(5.0)
    assert 0 < len(inbox_b) < 200
    assert network.stats.dropped_loss + network.stats.delivered == 200


def test_invalid_loss_rate_rejected(loop):
    with pytest.raises(ValueError):
        Network(loop, loss_rate=1.0)
    with pytest.raises(ValueError):
        Network(loop, loss_rate=-0.1)


def test_partition_blocks_cross_group_traffic(loop, network):
    a, b, inbox_a, inbox_b = make_pair(network)
    network.partition({"a"}, {"b"})
    a.send("b", "blocked")
    loop.run_for(1.0)
    assert inbox_b == []
    assert network.stats.dropped_partition == 1


def test_partition_allows_same_group_traffic(loop, network):
    a, b, _, inbox_b = make_pair(network)
    network.partition({"a", "b"}, {"c"})
    a.send("b", "ok")
    loop.run_for(1.0)
    assert len(inbox_b) == 1


def test_heal_restores_traffic(loop, network):
    a, b, _, inbox_b = make_pair(network)
    network.partition({"a"}, {"b"})
    network.heal()
    a.send("b", "ok")
    loop.run_for(1.0)
    assert len(inbox_b) == 1


def test_partition_raised_mid_flight_kills_message(loop):
    network = Network(loop, RngStreams(0), latency=1.0, jitter=0.0)
    a, b, _, inbox_b = make_pair(network)
    a.send("b", "in-flight")
    loop.run_for(0.5)
    network.partition({"a"}, {"b"})
    loop.run_for(1.0)
    assert inbox_b == []


def test_unpartitioned_endpoints_can_still_talk(loop, network):
    a, b, _, inbox_b = make_pair(network)
    inbox_c = []
    c = network.attach("c", inbox_c.append)
    network.partition({"a"})  # only a isolated; b and c unlisted
    b.send("c", "hi")
    loop.run_for(1.0)
    assert len(inbox_c) == 1
    a.send("c", "nope")
    loop.run_for(1.0)
    assert len(inbox_c) == 1


def test_stats_track_bytes(loop, network):
    a, _, _, _ = make_pair(network)
    a.send("b", "x", size_bytes=1000)
    assert network.stats.bytes_sent == 1000


def test_endpoint_names_sorted(loop, network):
    network.attach("z", lambda m: None)
    network.attach("a", lambda m: None)
    assert network.endpoint_names() == ["a", "z"]
