"""Per-tick delivery coalescing must not change observable order."""

from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def make_net(latency=0.01, jitter=0.0):
    loop = EventLoop()
    net = Network(loop, RngStreams(0), latency=latency, jitter=jitter)
    return loop, net


def test_same_instant_sends_coalesce_into_one_event():
    loop, net = make_net()
    inbox = []
    for name in ("a", "b", "c"):
        net.attach(name, lambda m: inbox.append((m.destination, m.payload)))
    fired_before = loop.fired
    # Three links, same send instant, zero jitter -> one delivery tick.
    net.send("a", "b", 1)
    net.send("a", "c", 2)
    net.send("b", "c", 3)
    loop.run_for(1.0)
    assert inbox == [("b", 1), ("c", 2), ("c", 3)]
    assert loop.fired - fired_before == 1


def test_interleaved_scheduling_defeats_merge_but_keeps_order():
    """If anything else is scheduled between sends, batches must NOT
    merge (a merged tick would fire ahead of the interleaved event)."""
    loop, net = make_net()
    order = []
    net.attach("a", lambda m: None)
    net.attach("b", lambda m: order.append("msg-b:%s" % m.payload))
    net.attach("c", lambda m: order.append("msg-c:%s" % m.payload))
    net.send("a", "b", 1)
    loop.call_at(0.01, lambda: order.append("timer"))
    net.send("a", "c", 2)
    loop.run_for(1.0)
    assert order == ["msg-b:1", "timer", "msg-c:2"]


def test_fifo_per_link_held_under_backpressure():
    loop, net = make_net(latency=0.01, jitter=0.005)
    seen = []
    net.attach("src", lambda m: None)
    net.attach("dst", lambda m: seen.append(m.payload))
    for i in range(50):
        net.send("src", "dst", i)
    loop.run_for(5.0)
    assert seen == list(range(50))


def test_sends_from_handler_at_delivery_instant():
    """A handler sending during a tick opens a fresh batch/tick; the
    relayed message still arrives, in order."""
    loop, net = make_net(latency=0.0, jitter=0.0)
    seen = []

    def relay(message):
        seen.append("b:%s" % message.payload)
        if message.payload == "ping":
            net.send("b", "c", "pong")

    net.attach("a", lambda m: None)
    net.attach("b", relay)
    net.attach("c", lambda m: seen.append("c:%s" % m.payload))
    net.send("a", "b", "ping")
    loop.run_for(1.0)
    assert seen == ["b:ping", "c:pong"]


def test_partition_checked_at_delivery_even_when_coalesced():
    loop, net = make_net()
    seen = []
    net.attach("a", lambda m: None)
    net.attach("b", lambda m: seen.append(m.payload))
    net.attach("c", lambda m: seen.append(m.payload))
    net.send("a", "b", 1)
    net.send("a", "c", 2)
    net.partition({"a", "b"}, {"c"})
    loop.run_for(1.0)
    assert seen == [1]
    assert net.stats.dropped_partition == 1


def test_coalescing_preserves_cross_link_batch_order():
    """Round-robin sends across many links at one instant: each link's
    batch rides the tick in first-send order — exactly the order the
    per-batch events would have fired pre-coalescing (their seqs were
    assigned at each link's first send)."""
    loop, net = make_net(latency=0.02, jitter=0.0)
    seen = []
    net.attach("hub", lambda m: None)
    for i in range(5):
        name = "n%d" % i
        net.attach(
            name, lambda m, name=name: seen.append((name, m.payload))
        )
    for round_no in range(3):
        for i in range(5):
            net.send("hub", "n%d" % i, round_no)
    loop.run_for(1.0)
    expected = []
    for i in range(5):
        for round_no in range(3):
            expected.append(("n%d" % i, round_no))
    assert seen == expected
