"""Network tick coalescing must be lane-local on the laned scheduler.

The coalescing guard keys off the loop's global ``scheduled`` counter
("nothing else went in between"), which proves *order* preservation but
says nothing about *ownership*: two same-instant batches bound for
different nodes live in different lanes, and merging them would execute
one lane's deliveries inside another lane's event. The regression case
pinned here: consecutive same-instant sends to nodes in different lanes
satisfy the sequence-counter guard and would merge without the
lane-equality check.
"""

from __future__ import annotations

import pytest

from repro.sim.clock import Clock
from repro.sim.eventloop import EventLoop
from repro.sim.lanes import LanedEventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams


def _quiet_network(loop):
    return Network(loop, RngStreams(7), latency=0.001, jitter=0.0, loss_rate=0.0)


def test_cross_lane_sends_do_not_share_a_tick_event():
    """The merge-defeat case: same instant, same seq-guard, different
    destination lanes — the laned guard must open a second tick."""
    loop = LanedEventLoop(Clock())
    l1 = loop.register_lane("n1")
    l2 = loop.register_lane("n2")
    network = _quiet_network(loop)
    fired_in = []
    network.attach("src", lambda m: None)
    network.attach("n1", lambda m: fired_in.append(("n1", loop.executing_lane)))
    network.attach("n2", lambda m: fired_in.append(("n2", loop.executing_lane)))

    before = loop.scheduled
    network.send("src", "n1", "a")
    network.send("src", "n2", "b")  # nothing scheduled in between
    # Two delivery events, not one merged tick.
    assert loop.scheduled - before == 2
    loop.run_until(1.0)
    # Each delivery executed in the lane owning its destination node.
    assert fired_in == [("n1", l1), ("n2", l2)]


def test_same_lane_sends_still_coalesce():
    """Lane-locality must not defeat the optimisation inside one lane:
    two endpoints of the same node share the node's lane and the tick."""
    loop = LanedEventLoop(Clock())
    l1 = loop.register_lane("n1")
    network = _quiet_network(loop)
    order = []
    network.attach("src", lambda m: None)
    network.attach("svc/n1", lambda m: order.append(("svc", loop.executing_lane)))
    network.attach("app/n1", lambda m: order.append(("app", loop.executing_lane)))

    before = loop.scheduled
    network.send("src", "svc/n1", "a")
    network.send("src", "app/n1", "b")
    # One merged tick event for both links.
    assert loop.scheduled - before == 1
    loop.run_until(1.0)
    assert order == [("svc", l1), ("app", l1)]


def test_global_scheduler_keeps_merging_across_nodes():
    """On the global loop every node is lane 0; the guard is unchanged."""
    loop = EventLoop(Clock())
    network = _quiet_network(loop)
    seen = []
    network.attach("src", lambda m: None)
    network.attach("n1", lambda m: seen.append("n1"))
    network.attach("n2", lambda m: seen.append("n2"))

    before = loop.scheduled
    network.send("src", "n1", "a")
    network.send("src", "n2", "b")
    assert loop.scheduled - before == 1
    loop.run_until(1.0)
    assert seen == ["n1", "n2"]


def test_interleaved_lane_sends_match_global_delivery_order():
    """n1->n2->n1 same-instant sends: the laned loop defeats the tick
    merge (two lanes) but message 3 still piggybacks on link src->n1's
    open batch, exactly as on the global loop. Delivery order — FIFO per
    link, batch-grouped across links — must match byte for byte."""

    def run(loop):
        loop.register_lane("n1")
        loop.register_lane("n2")
        network = _quiet_network(loop)
        order = []
        network.attach("src", lambda m: None)
        network.attach("n1", lambda m: order.append(m.payload))
        network.attach("n2", lambda m: order.append(m.payload))
        network.send("src", "n1", 1)
        network.send("src", "n2", 2)
        network.send("src", "n1", 3)
        loop.run_until(1.0)
        return order

    global_order = run(EventLoop(Clock()))
    laned_order = run(LanedEventLoop(Clock()))
    assert laned_order == global_order
    # Per-link FIFO held: 3 never overtakes 1 on the src->n1 link.
    assert laned_order.index(1) < laned_order.index(3)


def test_network_reports_link_latency_for_lookahead():
    loop = LanedEventLoop(Clock())
    assert loop.scheduler.min_link_latency == float("inf")
    Network(loop, RngStreams(0), latency=0.004, jitter=0.0)
    assert loop.scheduler.min_link_latency == pytest.approx(0.004)
    Network(loop, RngStreams(0), latency=0.002, jitter=0.001)
    assert loop.scheduler.min_link_latency == pytest.approx(0.002)
