"""Regression: partition()/heal() semantics and dropped_partition counting."""

import itertools

import pytest

from repro.sim.network import Network


def mailboxes(network: Network, names):
    boxes = {name: [] for name in names}
    for name in names:
        network.attach(name, boxes[name].append)
    return boxes


def exchange_all_pairs(network: Network, loop, names, tag):
    """Send one tagged message along every ordered endpoint pair."""
    for a, b in itertools.permutations(names, 2):
        network.send(a, b, "%s:%s->%s" % (tag, a, b))
    loop.run_for(1.0)


NAMES = ("a", "b", "c", "d")


def test_heal_restores_delivery_between_all_pairs(network, loop):
    boxes = mailboxes(network, NAMES)
    network.partition({"a", "b"}, {"c", "d"})
    exchange_all_pairs(network, loop, NAMES, "split")
    # Only intra-group traffic got through.
    assert [m.payload for m in boxes["a"]] == ["split:b->a"]
    assert [m.payload for m in boxes["c"]] == ["split:d->c"]

    network.heal()
    assert not network.partitioned
    exchange_all_pairs(network, loop, NAMES, "healed")
    for name in NAMES:
        senders = sorted(
            m.source for m in boxes[name] if m.payload.startswith("healed:")
        )
        assert senders == sorted(n for n in NAMES if n != name), (
            "endpoint %s unreachable from %s after heal" % (name, senders)
        )


def test_node_partition_heal_restores_all_pairs(network, loop):
    names = ["gcs/g/%s" % n for n in ("n1", "n2", "n3")]
    boxes = mailboxes(network, names)
    network.partition_nodes({"n1"}, {"n2", "n3"})
    exchange_all_pairs(network, loop, names, "split")
    assert [m.payload for m in boxes["gcs/g/n1"]] == []
    network.heal()
    exchange_all_pairs(network, loop, names, "healed")
    for name in names:
        received = [m for m in boxes[name] if m.payload.startswith("healed:")]
        assert len(received) == len(names) - 1


def test_dropped_partition_counts_sends_into_the_wall(network, loop):
    mailboxes(network, NAMES)
    network.partition({"a", "b"}, {"c", "d"})
    exchange_all_pairs(network, loop, NAMES, "x")
    # 12 ordered pairs total, 4 intra-group ones deliver, 8 cross the cut.
    assert network.stats.dropped_partition == 8
    assert network.stats.delivered == 4
    network.heal()
    exchange_all_pairs(network, loop, NAMES, "y")
    assert network.stats.dropped_partition == 8  # unchanged after heal
    assert network.stats.delivered == 16


def test_partition_raised_mid_flight_drops_at_delivery_time(network, loop):
    boxes = mailboxes(network, ("a", "b"))
    network.send("a", "b", "doomed")
    network.partition({"a"}, {"b"})  # raised while the message is in flight
    loop.run_for(1.0)
    assert boxes["b"] == []
    assert network.stats.dropped_partition == 1
    assert network.stats.delivered == 0


def test_unlisted_endpoints_keep_talking_to_each_other(network, loop):
    boxes = mailboxes(network, ("a", "b", "x", "y"))
    network.partition({"a"}, {"b"})
    network.send("x", "y", "bystander")
    network.send("x", "a", "into-partition")
    loop.run_for(1.0)
    assert [m.payload for m in boxes["y"]] == ["bystander"]
    assert boxes["a"] == []  # partitioned endpoints are cut off from outsiders


def test_repartition_replaces_previous_layout(network, loop):
    boxes = mailboxes(network, ("a", "b", "c"))
    network.partition({"a"}, {"b", "c"})
    network.partition({"a", "b"}, {"c"})  # replaces, not accumulates
    network.send("a", "b", "now-together")
    loop.run_for(1.0)
    assert [m.payload for m in boxes["b"]] == ["now-together"]


def test_heal_is_idempotent(network):
    network.partition({"a"}, {"b"})
    network.heal()
    network.heal()
    assert not network.partitioned
