"""PoolRunner: process-pool lane batches with inline-identical results.

The pool changes *where* a pure task runs, never *when* its result is
observed — results apply at the task's event in canonical ``(when,
seq)`` order. These tests drive the same script with the pool forced
off (inline) and, where the environment allows worker processes, with
it on, asserting identical outcomes. Sandboxes without semaphore
support simply exercise the documented inline degradation.
"""

from __future__ import annotations

import pytest

from repro.sim.clock import Clock
from repro.sim.lanes import LanedEventLoop
from repro.sim.poolexec import PoolRunner


def crunch(payload):
    """Top-level pure task (picklable for the worker pool)."""
    base, n = payload
    total = base
    for i in range(1, n + 1):
        total = (total * 31 + i) % 1000003
    return total


def _script(runner, loop):
    lanes = [loop.register_lane(k) for k in ("n1", "n2", "n3")]
    loop.note_link_latency(0.01)
    results = []
    for i in range(9):
        runner.submit_at(
            0.1 + 0.05 * i,
            crunch,
            (i, 500),
            lambda value, i=i: results.append((i, value)),
            lane=lanes[i % 3],
        )
    runner.run_until(2.0, chunk=0.1)
    return results


def test_inline_results_apply_in_canonical_order():
    loop = LanedEventLoop(Clock())
    runner = PoolRunner(loop)
    runner._pool_failed = True  # force inline mode
    results = _script(runner, loop)
    assert [i for i, _ in results] == list(range(9))
    assert results == [(i, crunch((i, 500))) for i in range(9)]
    assert runner.inline == 9 and runner.pooled == 0


def test_pooled_results_equal_inline_results():
    inline_loop = LanedEventLoop(Clock())
    inline_runner = PoolRunner(inline_loop)
    inline_runner._pool_failed = True
    inline = _script(inline_runner, inline_loop)

    pooled_loop = LanedEventLoop(Clock())
    with PoolRunner(pooled_loop, max_workers=2) as runner:
        pooled = _script(runner, pooled_loop)
        if not runner.pool_available:
            pytest.skip("process pool unavailable in this environment")
        assert runner.pooled > 0
    assert pooled == inline


def test_prefetch_respects_the_safe_horizon():
    """A task beyond every other lane's head + lookahead must not be
    submitted early; one inside the horizon may be."""
    loop = LanedEventLoop(Clock())
    l1 = loop.register_lane("n1")
    l2 = loop.register_lane("n2")
    loop.note_link_latency(0.001)
    runner = PoolRunner(loop)
    applied = []
    # Lane 2 has work at t=0.05; lane 1's horizon is 0.051.
    loop.call_at(0.05, lambda: None, lane=l2)
    runner.submit_at(0.02, crunch, (1, 10), applied.append, lane=l1)  # safe
    runner.submit_at(0.50, crunch, (2, 10), applied.append, lane=l1)  # not yet

    class FakeExecutor:
        def __init__(self):
            self.submitted = []

        def submit(self, fn, payload):
            self.submitted.append(payload)

            class Done:
                @staticmethod
                def result():
                    return fn(payload)

            return Done()

    fake = FakeExecutor()
    runner._executor = fake
    assert runner.prefetch() == 1
    assert fake.submitted == [(1, 10)]
    loop.run_until(1.0)
    assert applied == [crunch((1, 10)), crunch((2, 10))]
    assert runner.pooled == 1 and runner.inline == 1
