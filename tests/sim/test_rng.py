"""Named random stream independence and determinism."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_same_draws():
    a = RngStreams(42).stream("net")
    b = RngStreams(42).stream("net")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_independent_streams():
    streams = RngStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random()
    b = RngStreams(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RngStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_adding_streams_does_not_perturb_existing():
    one = RngStreams(9)
    first = one.stream("a")
    draws_before = [first.random() for _ in range(3)]

    two = RngStreams(9)
    two.stream("zzz")  # extra stream created first
    second = two.stream("a")
    draws_after = [second.random() for _ in range(3)]
    assert draws_before == draws_after
