"""Named RNG substreams: per-entity draws, invariant to lane layout.

Satellite of the lane refactor: span/event ids must be identical
regardless of lane count, which requires each node's ids to be a pure
function of ``(root seed, node name, draw index)`` — never of how draws
from *different* nodes interleave. ``RngStreams.substream`` provides
exactly that, and these tests pin it with digests so a future change to
the derivation (or to stream bookkeeping) cannot silently re-id every
span in every recorded artifact.
"""

from __future__ import annotations

import hashlib
import random

from repro.sim.clock import Clock
from repro.sim.rng import RngStreams
from repro.telemetry.tracer import Tracer

#: First four 64-bit ids of telemetry/n1 + telemetry/n2 at seed 2026.
PINNED_SUBSTREAM_DIGEST = (
    "e595979713c3d21ce20bdd26a383415ea8459eebdb0cbb4e5cc5021ff753b009"
)


def test_substream_is_the_slash_named_stream():
    streams = RngStreams(5)
    assert streams.substream("telemetry", "n1") is streams.stream("telemetry/n1")


def test_substream_draws_are_pinned():
    streams = RngStreams(2026)
    ids = []
    for node in ("n1", "n2"):
        rng = streams.substream("telemetry", node)
        ids.extend("%016x" % rng.getrandbits(64) for _ in range(4))
    digest = hashlib.sha256("|".join(ids).encode("utf-8")).hexdigest()
    assert digest == PINNED_SUBSTREAM_DIGEST


def test_substream_draws_do_not_depend_on_interleaving():
    """Round-robin across nodes vs node-at-a-time: same per-node values.

    This is the lane-count-invariance property in miniature — a laned
    run interleaves nodes differently than the global run interleaves
    them, and per-node draw sequences must not care.
    """
    a = RngStreams(99)
    sequential = {
        node: [a.substream("telemetry", node).random() for _ in range(6)]
        for node in ("n1", "n2", "n3")
    }
    b = RngStreams(99)
    interleaved = {node: [] for node in ("n1", "n2", "n3")}
    for _ in range(6):
        for node in ("n3", "n1", "n2"):  # different visit order too
            interleaved[node].append(b.substream("telemetry", node).random())
    assert interleaved == sequential


def test_creating_substreams_never_perturbs_existing_streams():
    """The pinned chaos trace digest rests on this: the ``faults``
    schedule stream draws the same values no matter how many
    ``telemetry/<node>`` substreams exist."""
    plain = RngStreams(2026)
    baseline = [plain.stream("faults").random() for _ in range(8)]

    busy = RngStreams(2026)
    for node in ("n1", "n2", "n3", "n4", "n5"):
        busy.substream("telemetry", node).random()
        busy.substream("faults", node).random()
    assert [busy.stream("faults").random() for _ in range(8)] == baseline


def test_tracer_per_node_ids_are_interleaving_invariant():
    """Two tracers starting the same per-node spans in different global
    orders mint identical ids for each node's spans."""

    def ids_by_node(order):
        tracer = Tracer(Clock(), RngStreams(7))
        for node in order:
            tracer.start_span("op", node=node, parent=None)
        by_node = {}
        for span in tracer.spans:
            by_node.setdefault(span.node, []).append(
                (span.context.trace_id, span.context.span_id)
            )
        return by_node

    a = ids_by_node(["n1", "n2", "n1", "n3", "n2", "n1"])
    b = ids_by_node(["n3", "n1", "n1", "n2", "n2", "n1"])
    assert a == b


def test_tracer_legacy_single_stream_mode_unchanged():
    """Unit-test construction with a bare random.Random keeps the old
    behaviour: one shared stream, node-independent."""
    tracer = Tracer(Clock(), random.Random(42))
    first = tracer.start_span("a", node="n1", parent=None)
    expect = random.Random(42)
    assert first.context.trace_id == "%016x" % expect.getrandbits(64)
    assert first.context.span_id == "%016x" % expect.getrandbits(64)
