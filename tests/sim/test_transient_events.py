"""Transient (pooled) events and the same-instant ready queue.

The macro-scale fast paths reroute scheduling through
``call_transient_at`` and a ready deque; these must be observably
indistinguishable from ``call_at`` — same strict (time, seq) order.
"""

import pytest

from repro.sim.eventloop import EventLoop


def test_transient_fires_at_time_with_arg():
    loop = EventLoop()
    seen = []
    loop.call_transient_at(1.0, seen.append, "a")
    loop.call_transient_after(2.0, seen.append, "b")
    loop.call_transient_at(1.5, lambda: seen.append("no-arg"))
    loop.run_until(5.0)
    assert seen == ["a", "no-arg", "b"]
    assert loop.fired == 3
    assert loop.pending == 0


def test_transient_past_scheduling_rejected():
    loop = EventLoop()
    loop.run_until(5.0)
    with pytest.raises(ValueError):
        loop.call_transient_at(4.0, lambda: None)
    with pytest.raises(ValueError):
        loop.call_transient_after(-0.1, lambda: None)


def test_interleaved_transient_and_regular_order():
    """Mixed APIs share one sequence counter: strict scheduling order."""
    loop = EventLoop()
    seen = []
    loop.call_at(1.0, lambda: seen.append("r1"))
    loop.call_transient_at(1.0, seen.append, "t1")
    loop.call_at(1.0, lambda: seen.append("r2"))
    loop.call_transient_at(1.0, seen.append, "t2")
    loop.run_until(2.0)
    assert seen == ["r1", "t1", "r2", "t2"]


def test_same_instant_chains_fire_in_seq_order():
    """Events scheduled *at the current instant* (the ready deque) join
    the back of the in-flight batch, exactly like the heap used to."""
    loop = EventLoop()
    seen = []

    def first():
        seen.append("first")
        loop.call_soon(lambda: seen.append("nested-regular"))
        loop.call_transient_at(loop.clock.now, seen.append, "nested-transient")

    loop.call_at(1.0, first)
    loop.call_at(1.0, lambda: seen.append("second"))
    loop.run_until(2.0)
    assert seen == ["first", "second", "nested-regular", "nested-transient"]


def test_ready_queue_respects_step_and_cancellation():
    loop = EventLoop()
    seen = []
    handle = loop.call_soon(lambda: seen.append("a"))
    loop.call_soon(lambda: seen.append("b"))
    handle.cancel()
    assert loop.pending == 1
    assert loop.peek_next_time() == loop.clock.now
    assert loop.step() is True
    assert seen == ["b"]
    assert loop.step() is False


def test_pool_recycles_event_objects():
    loop = EventLoop()
    for _ in range(3):
        loop.call_transient_after(1.0, lambda: None)
    loop.run_until(10.0)
    before = len(loop._pool)
    assert before >= 1
    # New transients draw from the pool rather than allocating.
    loop.call_transient_after(1.0, lambda: None)
    assert len(loop._pool) == before - 1
    loop.run_until(20.0)
    assert len(loop._pool) == before


def test_pooled_events_do_not_leak_state():
    loop = EventLoop()
    seen = []
    loop.call_transient_at(1.0, seen.append, "x")
    loop.run_until(2.0)
    # Recycled event must not retain the old action/arg.
    loop.call_transient_at(3.0, seen.append, "y")
    loop.run_until(4.0)
    assert seen == ["x", "y"]


def test_heap_beats_ready_at_same_instant_in_step():
    """A heap event at time t was scheduled before the clock reached t,
    so it must precede any ready event created at t."""
    loop = EventLoop()
    seen = []
    loop.call_at(1.0, lambda: seen.append("heap"))

    def at_one():
        # Now at t=1: schedule-for-now lands on the ready deque.
        loop.call_soon(lambda: seen.append("ready"))

    loop.call_at(0.5, lambda: loop.call_at(1.0, lambda: seen.append("heap2")))
    loop.call_at(1.0, at_one)
    while loop.step():
        pass
    assert seen == ["heap", "heap2", "ready"]


def test_run_until_counts_mixed_fires():
    loop = EventLoop()
    loop.call_at(1.0, lambda: None)
    loop.call_transient_at(1.0, lambda: None)
    loop.call_soon(lambda: None)
    fired = loop.run_until(2.0)
    assert fired == 3


def test_scheduled_counter_is_monotone():
    loop = EventLoop()
    a = loop.scheduled
    loop.call_at(1.0, lambda: None)
    b = loop.scheduled
    loop.call_transient_at(1.0, lambda: None)
    c = loop.scheduled
    assert a < b < c
