"""SLA contract object."""

import pytest

from repro.sla.agreement import ServiceLevelAgreement


def test_defaults():
    sla = ServiceLevelAgreement("acme")
    assert sla.cpu_share == 0.25
    assert sla.availability_target == 0.99


@pytest.mark.parametrize("share", [0.0, 1.5])
def test_invalid_cpu_share(share):
    with pytest.raises(ValueError):
        ServiceLevelAgreement("acme", cpu_share=share)


@pytest.mark.parametrize("target", [0.0, 1.1])
def test_invalid_availability_target(target):
    with pytest.raises(ValueError):
        ServiceLevelAgreement("acme", availability_target=target)


def test_quota_materialization():
    sla = ServiceLevelAgreement("acme", cpu_share=0.3, memory_bytes=111, disk_bytes=222)
    quota = sla.quota()
    assert quota.cpu_share == 0.3
    assert quota.memory_bytes == 111
    assert quota.disk_bytes == 222


def test_descriptor_materialization():
    sla = ServiceLevelAgreement("acme", cpu_share=0.3, priority=4)
    descriptor = sla.descriptor(
        packages=("log",), services=("log.S",), bundle_count_hint=3
    )
    assert descriptor.name == "acme"
    assert descriptor.packages == ("log",)
    assert descriptor.priority == 4
    assert descriptor.bundle_count_hint == 3
