"""SLA compliance: availability timelines and violation accounting."""

import pytest

from repro.monitoring.monitor import UsageReport
from repro.sla.agreement import ServiceLevelAgreement
from repro.sla.tracker import SlaTracker


def report(instance="acme", cpu_share=0.5, at=0.0, memory=None, disk=None):
    return UsageReport(
        instance=instance,
        at=at,
        window=1.0,
        cpu_share=cpu_share,
        cpu_seconds_total=cpu_share,
        memory_bytes=memory,
        disk_bytes=disk,
        quota_cpu_share=0.2,
        quota_memory_bytes=1000,
        quota_disk_bytes=1000,
    )


@pytest.fixture
def tracker():
    return SlaTracker()


@pytest.fixture
def sla():
    return ServiceLevelAgreement("acme", cpu_share=0.2, availability_target=0.95)


def test_always_up_customer_fully_available(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    compliance = tracker.report("acme", now=100.0)
    assert compliance.availability == pytest.approx(1.0)
    assert compliance.availability_met


def test_downtime_lowers_availability(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    tracker.mark_down("acme", at=10.0)
    tracker.mark_up("acme", at=15.0)
    compliance = tracker.report("acme", now=100.0)
    assert compliance.downtime == pytest.approx(5.0)
    assert compliance.availability == pytest.approx(0.95)


def test_still_down_counts_until_now(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    tracker.mark_down("acme", at=50.0)
    compliance = tracker.report("acme", now=100.0)
    assert compliance.downtime == pytest.approx(50.0)
    assert not compliance.availability_met


def test_duplicate_transitions_ignored(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    tracker.mark_up("acme", at=1.0)  # already up
    tracker.mark_down("acme", at=10.0)
    tracker.mark_down("acme", at=20.0)  # already down
    tracker.mark_up("acme", at=30.0)
    compliance = tracker.report("acme", now=100.0)
    assert compliance.downtime == pytest.approx(20.0)


def test_unknown_customer_reports_raise(tracker):
    with pytest.raises(KeyError):
        tracker.report("ghost", now=1.0)
    assert tracker.observe_report(report(instance="ghost")) == []


def test_cpu_violation_recorded(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    violations = tracker.observe_report(report(cpu_share=0.5, at=5.0))
    assert len(violations) == 1
    assert violations[0].kind == "cpu"
    assert violations[0].observed == 0.5
    compliance = tracker.report("acme", now=10.0)
    assert compliance.cpu_violations == 1


def test_compliant_report_records_nothing(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    assert tracker.observe_report(report(cpu_share=0.1)) == []


def test_memory_and_disk_violations(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    violations = tracker.observe_report(
        report(cpu_share=0.0, memory=5000, disk=9999, at=1.0)
    )
    assert {v.kind for v in violations} == {"memory", "disk"}


def test_reports_for_all_customers(tracker):
    tracker.register(ServiceLevelAgreement("a"), at=0.0, up=True)
    tracker.register(ServiceLevelAgreement("b"), at=0.0, up=True)
    reports = tracker.reports(now=10.0)
    assert [r.customer for r in reports] == ["a", "b"]


def test_violations_listing(tracker, sla):
    tracker.register(sla, at=0.0, up=True)
    tracker.register(ServiceLevelAgreement("zeta", cpu_share=0.2), at=0.0, up=True)
    tracker.observe_report(report(instance="acme", cpu_share=0.9, at=1.0))
    tracker.observe_report(report(instance="zeta", cpu_share=0.9, at=2.0))
    assert len(tracker.violations()) == 2
    assert len(tracker.violations("acme")) == 1


def test_registration_starting_down(tracker, sla):
    tracker.register(sla, at=0.0, up=False)
    tracker.mark_up("acme", at=4.0)
    compliance = tracker.report("acme", now=10.0)
    assert compliance.downtime == pytest.approx(4.0)
