"""Shared store: global visibility, crash survival, serializability contract."""

import pytest

from repro.osgi.definition import simple_bundle
from repro.osgi.persistence import BundleRecord, FrameworkState
from repro.storage.san import SharedStore, StorageError


@pytest.fixture
def store():
    return SharedStore()


def sample_state():
    return FrameworkState(
        bundles=[BundleRecord("loc://a", "a", "1.0.0", True, 1)],
        start_level=5,
    )


class TestFrameworkStates:
    def test_save_load_roundtrip(self, store):
        store.save_state("env", sample_state())
        loaded = store.load_state("env")
        assert loaded.start_level == 5
        assert loaded.bundles[0].symbolic_name == "a"
        assert loaded.bundles[0].autostart is True

    def test_load_missing_returns_none(self, store):
        assert store.load_state("ghost") is None

    def test_loaded_state_is_a_copy(self, store):
        store.save_state("env", sample_state())
        first = store.load_state("env")
        first.bundles.clear()
        assert len(store.load_state("env").bundles) == 1

    def test_delete_state_removes_state_and_data(self, store):
        store.save_state("env", sample_state())
        store.data_area("env", "bundle")["k"] = 1
        store.delete_state("env")
        assert store.load_state("env") is None
        assert "k" not in store.data_area("env", "bundle")

    def test_instance_ids_enumerated(self, store):
        store.save_state("b", sample_state())
        store.save_state("a", sample_state())
        assert list(store.instance_ids()) == ["a", "b"]

    def test_has_state(self, store):
        assert not store.has_state("env")
        store.save_state("env", sample_state())
        assert store.has_state("env")


class TestDataAreas:
    def test_write_read_roundtrip(self, store):
        area = store.data_area("env", "bundle")
        area["key"] = {"list": [1, 2], "s": "x"}
        assert area["key"] == {"list": [1, 2], "s": "x"}

    def test_areas_keyed_by_instance_and_bundle(self, store):
        store.data_area("env1", "b")["k"] = 1
        assert "k" not in store.data_area("env2", "b")
        assert "k" not in store.data_area("env1", "other")

    def test_same_area_from_two_mounts_shares_data(self, store):
        """The SAN property: node 2 reads what node 1 wrote."""
        s1 = store.mount("n1").framework_storage()
        s2 = store.mount("n2").framework_storage()
        s1.bundle_data("env", "b")["shared"] = 42
        assert s2.bundle_data("env", "b")["shared"] == 42

    def test_unserializable_value_rejected(self, store):
        area = store.data_area("env", "b")
        with pytest.raises(StorageError):
            area["bad"] = object()

    def test_values_deep_copied_on_write(self, store):
        area = store.data_area("env", "b")
        value = {"inner": [1]}
        area["k"] = value
        value["inner"].append(2)
        assert area["k"] == {"inner": [1]}

    def test_mapping_protocol(self, store):
        area = store.data_area("env", "b")
        area["a"] = 1
        area["b"] = 2
        assert len(area) == 2
        assert sorted(area) == ["a", "b"]
        del area["a"]
        assert "a" not in area
        assert area.get("a", "default") == "default"


class TestMounts:
    def test_unmounted_mount_refuses_operations(self, store):
        mount = store.mount("n1")
        storage = mount.framework_storage()
        mount.unmount()
        with pytest.raises(StorageError):
            storage.load_state("env")

    def test_data_survives_unmount(self, store):
        """Node crash loses the mount, never the data."""
        mount = store.mount("n1")
        mount.framework_storage().save_state("env", sample_state())
        mount.unmount()
        fresh = store.mount("n2").framework_storage()
        assert fresh.load_state("env") is not None


class TestRepository:
    def test_definition_roundtrip(self, store):
        definition = simple_bundle("a")
        store.put_definition("loc://a", definition)
        assert store.get_definition("loc://a") is definition
        assert store.get_definition("loc://missing") is None

    def test_repository_view_snapshot(self, store):
        store.put_definition("loc://a", simple_bundle("a"))
        view = store.repository_view()
        assert "loc://a" in view
        view.clear()
        assert store.get_definition("loc://a") is not None


def test_stats_track_operations(store):
    store.save_state("env", sample_state())
    store.load_state("env")
    area = store.data_area("env", "b")
    area["k"] = 1
    _ = area["k"]
    stats = store.stats.as_dict()
    assert stats["state_writes"] == 1
    assert stats["state_reads"] == 1
    assert stats["data_writes"] == 1
    assert stats["data_reads"] == 1
    assert stats["bytes_written"] > 0
