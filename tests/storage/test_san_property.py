"""Property-based SAN round trips."""

from hypothesis import given, strategies as st

from repro.osgi.persistence import BundleRecord, FrameworkState
from repro.storage.san import SharedStore

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**31), 2**31),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

bundle_records = st.builds(
    BundleRecord,
    location=st.text(min_size=1, max_size=30),
    symbolic_name=st.text(min_size=1, max_size=20),
    version=st.sampled_from(["1.0.0", "2.3.4", "0.0.1.beta"]),
    autostart=st.booleans(),
    start_level=st.integers(1, 10),
)


@given(st.lists(bundle_records, max_size=6), st.integers(0, 20))
def test_framework_state_roundtrip(records, level):
    store = SharedStore()
    state = FrameworkState(bundles=records, start_level=level)
    store.save_state("env", state)
    loaded = store.load_state("env")
    assert loaded.start_level == level
    assert [b.to_dict() for b in loaded.bundles] == [
        b.to_dict() for b in records
    ]


@given(st.dictionaries(st.text(min_size=1, max_size=10), json_values, max_size=6))
def test_data_area_roundtrip(data):
    store = SharedStore()
    area = store.data_area("env", "bundle")
    for key, value in data.items():
        area[key] = value
    fresh_view = store.data_area("env", "bundle")
    for key, value in data.items():
        assert fresh_view[key] == value
    assert set(fresh_view) == set(data)


@given(json_values)
def test_written_values_isolated_from_caller_mutation(value):
    store = SharedStore()
    area = store.data_area("env", "bundle")
    area["k"] = value
    snapshot = area["k"]
    if isinstance(snapshot, list):
        snapshot.append("mutated")
        assert area["k"] != snapshot
    elif isinstance(snapshot, dict):
        snapshot["mutated"] = True
        assert area["k"] != snapshot
