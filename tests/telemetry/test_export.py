"""Exporters: Chrome trace_event mapping, byte-identity, trace-shape queries."""

import json

from repro.telemetry.export import (
    chrome_trace_document,
    connected_trace_ids,
    dump_chrome_json,
    dump_spans_json,
    spans_document,
    trace_roots,
)


def span(name, trace_id="t1", span_id="s1", parent_id=None, node="", start=0.0, end=None, **attrs):
    return {
        "name": name,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "node": node,
        "start": start,
        "end": end if end is not None else start,
        "attributes": attrs,
    }


SAMPLE = [
    span("scenario:test", span_id="root", start=0.0, end=2.0),
    span("ipvs.request", span_id="req", parent_id="root", node="n1", start=0.5, end=0.7, vip="10.0.0.80:80"),
    span("http.dispatch", span_id="disp", parent_id="req", node="n2", start=0.6, end=0.6),
]


def test_spans_document_format_marker():
    doc = spans_document(SAMPLE, {"seed": 42})
    assert doc["format"] == "repro.telemetry/spans.v1"
    assert doc["meta"] == {"seed": 42}
    assert doc["spans"] == SAMPLE


def test_chrome_document_metadata_and_thread_mapping():
    doc = chrome_trace_document(SAMPLE)
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert meta[0]["name"] == "process_name"
    thread_names = {
        e["tid"]: e["args"]["name"] for e in meta if e["name"] == "thread_name"
    }
    # Sorted node order: "" -> "platform" first, then n1, n2.
    assert thread_names == {0: "platform", 1: "n1", 2: "n2"}


def test_chrome_events_carry_causal_ids_and_microseconds():
    doc = chrome_trace_document(SAMPLE)
    events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    request = events["ipvs.request"]
    assert request["ts"] == 500_000
    assert request["dur"] == 200_000
    assert request["cat"] == "ipvs"
    assert request["args"]["parent_id"] == "root"
    assert request["args"]["trace_id"] == "t1"
    assert request["args"]["vip"] == "10.0.0.80:80"


def test_chrome_zero_length_span_clamped_to_one_microsecond():
    doc = chrome_trace_document(SAMPLE)
    dispatch = [e for e in doc["traceEvents"] if e["name"] == "http.dispatch"][0]
    assert dispatch["dur"] == 1


def test_dumps_are_stable_and_newline_terminated():
    for dump in (dump_spans_json, dump_chrome_json):
        first = dump(SAMPLE, {"seed": 1})
        assert first == dump(SAMPLE, {"seed": 1})
        assert first.endswith("\n")
        json.loads(first)


def test_trace_roots_and_connectivity():
    assert [s["span_id"] for s in trace_roots(SAMPLE)] == ["root"]
    assert connected_trace_ids(SAMPLE) == ["t1"]


def test_orphaned_parent_breaks_connectivity():
    broken = SAMPLE + [
        span("lost", trace_id="t1", span_id="x", parent_id="missing", start=1.0)
    ]
    assert connected_trace_ids(broken) == []


def test_separate_traces_report_independently():
    spans = SAMPLE + [span("other", trace_id="t2", span_id="o1", start=3.0)]
    assert connected_trace_ids(spans) == ["t1", "t2"]
