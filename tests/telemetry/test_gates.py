"""Gate windows: delta-based health verdicts over metric instruments."""

import pytest

from repro.telemetry.gates import (
    GateSpec,
    GateWindow,
    default_rollout_gates,
)
from repro.telemetry.metrics import MetricsRegistry

BUCKETS = (0.05, 0.1, 0.25, 0.5)


def counter_gate(threshold=0.0):
    return GateSpec(
        name="drops",
        kind="counter-max-increase",
        metric="test.dropped",
        threshold=threshold,
    )


def latency_gate(threshold=0.25, quantile=0.95):
    return GateSpec(
        name="latency",
        kind="histogram-quantile-max",
        metric="test.latency",
        threshold=threshold,
        quantile=quantile,
    )


class TestGateSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GateSpec(name="x", kind="rate-limit", metric="m", threshold=1.0)

    @pytest.mark.parametrize("quantile", [0.0, -0.5, 1.5])
    def test_quantile_bounds(self, quantile):
        with pytest.raises(ValueError):
            GateSpec(
                name="x",
                kind="histogram-quantile-max",
                metric="m",
                threshold=1.0,
                quantile=quantile,
            )


class TestCounterGate:
    def test_only_window_increase_counts(self):
        registry = MetricsRegistry()
        registry.counter("test.dropped", node="n1").inc(7)
        window = GateWindow(registry, [counter_gate(threshold=0.0)])
        (result,) = window.evaluate()
        assert result.ok and result.observed == 0

        registry.counter("test.dropped", node="n1").inc(2)
        (result,) = window.evaluate()
        assert not result.ok and result.observed == 2
        assert [r.name for r in window.trips()] == ["drops"]

    def test_sums_across_label_sets(self):
        registry = MetricsRegistry()
        window = GateWindow(registry, [counter_gate(threshold=3.0)])
        registry.counter("test.dropped", node="n1").inc(2)
        registry.counter("test.dropped", node="n2").inc(1)
        (result,) = window.evaluate()
        assert result.observed == 3 and result.ok


class TestHistogramGate:
    def test_quantile_over_window_deltas_only(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.latency", buckets=BUCKETS)
        for _ in range(100):
            histogram.observe(0.4)  # terrible latency *before* the window
        window = GateWindow(registry, [latency_gate(threshold=0.25)])
        for _ in range(20):
            histogram.observe(0.08)  # healthy inside the window
        (result,) = window.evaluate()
        assert result.ok
        assert result.observed == 0.1  # bucket upper bound of 0.08
        assert result.samples == 20

    def test_regression_inside_window_trips(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("test.latency", buckets=BUCKETS)
        window = GateWindow(registry, [latency_gate(threshold=0.25)])
        for _ in range(20):
            histogram.observe(0.4)
        (result,) = window.evaluate()
        assert not result.ok and result.observed == 0.5

    def test_empty_window_passes(self):
        registry = MetricsRegistry()
        registry.histogram("test.latency", buckets=BUCKETS).observe(9.0)
        window = GateWindow(registry, [latency_gate(threshold=0.01)])
        (result,) = window.evaluate()
        assert result.ok and result.samples == 0

    def test_missing_instrument_passes(self):
        window = GateWindow(MetricsRegistry(), [latency_gate()])
        (result,) = window.evaluate()
        assert result.ok and result.observed == 0.0

    def test_instrument_created_after_open_is_judged_whole(self):
        registry = MetricsRegistry()
        window = GateWindow(registry, [latency_gate(threshold=0.25)])
        histogram = registry.histogram("test.latency", buckets=BUCKETS)
        for _ in range(10):
            histogram.observe(0.4)
        (result,) = window.evaluate()
        assert not result.ok and result.samples == 10


def test_default_rollout_gates_catalogue():
    drops, latency = default_rollout_gates()
    assert drops.name == "no-new-drops"
    assert drops.metric == "ipvs.dropped_total"
    assert drops.threshold == 0.0
    assert latency.name == "latency-p95"
    assert latency.metric == "ipvs.request_latency_seconds"
    assert latency.quantile == 0.95


def test_gate_result_round_trips_to_dict():
    registry = MetricsRegistry()
    registry.counter("test.dropped").inc(1)
    window = GateWindow(registry, [counter_gate(threshold=2.0)])
    registry.counter("test.dropped").inc(1)
    (result,) = window.evaluate()
    out = result.to_dict()
    assert out["name"] == "drops" and out["ok"] is True
    assert out["observed"] == 1
