"""Metrics instruments: bucketing semantics, quantiles, registry snapshots."""

import json

import pytest

from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


# ----------------------------------------------------------------------
# Histogram bucketing (Prometheus ``le``: value <= bound)
# ----------------------------------------------------------------------
def test_value_on_bucket_boundary_lands_in_that_bucket():
    h = Histogram("h", (), buckets=(0.01, 0.1, 1.0))
    h.observe(0.1)
    assert h.counts == [0, 1, 0, 0]


def test_value_below_first_bound_lands_in_first_bucket():
    h = Histogram("h", (), buckets=(0.01, 0.1, 1.0))
    h.observe(0.0001)
    assert h.counts == [1, 0, 0, 0]


def test_value_above_last_bound_lands_in_overflow():
    h = Histogram("h", (), buckets=(0.01, 0.1, 1.0))
    h.observe(50.0)
    assert h.counts == [0, 0, 0, 1]


def test_sum_and_count_accumulate():
    h = Histogram("h", (), buckets=(1.0,))
    for v in (0.25, 0.5, 3.0):
        h.observe(v)
    assert h.count == 3
    assert h.sum == pytest.approx(3.75)
    assert h.counts == [2, 1]


def test_buckets_must_be_ascending_and_non_empty():
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=())
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=(1.0, 0.5))


def test_default_buckets_are_latency_shaped():
    assert DEFAULT_BUCKETS[0] == 0.001
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# ----------------------------------------------------------------------
# Quantiles (bucket-upper-bound estimates)
# ----------------------------------------------------------------------
def test_quantile_empty_histogram_is_zero():
    assert Histogram("h", ()).quantile(0.5) == 0.0


def test_quantile_returns_containing_bucket_bound():
    h = Histogram("h", (), buckets=(0.01, 0.1, 1.0))
    for _ in range(9):
        h.observe(0.005)
    h.observe(0.5)
    assert h.quantile(0.50) == 0.01
    assert h.quantile(0.95) == 1.0


def test_quantile_overflow_reports_last_finite_bound():
    h = Histogram("h", (), buckets=(0.01, 0.1))
    h.observe(99.0)
    assert h.quantile(0.5) == 0.1


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_counter_get_or_create_and_monotonicity():
    registry = MetricsRegistry()
    c = registry.counter("requests_total", vip="10.0.0.80:80")
    c.inc()
    c.inc(2.0)
    assert registry.counter("requests_total", vip="10.0.0.80:80") is c
    assert c.value == 3.0
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_label_order_does_not_split_instruments():
    registry = MetricsRegistry()
    a = registry.counter("c", x=1, y=2)
    b = registry.counter("c", y=2, x=1)
    assert a is b


def test_set_gauge_vs_pull_gauge():
    registry = MetricsRegistry()
    g = registry.gauge("level")
    g.set(7)
    assert g.value == 7.0
    box = [3]
    pull = registry.gauge("pulled", fn=lambda: box[0])
    assert pull.value == 3.0
    box[0] = 9
    assert pull.value == 9.0
    with pytest.raises(RuntimeError):
        pull.set(1)


def test_remove_drops_instrument():
    registry = MetricsRegistry()
    registry.gauge("monitoring.cpu_seconds", instance="acme").set(1.0)
    registry.remove("monitoring.cpu_seconds", instance="acme")
    assert registry.snapshot()["gauges"] == {}


def test_snapshot_is_sorted_and_renders_labels():
    registry = MetricsRegistry()
    registry.counter("b_total").inc()
    registry.counter("a_total", zone="z", app="x").inc(2)
    registry.histogram("lat", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a_total{app=x,zone=z}", "b_total"]
    assert snap["counters"]["a_total{app=x,zone=z}"] == 2.0
    hist = snap["histograms"]["lat"]
    assert hist["buckets"] == [1.0]
    assert hist["counts"] == [1, 0]
    assert hist["count"] == 1
    assert hist["p50"] == 1.0


def test_snapshot_serialises_identically_across_equal_runs():
    def build():
        registry = MetricsRegistry()
        for i in range(5):
            registry.counter("c", i=i % 2).inc(i)
            registry.histogram("h").observe(0.001 * (i + 1))
        registry.gauge("g", fn=lambda: 42.0)
        return json.dumps(registry.snapshot(), sort_keys=True)

    assert build() == build()
