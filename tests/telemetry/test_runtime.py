"""Runtime guard: the zero-overhead switch and scoped activation."""

import pytest

from repro.sim.clock import Clock
from repro.sim.rng import RngStreams
from repro.telemetry import runtime
from repro.telemetry.runtime import Telemetry, enabled, maybe_span


def make_telemetry(seed=0, scenario="test"):
    return Telemetry(Clock(), RngStreams(seed), scenario=scenario)


def test_active_defaults_to_none():
    assert runtime.ACTIVE is None


def test_maybe_span_is_a_no_op_when_inactive():
    with maybe_span("anything", node="n1", attributes={"k": 1}) as span:
        assert span is None


def test_maybe_span_records_when_active():
    telemetry = make_telemetry()
    with enabled(telemetry):
        with maybe_span("op", node="n1", attributes={"k": 1}) as span:
            assert span is not None
    assert [s.name for s in telemetry.tracer.spans] == ["op"]
    assert telemetry.tracer.spans[0].attributes == {"k": 1}


def test_enabled_restores_previous_handle():
    outer, inner = make_telemetry(1), make_telemetry(2)
    with enabled(outer):
        with enabled(inner):
            assert runtime.ACTIVE is inner
        assert runtime.ACTIVE is outer
    assert runtime.ACTIVE is None


def test_enabled_restores_on_exception():
    telemetry = make_telemetry()
    with pytest.raises(RuntimeError):
        with enabled(telemetry):
            raise RuntimeError("boom")
    assert runtime.ACTIVE is None


def test_activate_deactivate_explicitly():
    telemetry = make_telemetry()
    assert runtime.activate(telemetry) is telemetry
    assert runtime.ACTIVE is telemetry
    runtime.deactivate()
    assert runtime.ACTIVE is None


def test_open_root_twice_raises():
    telemetry = make_telemetry()
    telemetry.open_root("a")
    with pytest.raises(RuntimeError):
        telemetry.open_root("b")


def test_close_root_finishes_and_is_idempotent():
    telemetry = make_telemetry()
    root = telemetry.open_root("a")
    telemetry.close_root()
    telemetry.close_root()
    assert root.end is not None
    assert telemetry.tracer.current_context() is None


def test_root_scope_parents_later_spans():
    telemetry = make_telemetry()
    root = telemetry.open_root("scenario")
    span = telemetry.tracer.start_span("timer-driven")
    telemetry.close_root()
    assert span.parent_id == root.context.span_id
    assert span.context.trace_id == root.context.trace_id


def test_telemetry_ids_use_dedicated_rng_stream():
    """Minting span ids must not perturb any other stream's draws."""
    plain = RngStreams(123)
    baseline = [plain.stream("network").random() for _ in range(5)]
    shared = RngStreams(123)
    telemetry = Telemetry(Clock(), shared)
    telemetry.tracer.start_span("op")
    assert [shared.stream("network").random() for _ in range(5)] == baseline
