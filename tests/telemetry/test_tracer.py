"""Tracer: causal parenting, context propagation, deterministic ids."""

import random

from repro.sim.clock import Clock
from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams
from repro.telemetry.runtime import Telemetry, enabled
from repro.telemetry.tracer import Tracer


def make_tracer(seed=0):
    return Tracer(Clock(), random.Random(seed))


# ----------------------------------------------------------------------
# In-process parenting
# ----------------------------------------------------------------------
def test_first_span_is_a_root():
    tracer = make_tracer()
    span = tracer.start_span("op")
    assert span.parent_id is None
    assert span.context.trace_id != span.context.span_id


def test_nested_spans_share_trace_and_chain_parents():
    tracer = make_tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.context.span_id
            assert inner.context.trace_id == outer.context.trace_id


def test_explicit_none_parent_forces_new_trace():
    tracer = make_tracer()
    with tracer.span("outer") as outer:
        orphan = tracer.start_span("fresh", parent=None)
    assert orphan.parent_id is None
    assert orphan.context.trace_id != outer.context.trace_id


def test_activate_none_is_a_no_op():
    tracer = make_tracer()
    with tracer.activate(None):
        assert tracer.current_context() is None


def test_activate_sets_ambient_parent():
    tracer = make_tracer()
    remote = tracer.start_span("remote")
    with tracer.activate(remote.context):
        child = tracer.start_span("local")
    assert child.parent_id == remote.context.span_id
    assert tracer.current_context() is None


def test_finish_is_idempotent():
    tracer = make_tracer()
    span = tracer.start_span("op")
    span.finish(1.0)
    span.finish(99.0)
    assert span.end == 1.0


def test_export_preserves_start_order_and_unfinished_spans():
    tracer = make_tracer()
    tracer.start_span("first")
    with tracer.span("second"):
        pass
    exported = tracer.export()
    assert [s["name"] for s in exported] == ["first", "second"]
    assert exported[0]["end"] == exported[0]["start"]


def test_same_seed_tracers_mint_identical_ids():
    a, b = make_tracer(7), make_tracer(7)
    for t in (a, b):
        with t.span("x"):
            t.start_span("y")
    assert a.export() == b.export()


# ----------------------------------------------------------------------
# Cross-node propagation through the simulated network
# ----------------------------------------------------------------------
def build_sim(seed=1234):
    loop = EventLoop(Clock())
    rng = RngStreams(seed)
    network = Network(loop, rng, latency=0.001, jitter=0.0)
    return loop, rng, network


def test_network_carries_context_to_the_receiving_handler():
    loop, rng, network = build_sim()
    telemetry = Telemetry(loop.clock, rng)
    received = []

    def handler(message):
        received.append(telemetry.tracer.start_span("handle", node="b"))

    network.attach("a", lambda m: None)
    network.attach("b", handler)
    with enabled(telemetry):
        with telemetry.tracer.span("request", node="a") as request:
            network.send("a", "b", {"op": "ping"})
        loop.run_for(1.0)
    (handled,) = received
    assert handled.context.trace_id == request.context.trace_id
    assert handled.parent_id == request.context.span_id


def test_untraced_send_leaves_receiver_parentless():
    loop, rng, network = build_sim()
    telemetry = Telemetry(loop.clock, rng)
    received = []
    network.attach("a", lambda m: None)
    network.attach("b", lambda m: received.append(telemetry.tracer.start_span("handle")))
    with enabled(telemetry):
        network.send("a", "b", {"op": "ping"})
        loop.run_for(1.0)
    assert received[0].parent_id is None


# ----------------------------------------------------------------------
# GCS view changes join the ambient trace
# ----------------------------------------------------------------------
def test_view_change_spans_join_the_ambient_root_trace():
    from repro.gcs.directory import GroupDirectory
    from repro.gcs.member import GroupMember

    loop, rng, network = build_sim()
    directory = GroupDirectory()
    telemetry = Telemetry(loop.clock, rng)
    with enabled(telemetry):
        root = telemetry.open_root("scenario:test")
        try:
            m1 = GroupMember("n1", "g", loop, network, directory)
            m2 = GroupMember("n2", "g", loop, network, directory)
            m1.join()
            loop.run_for(0.5)
            m2.join()
            loop.run_for(2.0)
        finally:
            telemetry.close_root()
    views = [s for s in telemetry.tracer.spans if s.name == "gcs.view_change"]
    assert views, "no view-change spans recorded"
    assert {s.context.trace_id for s in views} == {root.context.trace_id}
    two_member = [s for s in views if s.attributes["members"] == 2]
    assert two_member and two_member[0].attributes["joined"] >= 1
