"""Export policy, delegation loader and service mirroring."""

import pytest

from repro.osgi.framework import Framework
from repro.osgi.loader import ClassNotFoundError
from repro.vosgi.delegation import (
    DelegationLoader,
    ExportPolicy,
    IMPORTED_MARK,
    ServiceMirror,
)

from tests.conftest import library_bundle


@pytest.fixture
def host():
    fw = Framework("host")
    fw.start()
    fw.install(library_bundle("log", "1.0.0", "LogThing"))
    yield fw
    if fw.active:
        fw.stop()


@pytest.fixture
def child():
    fw = Framework("child")
    fw.start()
    yield fw
    if fw.active:
        fw.stop()


class TestExportPolicy:
    def test_empty_policy_allows_nothing(self):
        policy = ExportPolicy()
        assert not policy.allows_package("log")
        assert not policy.allows_service(("log.LogService",))

    def test_fluent_building(self):
        policy = ExportPolicy().export_package("log").export_service("log.S")
        assert policy.allows_package("log")
        assert policy.allows_service(("log.S", "other"))

    def test_withdraw(self):
        policy = ExportPolicy(packages={"log"}, service_classes={"s"})
        policy.withdraw_package("log")
        policy.withdraw_service("s")
        assert not policy.allows_package("log")
        assert not policy.allows_service(("s",))

    def test_allows_service_checks_any_class(self):
        policy = ExportPolicy(service_classes={"b"})
        assert policy.allows_service(("a", "b"))
        assert not policy.allows_service(("a", "c"))


class TestDelegationLoader:
    def test_exported_package_delegates(self, host):
        loader = DelegationLoader(host, ExportPolicy(packages={"log"}))
        assert loader("log", "Thing") == "LogThing"
        assert loader.delegated == 1

    def test_unexported_package_denied(self, host):
        loader = DelegationLoader(host, ExportPolicy())
        with pytest.raises(ClassNotFoundError):
            loader("log", "Thing")
        assert loader.denied == 1

    def test_exported_but_absent_package_denied(self, host):
        loader = DelegationLoader(host, ExportPolicy(packages={"ghost"}))
        with pytest.raises(ClassNotFoundError):
            loader("ghost", "Thing")

    def test_highest_host_version_wins(self, host):
        host.install(library_bundle("log", "2.0.0", "NewLogThing"))
        loader = DelegationLoader(host, ExportPolicy(packages={"log"}))
        assert loader("log", "Thing") == "NewLogThing"


class TestServiceMirror:
    def test_existing_service_mirrored_on_open(self, host, child):
        host.system_context.register_service("log.LogService", "the-log")
        mirror = ServiceMirror(
            host, child, ExportPolicy(service_classes={"log.LogService"})
        )
        mirror.open()
        ref = child.registry.get_reference("log.LogService")
        assert ref is not None
        assert ref.get_property(IMPORTED_MARK) is True
        assert child.registry.get_service(child.system_bundle, ref) == "the-log"

    def test_same_object_shared_with_host(self, host, child):
        """Figure 4: only one instance of the base service exists."""
        shared = {"state": []}
        host.system_context.register_service("log.LogService", shared)
        mirror = ServiceMirror(
            host, child, ExportPolicy(service_classes={"log.LogService"})
        )
        mirror.open()
        ref = child.registry.get_reference("log.LogService")
        child_view = child.registry.get_service(child.system_bundle, ref)
        assert child_view is shared

    def test_unexported_service_not_mirrored(self, host, child):
        host.system_context.register_service("secret.Service", object())
        mirror = ServiceMirror(host, child, ExportPolicy())
        mirror.open()
        assert child.registry.get_reference("secret.Service") is None

    def test_late_registration_mirrored(self, host, child):
        mirror = ServiceMirror(host, child, ExportPolicy(service_classes={"x"}))
        mirror.open()
        host.system_context.register_service("x", "late")
        assert child.registry.get_reference("x") is not None

    def test_host_unregistration_propagates(self, host, child):
        mirror = ServiceMirror(host, child, ExportPolicy(service_classes={"x"}))
        mirror.open()
        registration = host.system_context.register_service("x", "svc")
        registration.unregister()
        assert child.registry.get_reference("x") is None

    def test_host_modification_propagates(self, host, child):
        mirror = ServiceMirror(host, child, ExportPolicy(service_classes={"x"}))
        mirror.open()
        registration = host.system_context.register_service("x", "svc", {"v": 1})
        registration.set_properties({"v": 2})
        ref = child.registry.get_reference("x")
        assert ref.get_property("v") == 2

    def test_close_withdraws_mirrors(self, host, child):
        mirror = ServiceMirror(host, child, ExportPolicy(service_classes={"x"}))
        mirror.open()
        host.system_context.register_service("x", "svc")
        mirror.close()
        assert child.registry.get_reference("x") is None

    def test_refresh_applies_policy_changes(self, host, child):
        policy = ExportPolicy(service_classes={"x"})
        mirror = ServiceMirror(host, child, policy)
        mirror.open()
        host.system_context.register_service("x", "svc")
        host.system_context.register_service("y", "other")
        assert mirror.mirrored_count == 1
        policy.export_service("y")
        policy.withdraw_service("x")
        mirror.refresh()
        assert child.registry.get_reference("y") is not None
        assert child.registry.get_reference("x") is None

    def test_mirrors_never_remirrored(self, host, child):
        """A mirrored registration must not bounce back through another
        mirror (stacked virtual instances)."""
        grandchild = Framework("grandchild")
        grandchild.start()
        policy = ExportPolicy(service_classes={"x"})
        m1 = ServiceMirror(host, child, policy)
        m1.open()
        m2 = ServiceMirror(child, grandchild, policy)
        m2.open()
        host.system_context.register_service("x", "svc")
        # grandchild sees it once, via child's mirror.
        refs = grandchild.registry.get_references("x")
        assert len(refs) == 0  # child's copy is marked imported: not re-exported
        grandchild.stop()


def test_close_releases_host_use_counts(host, child):
    mirror = ServiceMirror(host, child, ExportPolicy(service_classes={"x"}))
    mirror.open()
    registration = host.system_context.register_service("x", "svc")
    ref = registration.reference
    assert host.system_bundle in ref.using_bundles
    mirror.close()
    assert host.system_bundle not in ref.using_bundles
