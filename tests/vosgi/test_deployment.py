"""Deployment cost models: the shape of the Figure 1-3 comparison."""

import pytest

from repro.vosgi.deployment import (
    DeploymentModel,
    JVM_BASELINE_BYTES,
    compare_models,
    estimate_costs,
)


def test_zero_instances_costs_baseline_only():
    separate = estimate_costs(DeploymentModel.SEPARATE_JVMS, 0)
    assert separate.memory_bytes == 0
    shared = estimate_costs(DeploymentModel.SHARED_JVM, 0)
    assert shared.memory_bytes == JVM_BASELINE_BYTES


def test_separate_jvms_memory_scales_with_full_jvm():
    one = estimate_costs(DeploymentModel.SEPARATE_JVMS, 1)
    ten = estimate_costs(DeploymentModel.SEPARATE_JVMS, 10)
    assert ten.memory_bytes == 10 * one.memory_bytes


def test_shared_jvm_amortizes_jvm_baseline():
    ten_separate = estimate_costs(DeploymentModel.SEPARATE_JVMS, 10)
    ten_shared = estimate_costs(DeploymentModel.SHARED_JVM, 10)
    assert ten_shared.memory_bytes < ten_separate.memory_bytes
    saved = ten_separate.memory_bytes - ten_shared.memory_bytes
    assert saved >= 9 * JVM_BASELINE_BYTES


def test_vosgi_with_sharing_beats_shared_jvm():
    shared_jvm = estimate_costs(
        DeploymentModel.SHARED_JVM, 10, bundles_per_instance=5
    )
    vosgi = estimate_costs(
        DeploymentModel.STACKED_VOSGI, 10, bundles_per_instance=5, shared_bundles=3
    )
    assert vosgi.memory_bytes < shared_jvm.memory_bytes


def test_more_shared_bundles_means_less_memory():
    costs = [
        estimate_costs(
            DeploymentModel.STACKED_VOSGI,
            10,
            bundles_per_instance=5,
            shared_bundles=k,
        ).memory_bytes
        for k in range(6)
    ]
    assert costs == sorted(costs, reverse=True)


def test_cannot_share_more_than_present():
    with pytest.raises(ValueError):
        estimate_costs(
            DeploymentModel.STACKED_VOSGI, 5, bundles_per_instance=2, shared_bundles=3
        )


def test_negative_instances_rejected():
    with pytest.raises(ValueError):
        estimate_costs(DeploymentModel.SHARED_JVM, -1)


def test_management_latency_ordering():
    """Fig. 1's RMI/JMX indirection costs orders of magnitude more."""
    separate = estimate_costs(DeploymentModel.SEPARATE_JVMS, 5)
    shared = estimate_costs(DeploymentModel.SHARED_JVM, 5)
    assert separate.management_op_seconds > 100 * shared.management_op_seconds


def test_startup_ordering():
    separate = estimate_costs(DeploymentModel.SEPARATE_JVMS, 8)
    shared = estimate_costs(DeploymentModel.SHARED_JVM, 8)
    vosgi = estimate_costs(DeploymentModel.STACKED_VOSGI, 8)
    assert vosgi.startup_seconds < shared.startup_seconds < separate.startup_seconds


def test_compare_models_returns_all_three():
    table = compare_models(10)
    assert set(table) == {"separate-jvms", "shared-jvm", "stacked-vosgi"}
    assert table["stacked-vosgi"].memory_bytes < table["separate-jvms"].memory_bytes


def test_as_dict_shape():
    d = estimate_costs(DeploymentModel.SHARED_JVM, 3).as_dict()
    assert d["model"] == "shared-jvm"
    assert d["instances"] == 3
    assert set(d) >= {"memory_bytes", "startup_seconds", "management_op_seconds"}
