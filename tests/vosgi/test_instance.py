"""Virtual instances: sandboxing, usage aggregation, persistence identity."""

import pytest

from repro.osgi.bundle import BundleState
from repro.osgi.definition import simple_bundle
from repro.osgi.framework import Framework
from repro.osgi.loader import ClassNotFoundError
from repro.storage.san import SharedStore
from repro.vosgi.delegation import ExportPolicy
from repro.vosgi.instance import VirtualInstance

from tests.conftest import RecordingActivator, library_bundle


@pytest.fixture
def host():
    fw = Framework("host")
    fw.start()
    fw.install(library_bundle("log", "1.0.0", "LogThing"))
    fw.system_context.register_service("log.LogService", ["shared-log"])
    yield fw
    if fw.active:
        fw.stop()


def test_instance_starts_and_stops(host):
    instance = VirtualInstance("acme", host)
    instance.start()
    assert instance.running
    instance.stop()
    assert not instance.running


def test_start_stop_idempotent(host):
    instance = VirtualInstance("acme", host)
    instance.start()
    instance.start()
    instance.stop()
    instance.stop()


def test_instance_framework_has_identity_properties(host):
    instance = VirtualInstance("acme", host)
    instance.start()
    assert instance.framework.properties["vosgi.instance"] == "acme"
    assert instance.framework.properties["vosgi.host"] == "host"
    assert instance.framework.instance_id == "vosgi:acme"


def test_bundle_sees_exported_host_package(host):
    instance = VirtualInstance(
        "acme", host, policy=ExportPolicy(packages={"log"})
    )
    instance.start()
    bundle = instance.install(simple_bundle("app"))
    bundle.start()
    assert bundle.load_class("log.Thing") == "LogThing"
    assert instance.loader.delegated == 1


def test_bundle_denied_unexported_host_package(host):
    instance = VirtualInstance("acme", host, policy=ExportPolicy())
    instance.start()
    bundle = instance.install(simple_bundle("app"))
    bundle.start()
    with pytest.raises(ClassNotFoundError):
        bundle.load_class("log.Thing")


def test_local_packages_resolve_before_delegation(host):
    instance = VirtualInstance(
        "acme", host, policy=ExportPolicy(packages={"log"})
    )
    instance.start()
    instance.install(library_bundle("log", "9.0.0", "local-log"))
    app = instance.install(simple_bundle("app", imports=("log",)))
    app.start()
    assert app.load_class("log.Thing") == "local-log"
    assert instance.loader.delegated == 0


def test_mirrored_service_visible_inside_instance(host):
    instance = VirtualInstance(
        "acme", host, policy=ExportPolicy(service_classes={"log.LogService"})
    )
    instance.start()
    activator = RecordingActivator()
    bundle = instance.install(simple_bundle("app", activator_factory=lambda: activator))
    bundle.start()
    ref = activator.context.get_service_reference("log.LogService")
    service = activator.context.get_service(ref)
    service.append("from-acme")
    host_ref = host.system_context.get_service_reference("log.LogService")
    assert host.system_context.get_service(host_ref) == ["shared-log", "from-acme"]


def test_two_instances_are_namespace_isolated(host):
    a = VirtualInstance("a", host)
    b = VirtualInstance("b", host)
    a.start()
    b.start()
    a.install(library_bundle("pkg", "1.0.0", "A-thing"))
    b.install(library_bundle("pkg", "1.0.0", "B-thing"))
    app_a = a.install(simple_bundle("app", imports=("pkg",)))
    app_b = b.install(simple_bundle("app", imports=("pkg",)))
    app_a.start()
    app_b.start()
    assert app_a.load_class("pkg.Thing") == "A-thing"
    assert app_b.load_class("pkg.Thing") == "B-thing"


def test_service_isolation_between_instances(host):
    a = VirtualInstance("a", host)
    b = VirtualInstance("b", host)
    a.start()
    b.start()
    act = RecordingActivator()
    a.install(simple_bundle("svc", activator_factory=lambda: act)).start()
    act.context.register_service("private.Service", "a-only")
    assert b.framework.registry.get_reference("private.Service") is None
    assert host.registry.get_reference("private.Service") is None


def test_usage_aggregates_bundle_ledgers(host):
    instance = VirtualInstance("acme", host)
    instance.start()
    act1, act2 = RecordingActivator(), RecordingActivator()
    instance.install(simple_bundle("b1", activator_factory=lambda: act1)).start()
    instance.install(simple_bundle("b2", activator_factory=lambda: act2)).start()
    act1.context.account(cpu=1.0, memory_delta=100)
    act2.context.account(cpu=0.5, memory_delta=50, disk_delta=10)
    usage = instance.usage()
    assert usage["cpu_seconds"] == 1.5
    assert usage["memory_bytes"] == 150
    assert usage["disk_bytes"] == 10


def test_describe_reports_inventory(host):
    instance = VirtualInstance("acme", host)
    instance.start()
    instance.install(simple_bundle("app")).start()
    info = instance.describe()
    assert info["name"] == "acme"
    assert info["running"] is True
    assert info["bundles"][0]["symbolic_name"] == "app"
    assert info["bundles"][0]["state"] == "ACTIVE"


def test_same_identity_restores_across_hosts():
    """The migration property: same instance id + same SAN = same env."""
    store = SharedStore()
    host1 = Framework("host1")
    host1.start()
    instance = VirtualInstance(
        "acme",
        host1,
        storage=store.mount("n1").framework_storage(),
        repository=store,
    )
    instance.start()
    instance.install(simple_bundle("app")).start()
    instance.stop()
    host1.stop()

    host2 = Framework("host2")
    host2.start()
    reborn = VirtualInstance(
        "acme",
        host2,
        storage=store.mount("n2").framework_storage(),
        repository=store,
    )
    reborn.start()
    bundle = reborn.get_bundle_by_name("app")
    assert bundle is not None
    assert bundle.state == BundleState.ACTIVE
    host2.stop()


def test_restored_bundles_get_delegation_loader():
    store = SharedStore()
    host = Framework("host")
    host.start()
    host.install(library_bundle("log", "1.0.0", "LogThing"))
    policy = ExportPolicy(packages={"log"})
    instance = VirtualInstance(
        "acme",
        host,
        policy=policy,
        storage=store.mount("n1").framework_storage(),
        repository=store,
    )
    instance.start()
    instance.install(simple_bundle("app")).start()
    instance.stop()

    reborn = VirtualInstance(
        "acme",
        host,
        policy=policy,
        storage=store.mount("n1").framework_storage(),
        repository=store,
    )
    reborn.start()
    bundle = reborn.get_bundle_by_name("app")
    assert bundle.load_class("log.Thing") == "LogThing"
    host.stop()


def test_require_bundle_not_satisfied_by_delegation(host):
    """Delegation is per-class (packages/services); Require-Bundle names a
    *bundle* and must resolve inside the instance — host bundles are not
    candidates, even when their packages are exported."""
    from repro.osgi.definition import BundleDefinition
    from repro.osgi.errors import ResolutionError
    from repro.osgi.manifest import Manifest

    instance = VirtualInstance(
        "acme", host, policy=ExportPolicy(packages={"log"})
    )
    instance.start()
    requiring = BundleDefinition(
        Manifest.build("app", version="1.0.0", requires=("log",))
    )
    bundle = instance.install(requiring)
    with pytest.raises(ResolutionError):
        bundle.start()
    # The class-level path still works for the same content:
    dynamic = BundleDefinition(
        Manifest.build("app2", version="1.0.0")
    )
    b2 = instance.install(dynamic)
    b2.start()
    assert b2.load_class("log.Thing") == "LogThing"


def test_same_bundle_name_in_two_instances_keeps_distinct_archives():
    """Regression: two customers installing a same-named bundle must not
    overwrite each other's archive in the shared SAN repository — their
    definitions can differ (e.g. close over per-customer objects)."""
    store = SharedStore()
    host = Framework("host")
    host.start()

    def build_instance(name, marker):
        instance = VirtualInstance(
            name,
            host,
            storage=store.mount("n1").framework_storage(),
            repository=store,
        )
        instance.start()
        instance.install(
            simple_bundle(
                "app",
                exports=("pkg",),
                packages={"pkg": {"Marker": marker}},
            )
        ).start()
        return instance

    a = build_instance("a", "A-archive")
    b = build_instance("b", "B-archive")
    a.stop()
    b.stop()

    # Redeploy both from the SAN (as after a node failure).
    reborn_a = VirtualInstance(
        "a", host, storage=store.mount("n2").framework_storage(), repository=store
    )
    reborn_b = VirtualInstance(
        "b", host, storage=store.mount("n2").framework_storage(), repository=store
    )
    reborn_a.start()
    reborn_b.start()
    assert reborn_a.get_bundle_by_name("app").load_class("pkg.Marker") == "A-archive"
    assert reborn_b.get_bundle_by_name("app").load_class("pkg.Marker") == "B-archive"
    host.stop()
