"""Instance Manager: the Map of customers and its bundle packaging."""

import pytest

from repro.osgi.definition import simple_bundle
from repro.osgi.errors import BundleException
from repro.osgi.framework import Framework
from repro.storage.san import SharedStore
from repro.vosgi.delegation import ExportPolicy
from repro.vosgi.manager import (
    INSTANCE_MANAGER_CLASS,
    InstanceManager,
    instance_manager_bundle,
)


@pytest.fixture
def host():
    fw = Framework("host")
    fw.start()
    yield fw
    if fw.active:
        fw.stop()


@pytest.fixture
def manager(host):
    return InstanceManager(host)


def test_create_starts_by_default(manager):
    instance = manager.create_instance("acme")
    assert instance.running
    assert manager.names() == ["acme"]


def test_create_without_start(manager):
    instance = manager.create_instance("acme", start=False)
    assert not instance.running


def test_duplicate_name_rejected(manager):
    manager.create_instance("acme")
    with pytest.raises(BundleException):
        manager.create_instance("acme")


def test_get_and_require(manager):
    manager.create_instance("acme")
    assert manager.get("acme") is not None
    assert manager.get("ghost") is None
    assert manager.require("acme").name == "acme"
    with pytest.raises(BundleException):
        manager.require("ghost")


def test_stop_and_start_instance(manager):
    manager.create_instance("acme")
    manager.stop_instance("acme")
    assert not manager.require("acme").running
    manager.start_instance("acme")
    assert manager.require("acme").running


def test_destroy_removes_entry(manager):
    manager.create_instance("acme")
    manager.destroy_instance("acme")
    assert manager.names() == []
    manager.destroy_instance("acme")  # idempotent


def test_destroy_keeps_state_by_default(host):
    store = SharedStore()
    manager = InstanceManager(
        host,
        storage_factory=lambda iid: store.mount("n1").framework_storage(),
        repository=store,
    )
    instance = manager.create_instance("acme")
    instance.install(simple_bundle("app")).start()
    manager.destroy_instance("acme")
    assert store.has_state("vosgi:acme")


def test_destroy_can_wipe_state(host):
    store = SharedStore()
    manager = InstanceManager(
        host,
        storage_factory=lambda iid: store.mount("n1").framework_storage(),
        repository=store,
    )
    manager.create_instance("acme")
    manager.destroy_instance("acme", wipe_state=True)
    assert not store.has_state("vosgi:acme")


def test_recreate_restores_from_san(host):
    store = SharedStore()
    manager = InstanceManager(
        host,
        storage_factory=lambda iid: store.mount("n1").framework_storage(),
        repository=store,
    )
    instance = manager.create_instance("acme")
    instance.install(simple_bundle("app")).start()
    manager.destroy_instance("acme")

    reborn = manager.create_instance("acme")
    assert reborn.get_bundle_by_name("app") is not None


def test_release_instance_forgets_without_stopping(manager):
    instance = manager.create_instance("acme")
    released = manager.release_instance("acme")
    assert released is instance
    assert manager.names() == []
    assert instance.running  # untouched, as after a node crash takeover


def test_listeners_observe_lifecycle(manager):
    events = []
    manager.add_listener(lambda event, name: events.append((event, name)))
    manager.create_instance("acme")
    manager.stop_instance("acme")
    manager.start_instance("acme")
    manager.destroy_instance("acme")
    assert events == [
        ("created", "acme"),
        ("started", "acme"),
        ("stopped", "acme"),
        ("started", "acme"),
        ("destroyed", "acme"),
    ]


def test_count_and_instances_sorted(manager):
    manager.create_instance("zeta")
    manager.create_instance("alpha")
    assert manager.count == 2
    assert [i.name for i in manager.instances()] == ["alpha", "zeta"]


class TestActivatorPackaging:
    def test_manager_published_as_service(self, host):
        bundle = host.install(instance_manager_bundle())
        bundle.start()
        ref = host.system_context.get_service_reference(INSTANCE_MANAGER_CLASS)
        assert ref is not None
        manager = host.system_context.get_service(ref)
        instance = manager.create_instance("acme", policy=ExportPolicy())
        assert instance.running

    def test_stopping_bundle_stops_instances(self, host):
        bundle = host.install(instance_manager_bundle())
        bundle.start()
        ref = host.system_context.get_service_reference(INSTANCE_MANAGER_CLASS)
        manager = host.system_context.get_service(ref)
        instance = manager.create_instance("acme")
        bundle.stop()
        assert not instance.running
        assert host.registry.get_reference(INSTANCE_MANAGER_CLASS) is None
