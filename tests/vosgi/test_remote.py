"""Figure 1's remote management path."""

import pytest

from repro.sim.eventloop import EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngStreams
from repro.vosgi.remote import RemoteInstanceHost, RemoteInstanceManager

from tests.conftest import library_bundle


@pytest.fixture
def setup():
    loop = EventLoop()
    network = Network(loop, RngStreams(3), latency=0.00075, jitter=0.0)
    manager = RemoteInstanceManager(loop, network)
    host = RemoteInstanceHost("acme", loop, network)
    manager.register_host(host)
    return loop, network, manager, host


def settle(loop, completion, duration=2.0):
    loop.run_for(duration)
    return completion.result()


def test_full_remote_lifecycle(setup):
    loop, network, manager, host = setup
    host.provision("loc://lib", library_bundle("lib", "1.0.0"))
    assert settle(loop, manager.start_framework("acme")) is True
    assert settle(loop, manager.install("acme", "loc://lib")) == 1
    assert settle(loop, manager.start_bundle("acme", "lib")) is True
    status = settle(loop, manager.status("acme"))
    assert status == {"active": True, "bundles": {"lib": "ACTIVE"}}
    assert settle(loop, manager.stop_bundle("acme", "lib")) is True
    assert settle(loop, manager.stop_framework("acme")) is True


def test_every_operation_pays_a_round_trip(setup):
    loop, network, manager, host = setup
    settle(loop, manager.start_framework("acme"))
    settle(loop, manager.status("acme"))
    assert len(manager.round_trip_times) == 2
    # One-way latency 0.75 ms -> RTT 1.5 ms, the paper-era RMI figure.
    assert manager.mean_rtt == pytest.approx(0.0015, rel=0.01)


def test_remote_errors_propagate(setup):
    loop, network, manager, host = setup
    settle(loop, manager.start_framework("acme"))
    completion = manager.install("acme", "loc://missing")
    loop.run_for(2.0)
    assert completion.done and not completion.ok
    with pytest.raises(RuntimeError):
        completion.result()


def test_unknown_instance_rejected(setup):
    loop, network, manager, host = setup
    with pytest.raises(KeyError):
        manager.status("ghost")


def test_crashed_host_times_out(setup):
    loop, network, manager, host = setup
    settle(loop, manager.start_framework("acme"))
    host.crash()
    completion = manager.status("acme")
    loop.run_for(manager.timeout + 1.0)
    assert completion.done and not completion.ok
    with pytest.raises(TimeoutError):
        completion.result()


def test_hosts_are_fully_isolated_processes(setup):
    loop, network, manager, host = setup
    other = RemoteInstanceHost("globex", loop, network)
    manager.register_host(other)
    settle(loop, manager.start_framework("acme"))
    settle(loop, manager.start_framework("globex"))
    host.provision("loc://lib", library_bundle("lib", "1.0.0"))
    settle(loop, manager.install("acme", "loc://lib"))
    status = settle(loop, manager.status("globex"))
    assert status["bundles"] == {}  # nothing leaked between "JVMs"
    assert manager.names() == ["acme", "globex"]
