"""Open-loop diurnal arrivals: deterministic, shaped, and bounded."""

import math

import pytest

from repro.sim.eventloop import EventLoop
from repro.sim.rng import RngStreams
from repro.workloads.arrivals import DiurnalProfile, OpenLoopArrivals


def collect(seed, base=50.0, peak=200.0, day=20.0, duration=20.0):
    loop = EventLoop()
    profile = DiurnalProfile(base, peak, day)
    times = []
    arrivals = OpenLoopArrivals(
        loop,
        RngStreams(seed).stream("arrivals"),
        profile,
        lambda index: times.append((index, loop.clock.now)),
        duration=duration,
    )
    arrivals.start()
    loop.run_for(duration + 1.0)
    return arrivals, times


def test_profile_shape():
    profile = DiurnalProfile(100.0, 500.0, 86400.0)
    assert profile.rate(0.0) == pytest.approx(100.0)  # midnight trough
    assert profile.rate(43200.0) == pytest.approx(500.0)  # midday peak
    assert profile.rate(86400.0) == pytest.approx(100.0)  # wraps
    assert profile.mean_rate() == pytest.approx(300.0)
    # Monotone ramp through the morning.
    morning = [profile.rate(t) for t in range(0, 43200, 3600)]
    assert morning == sorted(morning)


def test_profile_validation():
    with pytest.raises(ValueError):
        DiurnalProfile(200.0, 100.0, 60.0)  # peak < base
    with pytest.raises(ValueError):
        DiurnalProfile(10.0, 20.0, 0.0)


def test_same_seed_identical_timeline():
    _, times_a = collect(seed=7)
    _, times_b = collect(seed=7)
    assert times_a == times_b
    _, times_c = collect(seed=8)
    assert times_a != times_c


def test_arrival_count_tracks_mean_rate():
    arrivals, times = collect(seed=3, base=100.0, peak=300.0, duration=20.0)
    expected = 200.0 * 20.0  # mean rate x duration
    assert len(times) == arrivals.arrivals
    assert abs(len(times) - expected) < expected * 0.10
    # Thinning acceptance ratio ~ mean/peak.
    assert arrivals.candidates > arrivals.arrivals


def test_density_follows_the_curve():
    _, times = collect(seed=11, base=20.0, peak=400.0, day=40.0, duration=40.0)
    trough = sum(1 for _, t in times if t < 8.0 or t > 32.0)
    peak = sum(1 for _, t in times if 16.0 <= t <= 24.0)
    assert peak > trough * 2


def test_no_arrivals_after_deadline():
    arrivals, times = collect(seed=5, duration=10.0)
    assert arrivals.finished
    assert all(t <= 10.0 + 1e-9 for _, t in times)
    assert [i for i, _ in times] == list(range(1, len(times) + 1))


def test_double_start_rejected():
    loop = EventLoop()
    arrivals = OpenLoopArrivals(
        loop,
        RngStreams(1).stream("arrivals"),
        DiurnalProfile(10.0, 20.0, 10.0),
        lambda index: None,
        duration=5.0,
    )
    arrivals.start()
    with pytest.raises(RuntimeError):
        arrivals.start()


def test_mean_rate_matches_integral():
    profile = DiurnalProfile(60.0, 180.0, 100.0)
    steps = 10000
    integral = sum(
        profile.rate(i * 100.0 / steps) for i in range(steps)
    ) / steps
    assert integral == pytest.approx(profile.mean_rate(), rel=1e-3)
    assert math.isclose(profile.mean_rate(), 120.0)
