"""CPU burner workload."""

from repro.sim.eventloop import EventLoop
from repro.workloads.burner import CpuBurner, burner_bundle, drive_burner

from tests.conftest import library_bundle  # noqa: F401  (fixture helpers)


def test_burner_accounts_cpu_per_tick(framework):
    burner = CpuBurner(cpu_per_second=0.3)
    bundle = framework.install(burner_bundle(burner))
    bundle.start()
    assert burner.tick()
    assert burner.tick()
    assert bundle.ledger.cpu_seconds == 0.6
    assert burner.ticks == 2


def test_burner_memory_claim_on_start(framework):
    burner = CpuBurner(cpu_per_second=0.1, memory_bytes=4096)
    bundle = framework.install(burner_bundle(burner))
    bundle.start()
    assert bundle.ledger.memory_bytes == 4096


def test_tick_after_stop_returns_false(framework):
    burner = CpuBurner()
    bundle = framework.install(burner_bundle(burner))
    bundle.start()
    bundle.stop()
    assert not burner.running
    assert burner.tick() is False


def test_drive_burner_ticks_until_stop(framework):
    loop = EventLoop()
    burner = CpuBurner(cpu_per_second=0.2)
    bundle = framework.install(burner_bundle(burner))
    bundle.start()
    drive_burner(loop, burner, interval=1.0)
    loop.run_for(3.0)
    assert burner.ticks == 3
    bundle.stop()
    loop.run_for(5.0)
    assert burner.ticks == 3  # driver stopped with the bundle


def test_fresh_burner_factory_when_none_given(framework):
    b1 = framework.install(burner_bundle(name="w1", cpu_per_second=0.1))
    b2 = framework.install(burner_bundle(name="w2", cpu_per_second=0.1))
    b1.start()
    b2.start()
    assert b1._activator is not b2._activator
