"""Transactional KV workload: atomicity and migratability."""

import pytest

from repro.osgi.framework import Framework
from repro.storage.san import SharedStore
from repro.vosgi.instance import VirtualInstance
from repro.workloads.kvstore import KV_SERVICE_CLASS, kvstore_bundle


def build_instance(store, node="n1", host_name="host"):
    host = Framework(host_name)
    host.start()
    instance = VirtualInstance(
        "tenant",
        host,
        storage=store.mount(node).framework_storage(),
        repository=store,
    )
    instance.start()
    bundle = instance.install(kvstore_bundle())
    bundle.start()
    return host, instance, bundle._activator


@pytest.fixture
def store():
    return SharedStore()


def test_commit_roundtrip(store):
    host, instance, kv = build_instance(store)
    kv.begin().put("a", 1).put("b", [2, 3]).commit()
    assert kv.get("a") == 1
    assert kv.get("b") == [2, 3]
    assert kv.keys() == ["a", "b"]
    assert kv.commits == 1


def test_uncommitted_invisible_and_abortable(store):
    host, instance, kv = build_instance(store)
    txn = kv.begin().put("x", "staged")
    assert kv.get("x") is None
    txn.abort()
    assert kv.get("x") is None


def test_finished_transaction_rejects_reuse(store):
    host, instance, kv = build_instance(store)
    txn = kv.begin().put("x", 1)
    txn.commit()
    with pytest.raises(RuntimeError):
        txn.put("y", 2)
    with pytest.raises(RuntimeError):
        txn.commit()


def test_service_registered_in_instance(store):
    host, instance, kv = build_instance(store)
    reference = instance.framework.registry.get_reference(KV_SERVICE_CLASS)
    assert reference is not None
    service = instance.framework.registry.get_service(
        instance.framework.system_bundle, reference
    )
    assert service is kv


def test_committed_state_survives_migration(store):
    host, instance, kv = build_instance(store)
    kv.begin().put("order", {"items": ["anvil"]}).commit()
    instance.stop()
    host.stop()

    host2, reborn, kv2 = None, None, None
    host2 = Framework("host2")
    host2.start()
    reborn = VirtualInstance(
        "tenant",
        host2,
        storage=store.mount("n2").framework_storage(),
        repository=store,
    )
    reborn.start()
    kv2 = reborn.get_bundle_by_name("workload.kvstore")._activator
    assert kv2.get("order") == {"items": ["anvil"]}


def test_in_flight_transaction_lost_cleanly_on_crash(store):
    host, instance, kv = build_instance(store)
    kv.begin().put("committed", 1).commit()
    kv.begin().put("in-flight", 2)  # crash before commit
    # Abandon everything (crash); redeploy elsewhere.
    host2 = Framework("host2")
    host2.start()
    reborn = VirtualInstance(
        "tenant",
        host2,
        storage=store.mount("n2").framework_storage(),
        repository=store,
    )
    reborn.start()
    kv2 = reborn.get_bundle_by_name("workload.kvstore")._activator
    assert kv2.get("committed") == 1
    assert kv2.get("in-flight") is None  # atomicity held


def test_graceful_stop_aborts_open_transaction(store):
    host, instance, kv = build_instance(store)
    kv.begin().put("half", 1)
    bundle = instance.get_bundle_by_name("workload.kvstore")
    bundle.stop()
    bundle.start()
    kv2 = bundle._activator
    assert kv2.get("half") is None


def test_operations_are_metered(store):
    host, instance, kv = build_instance(store)
    kv.begin().put("a", 1).commit()
    kv.get("a")
    assert instance.usage()["cpu_seconds"] > 0


def test_api_refuses_when_stopped(store):
    host, instance, kv = build_instance(store)
    instance.get_bundle_by_name("workload.kvstore").stop()
    with pytest.raises(RuntimeError):
        kv.get("a")
    with pytest.raises(RuntimeError):
        kv.begin()
