"""Host-HTTP composition workload (Figure 4 archetype)."""

import pytest

from repro.osgi.framework import Framework
from repro.vosgi.delegation import ExportPolicy
from repro.vosgi.instance import VirtualInstance
from repro.workloads.webservice import (
    HTTP_SERVICE_CLASS,
    host_http_bundle,
    webservice_bundle,
)


@pytest.fixture
def host():
    fw = Framework("host")
    fw.start()
    fw.install(host_http_bundle()).start()
    yield fw
    if fw.active:
        fw.stop()


def http_of(host):
    ref = host.system_context.get_service_reference(HTTP_SERVICE_CLASS)
    return host.system_context.get_service(ref)


def make_tenant(host, name):
    instance = VirtualInstance(
        name, host, policy=ExportPolicy(service_classes={HTTP_SERVICE_CLASS})
    )
    instance.start()
    bundle = instance.install(webservice_bundle(name))
    bundle.start()
    return instance, bundle._activator


def test_servlet_registered_on_shared_host_service(host):
    make_tenant(host, "acme")
    http = http_of(host)
    status, body = http.dispatch("/acme/echo", {"q": 1})
    assert status == 200
    assert body == {"echo": {"q": 1}, "by": "acme"}


def test_multiple_tenants_share_one_http_service(host):
    make_tenant(host, "acme")
    make_tenant(host, "globex")
    http = http_of(host)
    assert http.paths() == ["/acme/echo", "/globex/echo"]
    assert http.dispatch("/globex/echo", "hi")[1]["by"] == "globex"


def test_unknown_path_404(host):
    http = http_of(host)
    status, _ = http.dispatch("/nobody/echo", "x")
    assert status == 404


def test_handler_exception_becomes_500(host):
    http = http_of(host)
    http.register_servlet("/broken", lambda request: 1 / 0)
    status, body = http.dispatch("/broken", "x")
    assert status == 500


def test_duplicate_path_rejected(host):
    make_tenant(host, "acme")
    http = http_of(host)
    with pytest.raises(ValueError):
        http.register_servlet("/acme/echo", lambda r: r)


def test_stop_unregisters_servlet(host):
    instance, service = make_tenant(host, "acme")
    instance.get_bundle_by_name("workload.web.acme").stop()
    http = http_of(host)
    assert http.dispatch("/acme/echo", "x")[0] == 404


def test_requests_metered_per_tenant(host):
    instance, service = make_tenant(host, "acme")
    http = http_of(host)
    for i in range(5):
        http.dispatch("/acme/echo", i)
    assert service.served == 5
    assert instance.usage()["cpu_seconds"] == pytest.approx(0.005)


def test_tenant_without_export_cannot_start(host):
    instance = VirtualInstance("sneaky", host, policy=ExportPolicy())
    instance.start()
    bundle = instance.install(webservice_bundle("sneaky"))
    from repro.osgi.errors import BundleException

    with pytest.raises(BundleException):
        bundle.start()
